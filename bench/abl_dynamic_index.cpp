// Ablation A11: dynamic index selection (shadow-directory switching) vs the
// static schemes of the paper.
//
// The paper's conclusion calls static indexing's inability to "adjust
// dynamically to a given application's memory access pattern" its central
// weakness (§V). This bench measures the DynamicIndexCache on (a) the
// MiBench set — where the cost of adaptivity should be near zero and the
// benefit equals picking the per-app winner automatically — and (b) a
// phase-alternating stress trace where every static choice loses a phase.
#include <iostream>
#include <memory>

#include "assoc/dynamic_index.hpp"
#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "indexing/xor_index.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"
#include "util/table.hpp"

namespace {

using namespace canu;

std::vector<IndexFunctionPtr> candidates() {
  return {std::make_shared<ModuloIndex>(1024, 5),
          std::make_shared<XorIndex>(1024, 5),
          std::make_shared<OddMultiplierIndex>(1024, 5, 21)};
}

double run_model(CacheModel& model, const Trace& t) {
  model.flush();
  for (const MemRef& r : t) model.access(r.addr, r.type);
  return model.stats().miss_rate();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A11", "dynamic index switching vs static schemes");

  ComparisonTable table("miss rate %, 32KB direct-mapped");
  const CacheGeometry g = CacheGeometry::paper_l1();
  for (const std::string& w : paper_mibench_set()) {
    const Trace t = bench::bench_trace(w, bench::params_for(args));
    SetAssocCache modulo(g);
    SetAssocCache xors(g, std::make_shared<XorIndex>(1024, 5));
    SetAssocCache odd(g, std::make_shared<OddMultiplierIndex>(1024, 5, 21));
    DynamicIndexCache dynamic(g, candidates());
    table.set(w, "modulo", 100.0 * run_model(modulo, t));
    table.set(w, "xor", 100.0 * run_model(xors, t));
    table.set(w, "odd_mult", 100.0 * run_model(odd, t));
    table.set(w, "dynamic", 100.0 * run_model(dynamic, t));
    table.set(w, "switches", static_cast<double>(dynamic.switches()));
  }
  bench::emit(table, args);

  // The phase-alternation stress: each static loses two of four phases.
  Trace phased("phase_alternating");
  for (int phase = 0; phase < 4; ++phase) {
    for (int i = 0; i < 150'000; ++i) {
      if (phase % 2 == 0) {
        phased.append(static_cast<std::uint64_t>(i % 48) * 32 * 1024,
                      AccessType::kRead);
      } else {
        const std::uint64_t tag = static_cast<std::uint64_t>(i % 48) + 1;
        const std::uint64_t index_field = (1024 - (21 * tag) % 1024) % 1024;
        phased.append((tag << 15) | (index_field << 5), AccessType::kRead);
      }
    }
  }
  SetAssocCache modulo(g);
  SetAssocCache odd(g, std::make_shared<OddMultiplierIndex>(1024, 5, 21));
  DynamicIndexCache dynamic(
      g, {std::make_shared<ModuloIndex>(1024, 5),
          std::make_shared<OddMultiplierIndex>(1024, 5, 21)});
  std::cout << "\nPhase-alternating stress (600k refs, optimum flips every "
               "150k):\n"
            << "  static modulo  "
            << TextTable::num(100.0 * run_model(modulo, phased), 2) << "%\n"
            << "  static odd     "
            << TextTable::num(100.0 * run_model(odd, phased), 2) << "%\n"
            << "  dynamic        "
            << TextTable::num(100.0 * run_model(dynamic, phased), 2) << "% ("
            << dynamic.switches() << " switches)\n";
  return 0;
}
