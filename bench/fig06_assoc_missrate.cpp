// Figure 6: % reduction in miss rate for the three programmable
// associativity schemes (adaptive, B-cache, column-associative) vs the
// direct-mapped baseline, across the 11 MiBench benchmarks.
//
// Paper shape: all three reduce misses for most applications;
// column-associative shows the highest improvements on most benchmarks;
// uniform-access benchmarks (bitcount, crc, qsort in the paper) show
// negligible improvement.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 6", "miss-rate reduction of programmable associativity");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_assoc_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.miss_reduction_table(), args);
  return 0;
}
