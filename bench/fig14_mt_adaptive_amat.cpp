// Figure 14: % improvement in AMAT for multithreaded applications using the
// adaptive partitioned scheme — the cache is split equally among threads,
// with Peir-style SHT/OUT tables spanning the whole cache so displaced
// blocks from one thread's hot sets can be preserved in another thread's
// lightly-used sets.
//
// Baseline: the same static partitioning without the adaptive machinery.
// Paper shape: large AMAT improvements (up to ~60%) for conflict-heavy
// mixes; small for mixes that fit their partitions.
#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "mt/partitioned_adaptive.hpp"
#include "mt_common.hpp"
#include "sim/amat.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"
#include "util/bitops.hpp"

namespace {

using namespace canu;

/// Run a stream through a partitioned L1 + shared L2; return the AMAT via
/// the scheme-appropriate formula.
template <typename CacheT>
double run_partitioned(CacheT& l1, const ThreadedTrace& stream, bool adaptive) {
  SetAssocCache l2(CacheGeometry::paper_l2());
  for (const ThreadedRef& r : stream) {
    const AccessOutcome out = l1.access(r.tid, r.ref);
    if (!out.hit) l2.access(r.ref.addr, r.ref.type);
  }
  const double penalty = miss_penalty_from_l2(l2.stats());
  const CacheStats& s = l1.stats();
  if (adaptive) {
    return amat_adaptive(s.primary_hit_fraction(), s.miss_rate(), penalty);
  }
  return amat_conventional(s.miss_rate(), penalty);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 14", "partitioned adaptive cache AMAT (SMT)");

  const CacheGeometry l1 = CacheGeometry::paper_l1();
  ComparisonTable table(
      "% improvement in AMAT vs statically partitioned direct-mapped cache");

  for (const auto& mix : bench::fig14_mixes()) {
    // Partition count = next power of two >= thread count.
    const auto threads =
        static_cast<std::uint32_t>(next_pow2(mix.size()));
    const ThreadedTrace stream = bench::make_mix_stream(mix, args.scale);

    PartitionedDirectCache direct(l1, threads);
    const double amat_direct = run_partitioned(direct, stream, false);

    PartitionedAdaptiveCache adaptive(l1, threads);
    const double amat_adapt = run_partitioned(adaptive, stream, true);

    table.set(bench::mix_label(mix), "adaptive_partitioned",
              percent_reduction(amat_direct, amat_adapt));
  }
  bench::emit(table, args);
  return 0;
}
