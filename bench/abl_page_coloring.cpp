// Ablation A17: page allocation policy vs the paper's hardware schemes.
//
// The paper fights per-set non-uniformity in hardware; operating systems
// fight the same battle at page-frame granularity. With 4 KB pages on the
// paper's 32 KB direct-mapped L1, the top 3 index bits are frame bits, so
// frame allocation is an 8-color indexing function the OS controls. This
// bench re-runs the baseline under identity (the paper's implicit setup),
// random (buddy-allocator-like) and colored frame assignment, next to the
// XOR hardware scheme for comparison.
#include <iostream>

#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/xor_index.hpp"
#include "sim/comparison.hpp"
#include "sim/runner.hpp"
#include "stats/moments.hpp"
#include "trace/page_mapping.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A17", "OS page allocation vs hardware indexing");

  const CacheGeometry g = CacheGeometry::paper_l1();
  ComparisonTable misses("% reduction in miss-rate vs identity mapping");
  ComparisonTable kurt("kurtosis of per-set misses");
  for (const std::string& w : paper_mibench_set()) {
    const Trace vtrace = bench::bench_trace(w, bench::params_for(args));

    SetAssocCache base(g);
    const RunResult rb = run_trace(base, vtrace);
    kurt.set(w, "identity", rb.uniformity.miss_moments.kurtosis);

    for (const PagePolicy policy :
         {PagePolicy::kRandom, PagePolicy::kColored}) {
      PageMapper::Options opt;
      opt.policy = policy;
      const Trace ptrace = apply_page_mapping(vtrace, opt);
      SetAssocCache cache(g);
      const RunResult r = run_trace(cache, ptrace);
      misses.set(w, page_policy_name(policy),
                 percent_reduction(rb.miss_rate(), r.miss_rate()));
      kurt.set(w, page_policy_name(policy),
               r.uniformity.miss_moments.kurtosis);
    }

    // Hardware comparison point: XOR indexing on the identity mapping.
    SetAssocCache xors(g, std::make_shared<XorIndex>(g.sets(),
                                                     g.offset_bits()));
    const RunResult rx = run_trace(xors, vtrace);
    misses.set(w, "hw_xor", percent_reduction(rb.miss_rate(), rx.miss_rate()));
    kurt.set(w, "hw_xor", rx.uniformity.miss_moments.kurtosis);
  }
  bench::emit(misses, args);
  std::cout << "\n";
  bench::emit(kurt, args);
  std::cout << "\nReading: colored == identity here by construction (the 3 "
               "frame color bits are\npreserved, and higher frame bits only "
               "reach the tag) — CANU's synthetic virtual\nlayouts are "
               "already perfectly colored. Random frame allocation (a real "
               "OS under\nmemory pressure) breaks that balance and *costs* "
               "miss rate — which is exactly why\npage coloring was "
               "invented, and what the paper's identity-mapped traces "
               "quietly assume.\n";
  return 0;
}
