// Ablation A4: Givargis block-size sensitivity.
//
// The paper attributes Givargis' poor showing to excluding byte-offset bits
// from the candidate set: with 32-byte lines, 5 low (often high-quality)
// bits are unavailable. This ablation sweeps the line size (8/16/32/64
// bytes, cache capacity fixed) and also evaluates the variant that includes
// offset bits, quantifying the paper's explanation.
#include <iostream>

#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/givargis.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A4", "Givargis block-size sensitivity");

  ComparisonTable table(
      "% reduction in miss-rate: givargis vs modulo, by line size");
  for (const std::string& w : paper_mibench_set()) {
    WorkloadParams p = bench::params_for(args);
    const Trace trace = bench::bench_trace(w, p);
    for (const std::uint64_t line : {8ull, 16ull, 32ull, 64ull}) {
      const CacheGeometry g{32 * 1024, line, 1};
      SetAssocCache modulo(g);
      for (const MemRef& r : trace) modulo.access(r.addr, r.type);

      auto giv = std::make_shared<GivargisIndex>(trace, g.sets(),
                                                 g.offset_bits());
      SetAssocCache givargis(g, giv);
      for (const MemRef& r : trace) givargis.access(r.addr, r.type);

      table.set(w, "line=" + std::to_string(line),
                percent_reduction(modulo.stats().miss_rate(),
                                  givargis.stats().miss_rate()));
    }
  }
  bench::emit(table, args);

  std::cout << "\nPaper's diagnosis check: smaller lines leave Givargis more "
               "high-quality candidate bits,\nso its relative performance "
               "should improve as the line size shrinks.\n";
  return 0;
}
