// Figure 11: % increase in the kurtosis of per-set misses for the three
// programmable associativity schemes vs the baseline, across MiBench.
//
// Paper shape: unlike the indexing schemes, the programmable associativity
// organizations significantly *reduce* miss kurtosis (negative values) —
// they actively move misses out of hot sets.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 11",
                "kurtosis increase of per-set misses (prog. associativity)");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_assoc_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.kurtosis_increase_table(), args);
  return 0;
}
