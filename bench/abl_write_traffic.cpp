// Ablation A10: write-back traffic per scheme.
//
// Miss-rate comparisons hide a second effect of remapping schemes: by
// changing which lines survive, they change how many *dirty* lines are
// evicted — the write-back bandwidth the L2 must absorb. This ablation
// reports writebacks per 1000 accesses for each scheme across MiBench.
#include <iostream>

#include "bench_common.hpp"
#include "sim/comparison.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A10", "write-back traffic per scheme");

  ComparisonTable table("writebacks per 1000 accesses");
  const std::vector<SchemeSpec> specs = {
      SchemeSpec::baseline(),
      SchemeSpec::indexing(IndexScheme::kOddMultiplier),
      SchemeSpec::set_assoc(8),
      SchemeSpec::column_associative(),
      SchemeSpec::adaptive_cache(),
      SchemeSpec::b_cache(),
      SchemeSpec::skewed_assoc(2),
  };
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    for (const SchemeSpec& spec : specs) {
      auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
      for (const MemRef& r : trace) model->access(r.addr, r.type);
      table.set(w, spec.label(),
                1000.0 * static_cast<double>(model->stats().writebacks) /
                    static_cast<double>(model->stats().accesses));
    }
  }
  bench::emit(table, args);
  std::cout << "\nReading: schemes that cut conflict misses usually cut "
               "writebacks too (fewer dirty\nevictions), but relocation-"
               "based schemes can keep dirty lines alive longer and shift\n"
               "the traffic instead of removing it.\n";
  return 0;
}
