// Ablation A1: Patel's exhaustive optimal indexing (paper §II.F).
//
// The paper skipped this scheme because the search is intractable at 1024
// sets. We quantify that: for small caches the search is feasible and finds
// indexes at least as good as modulo; the combination count table shows why
// it explodes at realistic sizes.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/patel.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  long double r = 1;
  for (unsigned i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return static_cast<std::uint64_t>(r);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A1", "Patel exhaustive optimal indexing");

  // Search-space growth: why the paper could not run this at 1024 sets.
  std::cout << "Search space C(window, index_bits):\n";
  TextTable growth;
  growth.set_header({"sets", "index bits", "window", "combinations"});
  for (unsigned bits : {4u, 6u, 8u, 10u}) {
    const unsigned window = bits + 8;
    growth.add_row({std::to_string(1u << bits), std::to_string(bits),
                    std::to_string(window),
                    std::to_string(binomial(window, bits))});
  }
  growth.print(std::cout);

  // Feasible regime: 2 KB direct-mapped cache (64 sets, 6 index bits).
  std::cout << "\n2KB direct-mapped cache (64 sets), window = 12 bits:\n";
  ComparisonTable table("% reduction in miss-rate: patel_optimal vs modulo");
  TextTable detail;
  detail.set_header({"benchmark", "combos searched", "search ms",
                     "modulo misses", "patel misses"});
  const CacheGeometry small{2 * 1024, 32, 1};
  for (const std::string name :
       {"fft", "crc", "sha", "dijkstra", "qsort", "synthetic_strided"}) {
    WorkloadParams p = bench::params_for(args);
    p.scale = std::min(p.scale, 0.25);  // keep the exhaustive search quick
    const Trace trace = bench::bench_trace(name, p);

    SetAssocCache modulo(small);
    for (const MemRef& r : trace) modulo.access(r.addr, r.type);

    const auto start = std::chrono::steady_clock::now();
    PatelOptions popt;
    popt.candidate_window = 12;
    auto patel = std::make_shared<PatelOptimalIndex>(trace, small.sets(),
                                                     small.offset_bits(), popt);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    SetAssocCache optimal(small, patel);
    for (const MemRef& r : trace) optimal.access(r.addr, r.type);

    table.set(name, "patel_optimal",
              percent_reduction(modulo.stats().miss_rate(),
                                optimal.stats().miss_rate()));
    detail.add_row({name, std::to_string(patel->combinations_searched()),
                    std::to_string(elapsed.count()),
                    std::to_string(modulo.stats().misses),
                    std::to_string(optimal.stats().misses)});
  }
  bench::emit(table, args);
  std::cout << "\n";
  detail.print(std::cout);
  return 0;
}
