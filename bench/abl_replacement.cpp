// Ablation A7: replacement-policy ladder at fixed capacity/associativity.
//
// The paper fixes LRU throughout; this ablation quantifies how much of the
// remaining miss traffic is replacement-policy-sensitive — LRU, FIFO,
// random, tree-PLRU (the hardware-realistic approximation) and SRRIP, with
// set-associative Belady OPT as the floor.
#include <iostream>

#include "bench_common.hpp"
#include "cache/belady.hpp"
#include "cache/set_assoc_cache.hpp"
#include "sim/comparison.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A7", "replacement policies, 8-way 32 KB");

  const CacheGeometry g{32 * 1024, 32, 8};
  ComparisonTable table("miss rate %, 8-way 32 KB");
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
          ReplacementPolicy::kRandom, ReplacementPolicy::kPlru,
          ReplacementPolicy::kSrrip}) {
      SetAssocCache cache(g, nullptr, policy);
      for (const MemRef& r : trace) cache.access(r.addr, r.type);
      table.set(w, replacement_policy_name(policy),
                100.0 * cache.stats().miss_rate());
    }
    const OptResult opt = simulate_opt(trace, g);
    table.set(w, "opt", 100.0 * opt.miss_rate());
  }
  bench::emit(table, args);
  std::cout << "\nReading: opt is set-associative Belady (offline floor); "
               "plru should track lru closely,\nsrrip should win on "
               "scan-heavy workloads.\n";
  return 0;
}
