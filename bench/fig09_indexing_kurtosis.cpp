// Figure 9: % increase in the kurtosis of per-set *misses* for the five
// indexing schemes vs the baseline, across MiBench.
//
// Paper shape: indexing schemes improve miss uniformity for some programs
// but sharply worsen it for others (huge positive spikes in the figure);
// improvements are modest where they exist.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 9", "kurtosis increase of per-set misses (indexing)");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_indexing_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.kurtosis_increase_table(), args);
  return 0;
}
