// Figure 1: non-uniform cache accesses for the MiBench fft benchmark.
//
// The paper plots per-set access counts for the L1 data cache and reports
// that 90.43% of sets receive less than half the average number of accesses
// while 6.641% receive more than twice the average. This bench reproduces
// the distribution for every MiBench workload (fft first), prints the same
// two summary percentages plus the distribution moments, and renders a
// coarse ASCII profile of the fft histogram.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 1", "per-set access non-uniformity (baseline cache)");

  TextTable table;
  table.set_header({"benchmark", "refs", "%sets < avg/2", "%sets > 2*avg",
                    "access skew", "access kurtosis", "FMS", "LAS"});
  std::vector<std::uint64_t> fft_counts;
  for (const std::string& name : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(name, bench::params_for(args));
    SetAssocCache l1(CacheGeometry::paper_l1());
    const RunResult r = run_trace(l1, trace);
    if (name == "fft") {
      fft_counts = extract_counts(l1.set_stats(), SetCounter::kAccesses);
    }
    table.add_row({name, std::to_string(trace.size()),
                   TextTable::num(100.0 * r.uniformity.frac_under_half, 2),
                   TextTable::num(100.0 * r.uniformity.frac_over_twice, 3),
                   TextTable::num(r.uniformity.access_moments.skewness, 2),
                   TextTable::num(r.uniformity.access_moments.kurtosis, 2),
                   std::to_string(r.uniformity.fms),
                   std::to_string(r.uniformity.las)});
  }
  table.print(std::cout);

  // ASCII profile of the fft per-set access histogram (64 buckets of 16
  // sets each, bar length proportional to the bucket maximum).
  std::cout << "\nfft accesses per cache set (1024 sets, 16-set buckets; "
               "# = bucket max relative to global max):\n";
  const std::size_t bucket_size = 16;
  std::vector<std::uint64_t> buckets;
  for (std::size_t b = 0; b < fft_counts.size(); b += bucket_size) {
    std::uint64_t mx = 0;
    for (std::size_t i = b; i < b + bucket_size && i < fft_counts.size(); ++i) {
      mx = std::max(mx, fft_counts[i]);
    }
    buckets.push_back(mx);
  }
  const std::uint64_t global_max =
      *std::max_element(buckets.begin(), buckets.end());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const int len = global_max == 0
                        ? 0
                        : static_cast<int>(60.0 * static_cast<double>(buckets[b]) /
                                           static_cast<double>(global_max));
    std::cout << "set " << (b * bucket_size) << "\t" << std::string(len, '#')
              << "\n";
  }
  return 0;
}
