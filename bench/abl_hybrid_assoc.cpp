// Ablation A12: indexing × programmable-associativity hybrids.
//
// The paper closes §III with "we will also explore hybrid techniques that
// combine indexing methods (Section 2) with programmable associativities"
// but only evaluates the column-associative hybrid (Figure 8). This bench
// completes the grid: each programmable organization that takes a primary
// index function (column-associative, adaptive, partner) is paired with
// modulo, XOR and odd-multiplier indexing.
#include <iostream>

#include "assoc/adaptive_cache.hpp"
#include "assoc/column_associative.hpp"
#include "assoc/partner_cache.hpp"
#include "bench_common.hpp"
#include "indexing/odd_multiplier.hpp"
#include "indexing/xor_index.hpp"
#include "sim/comparison.hpp"
#include "sim/runner.hpp"
#include "stats/moments.hpp"

namespace {

using namespace canu;

IndexFunctionPtr make_fn(const std::string& which) {
  if (which == "xor") return std::make_shared<XorIndex>(1024, 5);
  if (which == "odd") return std::make_shared<OddMultiplierIndex>(1024, 5, 21);
  return nullptr;  // modulo default
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A12",
                "programmable associativity x indexing hybrids");

  const CacheGeometry g = CacheGeometry::paper_l1();
  ComparisonTable table("% reduction in miss-rate vs direct[modulo]");
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    SetAssocCache baseline(g);
    const RunResult base = run_trace(baseline, trace);

    for (const std::string idx : {"modulo", "xor", "odd"}) {
      ColumnAssociativeCache column(g, make_fn(idx));
      const RunResult rc = run_trace(column, trace);
      table.set(w, "column+" + idx,
                percent_reduction(base.miss_rate(), rc.miss_rate()));

      AdaptiveCache adaptive(g, AdaptiveConfig(), make_fn(idx));
      const RunResult ra = run_trace(adaptive, trace);
      table.set(w, "adaptive+" + idx,
                percent_reduction(base.miss_rate(), ra.miss_rate()));

      PartnerCache partner(g, PartnerConfig(), make_fn(idx));
      const RunResult rp = run_trace(partner, trace);
      table.set(w, "partner+" + idx,
                percent_reduction(base.miss_rate(), rp.miss_rate()));
    }
  }
  bench::emit(table, args);
  std::cout << "\nReading: does a better primary hash still help once the "
               "organization can already\nrelocate conflicting blocks?\n";
  return 0;
}
