// Ablation A13: advisor-driven per-thread scheme selection under SMT.
//
// The paper's abstract promises that "the study ... allows us to select
// best possible solutions for each running application" and shows manual
// per-thread multiplier choices (Figure 13). This bench closes the loop:
// each thread's index function is chosen *automatically* by the Advisor
// from that thread's solo profile, then the mix runs on the shared L1 —
// profile-guided selection with zero manual tuning.
#include <iostream>

#include "bench_common.hpp"
#include "core/advisor.hpp"
#include "indexing/factory.hpp"
#include "indexing/modulo.hpp"
#include "mt/smt_cache.hpp"
#include "mt_common.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"

namespace {

using namespace canu;

/// Per-thread index function picked by the Advisor's indexing-only ranking
/// (programmable organizations cannot be mixed per-thread in one array).
IndexFunctionPtr advised_index(const std::string& workload, double scale) {
  Advisor::Options opt;
  opt.include_programmable_associativity = false;
  WorkloadParams params;
  params.scale = scale;
  const AdvisorReport rep = Advisor(opt).advise_workload(workload, params);
  const SchemeSpec& best = rep.keep_conventional() ? SchemeSpec::baseline()
                                                   : rep.best().scheme;
  const CacheGeometry g = CacheGeometry::paper_l1();
  // Trained schemes need the profile trace to rebuild the function.
  const Trace profile = bench::bench_trace(workload, params);
  return make_index_function(best.index, g.sets(), g.offset_bits(), &profile,
                             best.index_options);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A13", "advisor-selected per-thread indexing (SMT)");

  const CacheGeometry l1 = CacheGeometry::paper_l1();
  ComparisonTable table("% reduction in shared-L1 miss-rate vs shared modulo");
  for (const auto& mix : bench::fig13_mixes()) {
    const ThreadedTrace stream = bench::make_mix_stream(mix, args.scale);

    std::vector<IndexFunctionPtr> modulo_fns(
        mix.size(), std::make_shared<ModuloIndex>(l1.sets(), l1.offset_bits()));
    SmtSharedCache baseline(l1, modulo_fns);
    baseline.run(stream);

    std::vector<IndexFunctionPtr> advised;
    std::string picks;
    for (const std::string& w : mix) {
      auto fn = advised_index(w, args.scale);
      if (!picks.empty()) picks += "+";
      picks += fn->name();
      advised.push_back(std::move(fn));
    }
    SmtSharedCache tuned(l1, advised);
    tuned.run(stream);

    table.set(bench::mix_label(mix), "advisor",
              percent_reduction(baseline.stats().miss_rate(),
                                tuned.stats().miss_rate()));
    std::cout << bench::mix_label(mix) << " -> " << picks << "\n";
  }
  std::cout << "\n";
  bench::emit(table, args);
  return 0;
}
