// Ablation A8: the instruction-cache side of the paper's configuration.
//
// The paper simulates a 32 KB direct-mapped L1I alongside the L1D but
// reports data-cache measurements only. This ablation quantifies why:
// instruction streams are dramatically more uniform (low kurtosis, tiny
// miss rates) than data streams of the same programs, leaving the indexing
// and associativity tricks almost nothing to recover.
#include <iostream>

#include "bench_common.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/split_hierarchy.hpp"
#include "sim/comparison.hpp"
#include "sim/runner.hpp"
#include "trace/fetch_gen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A8", "instruction-cache uniformity (split L1)");

  // Three synthetic programs of increasing code footprint.
  struct CodeShape {
    const char* label;
    std::uint32_t functions;
    double loop_probability;
  };
  const CodeShape shapes[] = {
      {"small_loopy", 24, 0.55},
      {"medium", 96, 0.35},
      {"large_flat", 320, 0.15},
  };

  TextTable table;
  table.set_header({"code image", "fetches", "L1I miss %", "%sets < avg/2",
                    "miss kurtosis", "xor gain %", "column gain %"});
  for (const CodeShape& shape : shapes) {
    FetchParams fp;
    fp.functions = shape.functions;
    fp.loop_probability = shape.loop_probability;
    fp.length = static_cast<std::size_t>(600'000 * args.scale);
    const Trace fetch = generate_fetch_trace(fp);

    SetAssocCache base(CacheGeometry::paper_l1());
    const RunResult rb = run_trace(base, fetch);

    auto xor_model = build_l1_model(
        SchemeSpec::indexing(IndexScheme::kXor), CacheGeometry::paper_l1(),
        &fetch);
    const RunResult rx = run_trace(*xor_model, fetch);

    auto col_model = build_l1_model(SchemeSpec::column_associative(),
                                    CacheGeometry::paper_l1(), &fetch);
    const RunResult rc = run_trace(*col_model, fetch);

    table.add_row(
        {shape.label, std::to_string(fetch.size()),
         TextTable::num(100.0 * rb.miss_rate(), 4),
         TextTable::num(100.0 * rb.uniformity.frac_under_half, 1),
         TextTable::num(rb.uniformity.miss_moments.kurtosis, 1),
         TextTable::num(percent_reduction(rb.miss_rate(), rx.miss_rate()), 2),
         TextTable::num(percent_reduction(rb.miss_rate(), rc.miss_rate()),
                        2)});
  }
  table.print(std::cout);

  // A combined split-hierarchy run: fft data + medium code.
  FetchParams fp;
  fp.length = static_cast<std::size_t>(1'000'000 * args.scale);
  const Trace fetch = generate_fetch_trace(fp);
  const Trace data = bench::bench_trace("fft", bench::params_for(args));
  const Trace merged = merge_fetch_data(fetch, data, 3);
  SetAssocCache l1i(CacheGeometry::paper_l1());
  SetAssocCache l1d(CacheGeometry::paper_l1());
  SplitHierarchy h(l1i, l1d, CacheGeometry::paper_l2());
  const SplitHierarchyResult res = h.run(merged);
  std::cout << "\nSplit hierarchy (fft data + synthetic code, 3:1): L1I miss "
            << TextTable::num(100.0 * res.l1i.miss_rate(), 3) << "%, L1D miss "
            << TextTable::num(100.0 * res.l1d.miss_rate(), 3)
            << "%, measured AMAT "
            << TextTable::num(res.measured_amat(), 3) << " cycles\n";
  return 0;
}
