// Figure 7: % reduction in average memory access time (AMAT) for the three
// programmable associativity schemes vs the direct-mapped baseline, using
// the paper's formulas (8) (adaptive) and (9) (column-associative).
//
// Paper shape: smaller than the miss-rate reductions (alternate-location
// hits cost extra cycles); column-associative posts the greatest AMAT
// reduction overall; a few benchmarks go slightly negative.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 7", "AMAT reduction of programmable associativity");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_assoc_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.amat_reduction_table(), args);

  std::cout << "\nBaseline AMAT (cycles):\n";
  for (const std::string& w : rep.workloads) {
    std::cout << "  " << w << ": "
              << TextTable::num(rep.baseline_runs.at(w).amat, 3) << "\n";
  }
  return 0;
}
