// Figure 8: % reduction in miss rate when XOR, odd-multiplier and
// prime-modulo indexing are used as the *primary* index of a
// column-associative cache, compared against the plain (modulo-indexed)
// column-associative cache, on the SPEC 2006-like workloads.
//
// Paper shape: odd-multiplier pairs best with the column-associative
// organization; some benchmarks degrade under the non-conventional primary
// index (the paper calls out calculix and sjeng).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 8",
                "column-associative + non-traditional primary index (SPEC)");

  EvalOptions opt = bench::eval_options_for(args);
  // The comparison baseline for this figure is the plain column-associative
  // cache, not the direct-mapped cache.
  opt.baseline = SchemeSpec::column_associative();
  Evaluator ev(opt);
  ev.add_scheme(SchemeSpec::column_associative(IndexScheme::kXor));
  ev.add_scheme(SchemeSpec::column_associative(IndexScheme::kOddMultiplier));
  ev.add_scheme(SchemeSpec::column_associative(IndexScheme::kPrimeModulo));
  const EvalReport rep = ev.evaluate(paper_spec_set());
  bench::emit(rep.miss_reduction_table(), args);
  return 0;
}
