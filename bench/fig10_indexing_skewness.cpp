// Figure 10: % increase in the skewness of per-set misses for the five
// indexing schemes vs the baseline, across MiBench. A negative value means
// the scheme made the miss distribution more symmetric (more uniform).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 10", "skewness increase of per-set misses (indexing)");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_indexing_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.skewness_increase_table(), args);
  return 0;
}
