// Figure 13: multiple indexing schemes in a multithreaded (SMT-like)
// system — % reduction in shared-L1 misses when each co-scheduled thread
// uses a different odd-multiplier index function, vs all threads sharing
// conventional modulo indexing.
//
// Paper shape: significant reductions for most mixes (tens of percent),
// because per-thread hashing de-correlates the threads' hot sets.
#include <memory>

#include "bench_common.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "mt/smt_cache.hpp"
#include "mt_common.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 13", "per-thread indexing in an SMT shared L1");

  const CacheGeometry l1 = CacheGeometry::paper_l1();
  ComparisonTable table("% reduction in shared-L1 miss-rate vs shared modulo");

  for (const auto& mix : bench::fig13_mixes()) {
    const ThreadedTrace stream = bench::make_mix_stream(mix, args.scale);

    // Baseline: every thread uses conventional modulo indexing.
    std::vector<IndexFunctionPtr> modulo_fns(
        mix.size(), std::make_shared<ModuloIndex>(l1.sets(), l1.offset_bits()));
    SmtSharedCache baseline(l1, modulo_fns);
    baseline.run(stream);

    // Treatment: thread t uses the t-th recommended odd multiplier.
    std::vector<IndexFunctionPtr> odd_fns;
    for (std::size_t t = 0; t < mix.size(); ++t) {
      const auto mult = OddMultiplierIndex::kRecommendedMultipliers
          [t % OddMultiplierIndex::kRecommendedMultipliers.size()];
      odd_fns.push_back(
          std::make_shared<OddMultiplierIndex>(l1.sets(), l1.offset_bits(), mult));
    }
    SmtSharedCache multi(l1, odd_fns);
    multi.run(stream);

    table.set(bench::mix_label(mix), "multi_odd_multiplier",
              percent_reduction(baseline.stats().miss_rate(),
                                multi.stats().miss_rate()));
  }
  bench::emit(table, args);
  return 0;
}
