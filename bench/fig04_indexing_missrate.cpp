// Figure 4: % reduction in miss rate for the five indexing schemes (XOR,
// odd-multiplier, prime-modulo, Givargis, Givargis-XOR) vs the conventional
// direct-mapped baseline, across the 11 MiBench benchmarks.
//
// Paper shape to reproduce: no scheme wins consistently; Givargis is the
// worst on average for 32-byte lines; some benchmarks see large negative
// values (the scheme hurts).
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 4", "miss-rate reduction of indexing schemes");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_indexing_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.miss_reduction_table(), args);

  std::cout << "\nBaseline miss rates (direct[modulo], %):\n";
  for (const std::string& w : rep.workloads) {
    std::cout << "  " << w << ": "
              << TextTable::num(100.0 * rep.baseline_runs.at(w).miss_rate(), 3)
              << "\n";
  }
  return 0;
}
