// Ablation A5: simulator throughput microbenchmarks (google-benchmark).
//
// Measures simulated references per second for every cache organization,
// plus trace generation and the Givargis training pass — the costs that
// determine how large an evaluation campaign the framework sustains.
#include <benchmark/benchmark.h>

#include "assoc/adaptive_cache.hpp"
#include "assoc/bcache.hpp"
#include "assoc/column_associative.hpp"
#include "cache/belady.hpp"
#include "cache/hierarchy.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/victim_cache.hpp"
#include "indexing/givargis.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace canu;

const Trace& bench_trace() {
  static const Trace trace = [] {
    Trace t("bench");
    Xoshiro256 rng(11);
    for (int i = 0; i < 200'000; ++i) {
      t.append(0x1000'0000 + rng.below(8192) * 32, AccessType::kRead);
    }
    return t;
  }();
  return trace;
}

template <typename ModelT, typename... Args>
void run_model_bench(benchmark::State& state, Args&&... args) {
  const Trace& trace = bench_trace();
  ModelT model(std::forward<Args>(args)...);
  for (auto _ : state) {
    model.flush();
    for (const MemRef& r : trace) {
      benchmark::DoNotOptimize(model.access(r.addr, r.type));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

void BM_DirectMapped(benchmark::State& state) {
  run_model_bench<SetAssocCache>(state, CacheGeometry::paper_l1());
}
BENCHMARK(BM_DirectMapped);

void BM_EightWay(benchmark::State& state) {
  run_model_bench<SetAssocCache>(state, CacheGeometry{32 * 1024, 32, 8});
}
BENCHMARK(BM_EightWay);

void BM_ColumnAssociative(benchmark::State& state) {
  run_model_bench<ColumnAssociativeCache>(state, CacheGeometry::paper_l1());
}
BENCHMARK(BM_ColumnAssociative);

void BM_AdaptiveCache(benchmark::State& state) {
  run_model_bench<AdaptiveCache>(state, CacheGeometry::paper_l1());
}
BENCHMARK(BM_AdaptiveCache);

void BM_BCache(benchmark::State& state) {
  run_model_bench<BCache>(state, CacheGeometry::paper_l1());
}
BENCHMARK(BM_BCache);

void BM_VictimCache(benchmark::State& state) {
  run_model_bench<VictimCache>(state, CacheGeometry::paper_l1(), 8u);
}
BENCHMARK(BM_VictimCache);

void BM_TwoLevelHierarchy(benchmark::State& state) {
  const Trace& trace = bench_trace();
  SetAssocCache l1(CacheGeometry::paper_l1());
  for (auto _ : state) {
    Hierarchy h(l1, CacheGeometry::paper_l2());
    h.flush();
    benchmark::DoNotOptimize(h.run(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TwoLevelHierarchy);

void BM_BeladyOpt(benchmark::State& state) {
  const Trace& trace = bench_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_opt(trace, CacheGeometry{32 * 1024, 32, 8}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_BeladyOpt);

void BM_GivargisTraining(benchmark::State& state) {
  const Trace& trace = bench_trace();
  for (auto _ : state) {
    GivargisIndex idx(trace, 1024, 5);
    benchmark::DoNotOptimize(idx.selected_bits());
  }
}
BENCHMARK(BM_GivargisTraining);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams p;
  p.scale = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_workload("fft", p));
  }
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace

BENCHMARK_MAIN();
