// Shared helpers for the multithreaded benches (Figures 13 and 14):
// build per-thread traces with disjoint address spaces and interleave them.
#pragma once

#include <string>
#include <vector>

#include "mt/interleave.hpp"
#include "workloads/workload.hpp"

namespace canu::bench {

/// The thread mixes of the paper's Figure 13.
inline const std::vector<std::vector<std::string>>& fig13_mixes() {
  static const std::vector<std::vector<std::string>> mixes = {
      {"bitcount", "adpcm"},
      {"bzip2", "libquantum"},
      {"fft", "susan"},
      {"gromacs", "namd"},
      {"milc", "namd"},
      {"qsort", "basicmath"},
      {"qsort", "patricia"},
      {"fft", "basicmath", "patricia", "susan"},
      {"susan", "bitcount", "adpcm", "patricia"},
  };
  return mixes;
}

/// The thread mixes of the paper's Figure 14.
inline const std::vector<std::vector<std::string>>& fig14_mixes() {
  static const std::vector<std::vector<std::string>> mixes = {
      {"bitcount", "adpcm"},
      {"fft", "susan"},
      {"qsort", "basicmath"},
      {"qsort", "fft"},
      {"qsort", "patricia"},
      {"libquantum", "milc"},
      {"milc", "namd"},
      {"gromacs", "namd"},
      {"bzip2", "libquantum"},
      {"fft", "basicmath", "patricia", "susan"},
      {"susan", "bitcount", "adpcm", "patricia"},
  };
  return mixes;
}

inline std::string mix_label(const std::vector<std::string>& mix) {
  std::string label;
  for (const std::string& w : mix) {
    if (!label.empty()) label += "_";
    label += w;
  }
  return label;
}

/// Generate the mix's traces in disjoint 1-GiB address windows and
/// round-robin interleave them.
inline ThreadedTrace make_mix_stream(const std::vector<std::string>& mix,
                                     double scale) {
  std::vector<Trace> traces;
  traces.reserve(mix.size());
  for (std::size_t t = 0; t < mix.size(); ++t) {
    WorkloadParams p;
    p.scale = scale;
    p.address_base = 0x1000'0000ULL + t * 0x4000'0000ULL;
    traces.push_back(generate_workload(mix[t], p));
  }
  return interleave_round_robin(traces);
}

}  // namespace canu::bench
