// Ablation A15: miss-rate curves (MRC) — miss rate vs cache capacity for
// the baseline and the column-associative organization.
//
// The MRC shows where each workload's working set lands relative to the
// paper's 32 KB point and therefore how much headroom any conflict-removal
// technique has at each size: where the curve is capacity-dominated
// (steep), indexing tricks are irrelevant; where it plateaus above the
// fully-associative curve, conflicts rule.
#include <iostream>

#include "bench_common.hpp"
#include "cache/belady.hpp"
#include "cache/set_assoc_cache.hpp"
#include "assoc/column_associative.hpp"
#include "sim/comparison.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A15", "miss-rate curves, 4 KB - 256 KB");

  const std::uint64_t sizes[] = {4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
                                 64 * 1024, 128 * 1024, 256 * 1024};
  for (const std::string w : {"fft", "qsort", "patricia", "sjeng"}) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    TextTable table;
    table.set_header({"capacity", "direct %", "column_assoc %",
                      "fully-assoc LRU %", "OPT %"});
    for (const std::uint64_t size : sizes) {
      const CacheGeometry dm{size, 32, 1};
      SetAssocCache direct(dm);
      ColumnAssociativeCache column(dm);
      SetAssocCache full(
          CacheGeometry{size, 32, static_cast<unsigned>(size / 32)});
      for (const MemRef& r : trace) {
        direct.access(r.addr, r.type);
        column.access(r.addr, r.type);
        full.access(r.addr, r.type);
      }
      const OptResult opt = simulate_opt(
          trace, CacheGeometry{size, 32, static_cast<unsigned>(size / 32)});
      table.add_row({std::to_string(size / 1024) + "KB",
                     TextTable::num(100.0 * direct.stats().miss_rate(), 3),
                     TextTable::num(100.0 * column.stats().miss_rate(), 3),
                     TextTable::num(100.0 * full.stats().miss_rate(), 3),
                     TextTable::num(100.0 * opt.miss_rate(), 3)});
    }
    std::cout << w << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: direct minus fully-assoc = conflict headroom; "
               "fully-assoc minus OPT = replacement headroom.\n";
  return 0;
}
