// Figure 12: % increase in the skewness of per-set misses for the three
// programmable associativity schemes vs the baseline, across MiBench.
// Paper shape: predominantly negative (improved symmetry of misses).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 12",
                "skewness increase of per-set misses (prog. associativity)");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_paper_assoc_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  bench::emit(rep.skewness_increase_table(), args);
  return 0;
}
