// Ablation A9: 3C decomposition — how much of each benchmark's miss traffic
// is conflict (the only component the paper's techniques can remove), and
// how much of it each scheme actually removes.
#include <iostream>

#include "bench_common.hpp"
#include "sim/comparison.hpp"
#include "stats/three_c.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A9", "3C miss decomposition per scheme");

  // Part 1: the baseline's miss anatomy.
  TextTable anatomy;
  anatomy.set_header({"benchmark", "misses", "compulsory %", "capacity %",
                      "conflict %"});
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    auto base = build_l1_model(SchemeSpec::baseline(),
                               CacheGeometry::paper_l1(), &trace);
    const ThreeCReport r = classify_misses_paper_l1(*base, trace);
    const double total = static_cast<double>(r.total_misses);
    anatomy.add_row(
        {w, std::to_string(r.total_misses),
         TextTable::num(100.0 * static_cast<double>(r.compulsory) / total, 1),
         TextTable::num(100.0 * static_cast<double>(r.capacity) / total, 1),
         TextTable::num(100.0 * static_cast<double>(r.conflict) / total, 1)});
  }
  anatomy.print(std::cout);

  // Part 2: conflict misses remaining under each scheme (thousands).
  std::cout << "\n";
  ComparisonTable remaining("conflict misses remaining (thousands; signed — "
                            "negative beats fully-assoc LRU)");
  const std::vector<SchemeSpec> specs = {
      SchemeSpec::baseline(),
      SchemeSpec::indexing(IndexScheme::kOddMultiplier),
      SchemeSpec::column_associative(),
      SchemeSpec::adaptive_cache(),
      SchemeSpec::b_cache(),
      SchemeSpec::skewed_assoc(2),
  };
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    for (const SchemeSpec& spec : specs) {
      auto model =
          build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
      const ThreeCReport r = classify_misses_paper_l1(*model, trace);
      remaining.set(w, spec.label(),
                    static_cast<double>(r.conflict) / 1000.0);
    }
  }
  bench::emit(remaining, args);
  std::cout << "\nReading: compulsory and capacity components are identical "
               "across schemes (same trace,\nsame capacity); the conflict "
               "column is the whole battleground of the paper.\n";
  return 0;
}
