// Ablation A6: the paper's own Figure 3 proposal — the partner-index cache
// (dynamically linking cold sets to hot ones) — evaluated head-to-head with
// the three programmable-associativity schemes the paper measured, plus the
// skewed-associative cache as the classic hash+associativity hybrid.
//
// The paper sketches the partner mechanism in §1.2 but never evaluates it;
// this bench answers the question the sketch raises: where does selective,
// length-2 chaining land between column-associative (fixed partner = MSB
// flip) and the adaptive cache (full OUT directory)?
#include <iostream>

#include "bench_common.hpp"
#include "sim/comparison.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A6",
                "partner-index cache (paper Fig. 3) and skewed associativity");

  EvalOptions opt = bench::eval_options_for(args);
  Evaluator ev(opt);
  ev.add_scheme(SchemeSpec::partner_cache());
  ev.add_scheme(SchemeSpec::column_associative());
  ev.add_scheme(SchemeSpec::adaptive_cache());
  ev.add_scheme(SchemeSpec::b_cache());
  ev.add_scheme(SchemeSpec::skewed_assoc(2));
  const EvalReport rep = ev.evaluate(paper_mibench_set());

  bench::emit(rep.miss_reduction_table(), args);
  std::cout << "\n";
  bench::emit(rep.amat_reduction_table(), args);
  std::cout
      << "\nReading: 'partner' is the paper's §1.2/Figure 3 sketch made\n"
         "concrete (hot sets dynamically link a cold set as a 2-entry\n"
         "overflow); compare its column against column_assoc (static MSB-\n"
         "flip partner) and adaptive (full OUT directory).\n";
  return 0;
}
