// Ablation A14: the paper's schemes applied at the L2 level.
//
// The paper evaluates everything at L1 ("direct-mapped and low associative
// caches are still used at L-1 level"); its intro notes that higher
// associativities at L2 mitigate but do not eliminate non-uniformity. All
// CANU organizations are geometry-parametric, so this bench keeps the L1
// fixed at the paper's baseline and swaps the L2 organization: 8-way LRU
// (reference), direct-mapped modulo, direct-mapped odd-multiplier,
// column-associative and skewed 2-way. The swept L2 is shrunk to 64 KB —
// at the paper's 256 KB every workload's post-L1 footprint fits and all
// organizations tie at compulsory misses; 64 KB restores the capacity
// pressure that differentiates them.
#include <iostream>
#include <memory>

#include "assoc/column_associative.hpp"
#include "assoc/skewed_assoc.hpp"
#include "bench_common.hpp"
#include "cache/hierarchy.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/odd_multiplier.hpp"
#include "sim/comparison.hpp"

namespace {

using namespace canu;

std::unique_ptr<CacheModel> make_l2(const std::string& which) {
  const CacheGeometry dm{64 * 1024, 32, 1};  // 2048 sets direct-mapped
  if (which == "8way_lru") {
    return std::make_unique<SetAssocCache>(CacheGeometry{64 * 1024, 32, 8});
  }
  if (which == "direct") return std::make_unique<SetAssocCache>(dm);
  if (which == "direct_odd") {
    return std::make_unique<SetAssocCache>(
        dm, std::make_shared<OddMultiplierIndex>(dm.sets(), dm.offset_bits(),
                                                 21));
  }
  if (which == "column") {
    return std::make_unique<ColumnAssociativeCache>(dm);
  }
  // skewed 2-way of the same capacity
  return std::make_unique<SkewedAssocCache>(CacheGeometry{64 * 1024, 32, 2});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A14", "uniformity schemes applied at a 64 KB L2");

  ComparisonTable table("L2 miss rate % (64 KB L2; L1 = paper baseline)");
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, bench::params_for(args));
    for (const std::string which :
         {"8way_lru", "direct", "direct_odd", "column", "skewed"}) {
      SetAssocCache l1(CacheGeometry::paper_l1());
      Hierarchy h(l1, make_l2(which));
      const HierarchyResult res = h.run(trace);
      // Only meaningful when the L2 actually sees traffic.
      table.set(w, which,
                res.l2.accesses == 0 ? 0.0 : 100.0 * res.l2.miss_rate());
    }
  }
  bench::emit(table, args);
  std::cout << "\nReading: how much of the 8-way LRU L2's advantage can a "
               "cheaper organization recover\nwith hashing or relocation "
               "alone? (L1 filtering makes L2 traffic miss-heavy and\n"
               "less local, which stresses the schemes differently than "
               "Figure 4/6 did.)\n";
  return 0;
}
