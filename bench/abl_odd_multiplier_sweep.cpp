// Ablation A2: sensitivity of the odd-multiplier scheme to the multiplier
// choice — the paper's authors recommend 9, 21, 31 and 61 (§II.C); this
// sweep shows how much the choice matters per benchmark. (Figure 13 also
// relies on distinct multipliers behaving differently per thread.)
#include "bench_common.hpp"
#include "indexing/odd_multiplier.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A2", "odd-multiplier choice sweep");

  EvalOptions opt;
  opt.params = bench::params_for(args);

  ComparisonTable table("% reduction in miss-rate by odd multiplier");
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = generate_workload(w, opt.params);
    auto base_model =
        build_l1_model(SchemeSpec::baseline(), opt.l1_geometry, &trace);
    const RunResult base = run_trace(*base_model, trace, opt.run);
    for (const std::uint64_t mult :
         OddMultiplierIndex::kRecommendedMultipliers) {
      auto model = build_l1_model(
          SchemeSpec::indexing(IndexScheme::kOddMultiplier, mult),
          opt.l1_geometry, &trace);
      const RunResult r = run_trace(*model, trace, opt.run);
      table.set(w, "p=" + std::to_string(mult),
                percent_reduction(base.miss_rate(), r.miss_rate()));
    }
  }
  bench::emit(table, args);
  return 0;
}
