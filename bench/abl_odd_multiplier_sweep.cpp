// Ablation A2: sensitivity of the odd-multiplier scheme to the multiplier
// choice — the paper's authors recommend 9, 21, 31 and 61 (§II.C); this
// sweep shows how much the choice matters per benchmark. (Figure 13 also
// relies on distinct multipliers behaving differently per thread.)
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "indexing/odd_multiplier.hpp"
#include "sim/batch_runner.hpp"
#include "sim/comparison.hpp"
#include "stats/moments.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A2", "odd-multiplier choice sweep");

  EvalOptions opt = bench::eval_options_for(args);

  ComparisonTable table("% reduction in miss-rate by odd multiplier");
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, opt.params);

    // Baseline plus one pipeline per recommended multiplier, all replayed
    // in a single batch sweep over the trace.
    BatchRunner runner(opt.run);
    std::vector<std::unique_ptr<CacheModel>> models;
    models.push_back(
        build_l1_model(SchemeSpec::baseline(), opt.l1_geometry, &trace));
    runner.add(*models.back());
    for (const std::uint64_t mult :
         OddMultiplierIndex::kRecommendedMultipliers) {
      models.push_back(build_l1_model(
          SchemeSpec::indexing(IndexScheme::kOddMultiplier, mult),
          opt.l1_geometry, &trace));
      runner.add(*models.back());
    }
    SpanSource source(w, trace.refs());
    const std::vector<RunResult> results = run_batch(runner, source);

    const RunResult& base = results.front();
    std::size_t i = 1;
    for (const std::uint64_t mult :
         OddMultiplierIndex::kRecommendedMultipliers) {
      table.set(w, "p=" + std::to_string(mult),
                percent_reduction(base.miss_rate(),
                                  results[i++].miss_rate()));
    }
  }
  bench::emit(table, args);
  return 0;
}
