// Ablation A3: how much of the conflict problem survives conventional
// associativity — miss rates for 1/2/4/8-way LRU caches, the Jouppi victim
// cache, the three programmable-associativity organizations, and the
// fully-associative Belady OPT floor the paper invokes in §III.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cache/belady.hpp"
#include "sim/batch_runner.hpp"
#include "sim/comparison.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A3", "associativity ladder vs the OPT floor");

  EvalOptions opt = bench::eval_options_for(args);

  ComparisonTable table("miss rate %, 32KB capacity");
  const std::vector<SchemeSpec> specs = {
      SchemeSpec::baseline(),        SchemeSpec::set_assoc(2),
      SchemeSpec::set_assoc(4),      SchemeSpec::set_assoc(8),
      SchemeSpec::victim_cache(8),   SchemeSpec::column_associative(),
      SchemeSpec::adaptive_cache(),  SchemeSpec::b_cache(),
  };
  for (const std::string& w : paper_mibench_set()) {
    const Trace trace = bench::bench_trace(w, opt.params);
    BatchRunner runner(opt.run);
    std::vector<std::unique_ptr<CacheModel>> models;
    for (const SchemeSpec& spec : specs) {
      models.push_back(build_l1_model(spec, opt.l1_geometry, &trace));
      runner.add(*models.back());
    }
    SpanSource source(w, trace.refs());
    const std::vector<RunResult> results = run_batch(runner, source);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      table.set(w, specs[i].label(), 100.0 * results[i].miss_rate());
    }
    // Fully-associative Belady OPT (theoretical floor, paper §III).
    const CacheGeometry full{32 * 1024, 32,
                             static_cast<unsigned>(32 * 1024 / 32)};
    const OptResult optr = simulate_opt(trace, full);
    table.set(w, "OPT(floor)", 100.0 * optr.miss_rate());
  }
  bench::emit(table, args);
  std::cout << "\nReading: every organization must sit between direct[modulo]"
               " and OPT(floor).\n";
  return 0;
}
