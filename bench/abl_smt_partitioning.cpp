// Ablation A16: SMT sharing strategies compared — the full menu.
//
// For every 2-thread mix of the paper's Figure 13/14 set, the 32 KB L1 is
// shared five ways:
//   shared        — one direct-mapped array, both threads modulo-indexed
//   shared+multi  — shared array, per-thread odd multipliers (Figure 13)
//   set-part      — static set partitioning (Figure 14 baseline)
//   way-part      — 2-way array, one allocation way per thread
//   set-part+ad   — partitioned adaptive (Figure 14 proposal)
#include <memory>

#include <iostream>

#include "bench_common.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "mt/partitioned_adaptive.hpp"
#include "mt/smt_cache.hpp"
#include "mt/way_partitioned.hpp"
#include "mt_common.hpp"
#include "sim/comparison.hpp"

int main(int argc, char** argv) {
  using namespace canu;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation A16", "SMT sharing strategies (2-thread mixes)");

  const CacheGeometry l1 = CacheGeometry::paper_l1();
  ComparisonTable table("shared-L1 miss rate %");
  for (const auto& mix : bench::fig14_mixes()) {
    if (mix.size() != 2) continue;  // way partitioning shown for pairs
    const ThreadedTrace stream = bench::make_mix_stream(mix, args.scale);
    const std::string row = bench::mix_label(mix);

    std::vector<IndexFunctionPtr> modulo_fns(
        2, std::make_shared<ModuloIndex>(l1.sets(), l1.offset_bits()));
    SmtSharedCache shared(l1, modulo_fns);
    shared.run(stream);
    table.set(row, "shared", 100.0 * shared.stats().miss_rate());

    SmtSharedCache multi(
        l1, {std::make_shared<OddMultiplierIndex>(l1.sets(), l1.offset_bits(), 9),
             std::make_shared<OddMultiplierIndex>(l1.sets(), l1.offset_bits(),
                                                  21)});
    multi.run(stream);
    table.set(row, "shared+multi", 100.0 * multi.stats().miss_rate());

    PartitionedDirectCache set_part(l1, 2);
    set_part.run(stream);
    table.set(row, "set-part", 100.0 * set_part.stats().miss_rate());

    WayPartitionedCache way_part(CacheGeometry{32 * 1024, 32, 2}, 2);
    way_part.run(stream);
    table.set(row, "way-part", 100.0 * way_part.stats().miss_rate());

    PartitionedAdaptiveCache adaptive(l1, 2);
    adaptive.run(stream);
    table.set(row, "set-part+ad", 100.0 * adaptive.stats().miss_rate());
  }
  bench::emit(table, args);
  std::cout << "\nReading: with disjoint per-process address spaces, "
               "way-part and set-part are placement-\nequivalent (each "
               "thread gets a 16 KB direct-mapped slice either way) — they "
               "separate\nonly with shared data or asymmetric allocation. "
               "The interesting deltas are shared vs\npartitioned "
               "(isolation costs capacity here) and the adaptive recovery "
               "of part of it.\n";
  return 0;
}
