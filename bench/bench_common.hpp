// Shared plumbing for the figure-reproduction benches.
//
// Every fig*/abl* binary prints a titled ComparisonTable to stdout (rows =
// benchmarks, columns = schemes, plus the trailing Average row the paper's
// figures carry). An optional first argument scales the workloads
// (default 1.0); `--csv` after it switches the output to CSV for plotting.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/evaluator.hpp"
#include "workloads/workload.hpp"

namespace canu::bench {

struct BenchArgs {
  double scale = 1.0;
  bool csv = false;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
    } else {
      args.scale = std::strtod(arg.c_str(), nullptr);
      if (args.scale <= 0) args.scale = 1.0;
    }
  }
  return args;
}

inline WorkloadParams params_for(const BenchArgs& args) {
  WorkloadParams p;
  p.scale = args.scale;
  return p;
}

inline void emit(const ComparisonTable& table, const BenchArgs& args) {
  if (args.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "=== " << figure << " — " << what << " ===\n"
            << "L1 32KB direct-mapped 32B lines (1024 sets); L2 256KB 8-way "
               "LRU; paper: ICPP 2011, DOI 10.1109/ICPP.2011.12\n\n";
}

}  // namespace canu::bench
