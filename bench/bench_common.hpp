// Shared plumbing for the figure-reproduction benches.
//
// Every fig*/abl* binary prints a titled ComparisonTable to stdout (rows =
// benchmarks, columns = schemes, plus the trailing Average row the paper's
// figures carry). An optional argument scales the workloads (default 1.0);
// `--csv` switches the output to CSV for plotting; `--threads N` sets the
// worker-thread count (CANU_THREADS is the env fallback, N=1 selects the
// serial engine); `--seed=N` varies workload inputs. Observability:
// `--metrics-out=FILE` writes a run manifest and `--trace-events=FILE`
// Chrome trace-event spans (both written at exit); `--progress` prints a
// stderr heartbeat (TTY only, `--progress=force` overrides). Workload
// traces go through the on-disk trace cache (trace/trace_cache.hpp), so
// re-running a bench — or running a different bench over the same
// workloads — skips generation; set CANU_TRACE_CACHE=0 to opt out.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "core/evaluator.hpp"
#include "obs/obs.hpp"
#include "trace/trace_cache.hpp"
#include "util/cli_flags.hpp"
#include "workloads/workload.hpp"

namespace canu::bench {

struct BenchArgs {
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool csv = false;
  /// Worker threads for the evaluation (0 = CANU_THREADS env var if set,
  /// else hardware concurrency; 1 = the exact serial engine).
  unsigned threads = 0;
  std::string metrics_out;   ///< run-manifest path (empty = off)
  std::string trace_events;  ///< trace-event path (empty = off)
  bool progress = false;
  bool progress_force = false;
};

/// Parse bench arguments without touching the process: returns the parsed
/// arguments, or std::nullopt with `*error` describing the offending
/// argument. Accepted: an optional positive scale factor, `--csv`,
/// `--seed=N`, `--threads=N` (or `--threads N`), `--metrics-out=FILE`,
/// `--trace-events=FILE`, and `--progress[=force]`.
inline std::optional<BenchArgs> try_parse_args(int argc, char** argv,
                                               std::string* error = nullptr) {
  BenchArgs args;
  bool have_scale = false;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
      continue;
    }
    if (flag_value(arg, "--threads", &value)) {
      const auto v = parse_thread_count(value, error);
      if (!v) return std::nullopt;
      args.threads = *v;
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        if (error) *error = "--threads requires a value";
        return std::nullopt;
      }
      const auto v = parse_thread_count(argv[++i], error);
      if (!v) return std::nullopt;
      args.threads = *v;
      continue;
    }
    if (flag_value(arg, "--seed", &value)) {
      const auto v = parse_u64(value, "--seed value", error);
      if (!v) return std::nullopt;
      args.seed = *v;
      continue;
    }
    if (flag_value(arg, "--metrics-out", &value)) {
      if (value.empty()) {
        if (error) *error = "--metrics-out needs a file path";
        return std::nullopt;
      }
      args.metrics_out = value;
      continue;
    }
    if (flag_value(arg, "--trace-events", &value)) {
      if (value.empty()) {
        if (error) *error = "--trace-events needs a file path";
        return std::nullopt;
      }
      args.trace_events = value;
      continue;
    }
    if (arg == "--progress") {
      args.progress = true;
      continue;
    }
    if (flag_value(arg, "--progress", &value)) {
      if (value != "force") {
        if (error) *error = "invalid --progress value: " + value;
        return std::nullopt;
      }
      args.progress = true;
      args.progress_force = true;
      continue;
    }
    if (arg.size() >= 2 && arg.front() == '-' &&
        (arg[1] < '0' || arg[1] > '9') && arg[1] != '.') {
      if (error) *error = "unknown option: " + arg;
      return std::nullopt;
    }
    if (have_scale) {
      if (error) *error = "unexpected extra argument: " + arg;
      return std::nullopt;
    }
    const auto scale = parse_positive_double(arg, "scale", error);
    if (!scale) return std::nullopt;
    args.scale = *scale;
    have_scale = true;
  }
  return args;
}

/// Parse or die: prints the error and a usage line, then exits nonzero, so
/// a typo'd invocation can never silently run at the default scale. When
/// observability outputs are requested, installs the global session and
/// registers an atexit hook that writes the artifacts when the bench ends.
inline BenchArgs parse_args(int argc, char** argv) {
  std::string error;
  const std::optional<BenchArgs> args = try_parse_args(argc, argv, &error);
  if (!args) {
    std::cerr << argv[0] << ": " << error << "\n"
              << "usage: " << argv[0]
              << " [scale] [--csv] [--seed=N] [--threads N]"
                 " [--metrics-out=FILE] [--trace-events=FILE]"
                 " [--progress[=force]]\n";
    std::exit(2);
  }
  if (!args->metrics_out.empty() || !args->trace_events.empty()) {
    std::string command;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command += ' ';
      command += argv[i];
    }
    obs::install_outputs(
        obs::OutputConfig{args->metrics_out, args->trace_events, command});
    std::atexit([] {
      try {
        obs::finalize_outputs();
      } catch (const std::exception& e) {
        std::cerr << "error writing observability artifacts: " << e.what()
                  << "\n";
      }
    });
  }
  return *args;
}

inline WorkloadParams params_for(const BenchArgs& args) {
  WorkloadParams p;
  p.scale = args.scale;
  p.seed = args.seed;
  return p;
}

/// EvalOptions pre-wired for a bench: workload scale, seed, and thread
/// count from the arguments, the environment-selected trace cache, and the
/// progress heartbeat when requested.
inline EvalOptions eval_options_for(const BenchArgs& args) {
  EvalOptions opt;
  opt.params = params_for(args);
  opt.threads = args.threads;
  opt.trace_cache_dir = default_trace_cache_dir();
  if (args.progress) {
    opt.progress = obs::make_progress_printer(args.progress_force);
  }
  return opt;
}

/// Workload trace for a bench that replays traces itself (rather than going
/// through the Evaluator): served from the trace cache when enabled.
inline Trace bench_trace(const std::string& name,
                         const WorkloadParams& params) {
  const std::string dir = default_trace_cache_dir();
  if (dir.empty()) return generate_workload(name, params);
  const TraceCache cache(dir);
  return cached_workload_trace(name, params, &cache);
}

inline void emit(const ComparisonTable& table, const BenchArgs& args) {
  if (args.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "=== " << figure << " — " << what << " ===\n"
            << "L1 32KB direct-mapped 32B lines (1024 sets); L2 256KB 8-way "
               "LRU; paper: ICPP 2011, DOI 10.1109/ICPP.2011.12\n\n";
}

}  // namespace canu::bench
