// Shared plumbing for the figure-reproduction benches.
//
// Every fig*/abl* binary prints a titled ComparisonTable to stdout (rows =
// benchmarks, columns = schemes, plus the trailing Average row the paper's
// figures carry). An optional argument scales the workloads (default 1.0);
// `--csv` switches the output to CSV for plotting; `--threads N` sets the
// worker-thread count (CANU_THREADS is the env fallback, N=1 selects the
// serial engine). Workload traces go
// through the on-disk trace cache (trace/trace_cache.hpp), so re-running a
// bench — or running a different bench over the same workloads — skips
// generation; set CANU_TRACE_CACHE=0 to opt out.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "core/evaluator.hpp"
#include "trace/trace_cache.hpp"
#include "workloads/workload.hpp"

namespace canu::bench {

struct BenchArgs {
  double scale = 1.0;
  bool csv = false;
  /// Worker threads for the evaluation (0 = CANU_THREADS env var if set,
  /// else hardware concurrency; 1 = the exact serial engine).
  unsigned threads = 0;
};

/// Parse bench arguments without touching the process: returns the parsed
/// arguments, or std::nullopt with `*error` describing the offending
/// argument. Accepted: an optional positive scale factor, `--csv`, and
/// `--threads=N` (or `--threads N`).
inline std::optional<BenchArgs> try_parse_args(int argc, char** argv,
                                               std::string* error = nullptr) {
  BenchArgs args;
  bool have_scale = false;
  const auto parse_threads = [&](const std::string& value) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || n == 0 ||
        n >= 4096) {
      if (error) *error = "invalid --threads value: " + value;
      return false;
    }
    args.threads = static_cast<unsigned>(n);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
      continue;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_threads(arg.substr(10))) return std::nullopt;
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        if (error) *error = "--threads requires a value";
        return std::nullopt;
      }
      if (!parse_threads(argv[++i])) return std::nullopt;
      continue;
    }
    if (arg.size() >= 2 && arg.front() == '-' &&
        (arg[1] < '0' || arg[1] > '9') && arg[1] != '.') {
      if (error) *error = "unknown option: " + arg;
      return std::nullopt;
    }
    if (have_scale) {
      if (error) *error = "unexpected extra argument: " + arg;
      return std::nullopt;
    }
    char* end = nullptr;
    const double scale = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || *end != '\0') {
      if (error) *error = "scale is not a number: " + arg;
      return std::nullopt;
    }
    if (!(scale > 0)) {
      if (error) *error = "scale must be > 0: " + arg;
      return std::nullopt;
    }
    args.scale = scale;
    have_scale = true;
  }
  return args;
}

/// Parse or die: prints the error and a usage line, then exits nonzero, so
/// a typo'd invocation can never silently run at the default scale.
inline BenchArgs parse_args(int argc, char** argv) {
  std::string error;
  const std::optional<BenchArgs> args = try_parse_args(argc, argv, &error);
  if (!args) {
    std::cerr << argv[0] << ": " << error << "\n"
              << "usage: " << argv[0] << " [scale] [--csv] [--threads N]\n";
    std::exit(2);
  }
  return *args;
}

inline WorkloadParams params_for(const BenchArgs& args) {
  WorkloadParams p;
  p.scale = args.scale;
  return p;
}

/// EvalOptions pre-wired for a bench: workload scale and thread count from
/// the arguments and the environment-selected trace cache.
inline EvalOptions eval_options_for(const BenchArgs& args) {
  EvalOptions opt;
  opt.params = params_for(args);
  opt.threads = args.threads;
  opt.trace_cache_dir = default_trace_cache_dir();
  return opt;
}

/// Workload trace for a bench that replays traces itself (rather than going
/// through the Evaluator): served from the trace cache when enabled.
inline Trace bench_trace(const std::string& name,
                         const WorkloadParams& params) {
  const std::string dir = default_trace_cache_dir();
  if (dir.empty()) return generate_workload(name, params);
  const TraceCache cache(dir);
  return cached_workload_trace(name, params, &cache);
}

inline void emit(const ComparisonTable& table, const BenchArgs& args) {
  if (args.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void banner(const std::string& figure, const std::string& what) {
  std::cout << "=== " << figure << " — " << what << " ===\n"
            << "L1 32KB direct-mapped 32B lines (1024 sets); L2 256KB 8-way "
               "LRU; paper: ICPP 2011, DOI 10.1109/ICPP.2011.12\n\n";
}

}  // namespace canu::bench
