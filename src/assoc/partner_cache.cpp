#include "assoc/partner_cache.hpp"

#include <algorithm>

#include "indexing/modulo.hpp"
#include "util/error.hpp"

namespace canu {

PartnerCache::PartnerCache(CacheGeometry geometry, PartnerConfig config,
                           IndexFunctionPtr index_fn)
    : geometry_(geometry),
      config_(config),
      index_fn_(std::move(index_fn)),
      lines_(geometry.sets()),
      partner_(geometry.sets(), kNoPartner),
      epoch_misses_(geometry.sets(), 0),
      epoch_accesses_(geometry.sets(), 0),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways == 1,
                 "partner cache extends a direct-mapped array");
  CANU_CHECK_MSG(config_.hot_threshold >= 1, "hot_threshold must be >= 1");
  CANU_CHECK_MSG(config_.epoch_length >= 64, "epoch_length must be >= 64");
  if (!index_fn_) {
    index_fn_ = std::make_shared<ModuloIndex>(geometry_.sets(),
                                              geometry_.offset_bits());
  }
}

void PartnerCache::link(std::uint64_t a, std::uint64_t b) {
  partner_[a] = static_cast<std::uint32_t>(b);
  partner_[b] = static_cast<std::uint32_t>(a);
  ++active_links_;
  ++links_formed_;
}

void PartnerCache::unlink(std::uint64_t set) {
  const std::uint32_t p = partner_[set];
  if (p == kNoPartner) return;
  partner_[p] = kNoPartner;
  partner_[set] = kNoPartner;
  --active_links_;
}

void PartnerCache::decay_epoch() {
  accesses_in_epoch_ = 0;
  for (std::uint64_t s = 0; s < geometry_.sets(); ++s) {
    // Dissolve links whose hot side went quiet this epoch, then halve the
    // counters so hotness adapts to phase changes.
    if (partner_[s] != kNoPartner && s < partner_[s] &&
        epoch_misses_[s] == 0 && epoch_misses_[partner_[s]] == 0) {
      unlink(s);
    }
    epoch_misses_[s] /= 2;
    epoch_accesses_[s] /= 2;
  }
}

std::uint32_t PartnerCache::find_cold_partner(
    std::uint64_t origin) const noexcept {
  std::uint32_t best = kNoPartner;
  std::uint32_t best_accesses = ~std::uint32_t{0};
  for (std::uint64_t s = 0; s < geometry_.sets(); ++s) {
    if (s == origin || partner_[s] != kNoPartner) continue;
    if (epoch_accesses_[s] < best_accesses) {
      best_accesses = epoch_accesses_[s];
      best = static_cast<std::uint32_t>(s);
      if (best_accesses == 0) break;  // cannot get colder
    }
  }
  return best;
}

AccessOutcome PartnerCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  const std::uint64_t i = index_fn_->index(addr);
  ++stats_.accesses;
  ++set_stats_[i].accesses;
  ++epoch_accesses_[i];
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;
  if (++accesses_in_epoch_ >= config_.epoch_length) decay_epoch();

  Line& primary = lines_[i];
  if (primary.valid && primary.line_addr == line_addr) {
    if (is_write) primary.dirty = true;
    ++stats_.hits;
    ++stats_.primary_hits;
    ++set_stats_[i].hits;
    stats_.lookup_cycles += 1;
    return {true, 1, 1};
  }

  // Follow the partner link, if any.
  const std::uint32_t p = partner_[i];
  if (p != kNoPartner) {
    Line& partner = lines_[p];
    ++set_stats_[p].accesses;
    if (partner.valid && partner.line_addr == line_addr) {
      ++stats_.hits;
      ++stats_.secondary_hits;
      ++stats_.swaps;
      ++set_stats_[p].hits;
      // Promote: swap the block back to its primary slot so the common
      // case stays single-cycle.
      std::swap(primary, partner);
      if (is_write) primary.dirty = true;
      stats_.lookup_cycles += 2;
      return {true, 2, 2};
    }
  }

  // Miss. Update hotness, possibly form a link, preserve the victim in the
  // partner slot when one exists.
  ++stats_.misses;
  ++set_stats_[i].misses;
  ++epoch_misses_[i];

  if (partner_[i] == kNoPartner &&
      epoch_misses_[i] >= config_.hot_threshold) {
    const std::uint32_t cold = find_cold_partner(i);
    if (cold != kNoPartner) link(i, cold);
  }

  if (primary.valid) {
    const std::uint32_t link_to = partner_[i];
    if (link_to != kNoPartner) {
      if (lines_[link_to].valid) {
        ++stats_.evictions;
        if (lines_[link_to].dirty) ++stats_.writebacks;
      }
      lines_[link_to] = primary;
      ++stats_.swaps;
    } else {
      ++stats_.evictions;
      if (primary.dirty) ++stats_.writebacks;
    }
  }
  primary = Line{line_addr, true, is_write};
  const std::uint32_t probes = p != kNoPartner ? 2u : 1u;
  if (probes == 2) ++partner_probed_misses_;
  stats_.lookup_cycles += probes;
  return {false, probes, probes};
}

std::string PartnerCache::name() const {
  return "partner[" + index_fn_->name() + "]";
}

void PartnerCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
  links_formed_ = 0;
  partner_probed_misses_ = 0;
}

void PartnerCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  std::fill(partner_.begin(), partner_.end(), kNoPartner);
  std::fill(epoch_misses_.begin(), epoch_misses_.end(), 0u);
  std::fill(epoch_accesses_.begin(), epoch_accesses_.end(), 0u);
  active_links_ = 0;
  accesses_in_epoch_ = 0;
}

}  // namespace canu
