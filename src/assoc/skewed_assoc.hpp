// Skewed-associative cache (Seznec, ISCA 1993) — an extension beyond the
// paper's evaluated set, included because it is the classic marriage of the
// paper's two families: associativity for conflict tolerance plus
// per-way hashing for access spreading.
//
// The cache is split into `ways` banks of lines/ways sets each; bank w
// indexes with its own hash function f_w, so two blocks that conflict in
// one bank almost surely do not conflict in another. Lookup probes all
// banks in parallel (single-cycle hit, like a conventional set-associative
// cache); replacement selects the LRU line among the banks' candidate
// slots.
//
// Skewing family: f_w(addr) = (I XOR h_w(T)) mod sets_per_bank with
// h_w(T) = (T * m_w) folded to the index width and m_w an odd multiplier
// unique per bank — a simple, deterministic member of the inter-bank
// dispersion families Seznec describes.
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"

namespace canu {

class SkewedAssocCache final : public CacheModel {
 public:
  /// `geometry.ways` is the number of banks (2 or 4 are the classic
  /// configurations).
  explicit SkewedAssocCache(CacheGeometry geometry);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  /// Per-set statistics are kept per bank-set; there are lines() of them
  /// (ways banks x sets_per_bank sets).
  std::uint64_t num_sets() const noexcept override { return lines_.size(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  std::uint64_t sets_per_bank() const noexcept { return sets_per_bank_; }

  /// The bank-w skew index for an address (exposed for tests).
  std::uint64_t skew_index(unsigned bank, std::uint64_t addr) const noexcept;

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheGeometry geometry_;
  std::uint64_t sets_per_bank_ = 0;
  unsigned index_bits_ = 0;
  std::vector<Line> lines_;  ///< bank-major: bank * sets_per_bank + set
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;

  static constexpr std::uint64_t kBankMultipliers[8] = {9,  21, 31, 61,
                                                        77, 39, 53, 11};
};

}  // namespace canu
