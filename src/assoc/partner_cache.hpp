// Partner-index cache — the paper's own proposal (§1.2, Figure 3).
//
// Each line of a direct-mapped cache is extended with two fields: L (the
// line is linked to a partner) and Partner Index (the set holding the
// partner line). Cold cache lines are dynamically matched as partners to
// hot lines: when a block would be evicted from a frequently missed set, it
// is preserved in its partner's slot instead, and a lookup that misses the
// primary slot follows the partner link (one extra cycle) before declaring
// a miss. This selectively doubles the associativity of hot sets without
// touching cold ones.
//
// The paper sketches the mechanism but does not evaluate it; CANU
// implements the simplest dynamic-matching variant so it can be compared
// against column-associative/adaptive/B-cache (bench/abl_partner_cache):
//
//   * per-set miss counters identify "hot" sets: a set becomes hot when its
//     miss count since the last decay epoch exceeds `hot_threshold`;
//   * when a hot set needs a partner, the coldest set (fewest accesses in
//     the epoch) without a partner is chosen; partnering is symmetric and
//     sticky until the periodic epoch decay unlinks idle pairs;
//   * a displaced block from a hot set moves into the partner slot,
//     evicting the partner's occupant (cold by construction);
//   * lookups probe primary, then (if linked) the partner slot: a partner
//     hit costs 2 cycles and promotes the block back to its primary slot.
//
// In effect this is the "linked list of cache lines" idea restricted to
// chains of length 2, which the paper suggests as the practical point.
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "indexing/index_function.hpp"

namespace canu {

/// Tuning knobs for partner matching.
struct PartnerConfig {
  /// Misses within an epoch after which a set is considered hot.
  std::uint32_t hot_threshold = 8;
  /// Accesses between decay epochs (counters halve, idle links dissolve).
  std::uint64_t epoch_length = 4096;
};

class PartnerCache final : public CacheModel {
 public:
  explicit PartnerCache(CacheGeometry geometry,
                        PartnerConfig config = PartnerConfig(),
                        IndexFunctionPtr index_fn = nullptr);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  // Partner hits behave like column-associative rehash hits (2 cycles);
  // misses that followed a link pay the extra probe cycle.
  AmatTerms amat_terms() const noexcept override {
    AmatTerms t;
    t.formula = AmatTerms::Formula::kColumn;
    t.slow_hit_fraction = fraction_partner_hits();
    t.probed_miss_fraction = fraction_partner_misses();
    return t;
  }

  /// Hits found through a partner link (== stats().secondary_hits).
  std::uint64_t partner_hits() const noexcept { return stats_.secondary_hits; }
  /// Currently linked set pairs.
  std::size_t active_links() const noexcept { return active_links_; }
  /// Links created since construction/flush.
  std::uint64_t links_formed() const noexcept { return links_formed_; }

  /// Fraction of misses that probed a partner slot (pay MissPenalty + 1 in
  /// the column-associative-style AMAT model).
  double fraction_partner_misses() const noexcept {
    return stats_.misses == 0
               ? 0.0
               : static_cast<double>(partner_probed_misses_) /
                     static_cast<double>(stats_.misses);
  }
  /// Fraction of hits satisfied through a partner link.
  double fraction_partner_hits() const noexcept {
    return stats_.hits == 0
               ? 0.0
               : static_cast<double>(stats_.secondary_hits) /
                     static_cast<double>(stats_.hits);
  }

  /// Partner of `set`, or kNoPartner.
  static constexpr std::uint32_t kNoPartner = 0xffffffffu;
  std::uint32_t partner_of(std::uint64_t set) const noexcept {
    return partner_[set];
  }

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    bool valid = false;
    bool dirty = false;
  };

  void decay_epoch();
  /// Find the coldest unlinked set (!= origin); kNoPartner if none.
  std::uint32_t find_cold_partner(std::uint64_t origin) const noexcept;
  void link(std::uint64_t a, std::uint64_t b);
  void unlink(std::uint64_t set);

  CacheGeometry geometry_;
  PartnerConfig config_;
  IndexFunctionPtr index_fn_;
  std::vector<Line> lines_;
  std::vector<std::uint32_t> partner_;       ///< set -> partner set
  std::vector<std::uint32_t> epoch_misses_;  ///< per-set misses this epoch
  std::vector<std::uint32_t> epoch_accesses_;
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::size_t active_links_ = 0;
  std::uint64_t links_formed_ = 0;
  std::uint64_t partner_probed_misses_ = 0;
  std::uint64_t accesses_in_epoch_ = 0;
};

}  // namespace canu
