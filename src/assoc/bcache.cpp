#include "assoc/bcache.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

BCache::BCache(CacheGeometry geometry, BCacheConfig config)
    : geometry_(geometry), config_(config) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways == 1,
                 "B-cache re-organizes a direct-mapped cache");
  CANU_CHECK_MSG(is_pow2(config.mapping_factor) && config.mapping_factor >= 1,
                 "mapping factor must be a power of two >= 1");
  CANU_CHECK_MSG(is_pow2(config.associativity) && config.associativity >= 2,
                 "BAS must be a power of two >= 2");
  oi_bits_ = geometry_.index_bits();
  const unsigned bas_bits = log2_exact(config.associativity);
  CANU_CHECK_MSG(bas_bits <= oi_bits_,
                 "BAS " << config.associativity << " exceeds line count");
  npi_bits_ = oi_bits_ - bas_bits;                      // eq. (7)
  pi_bits_ = log2_exact(config.mapping_factor) + bas_bits;  // eq. (6)
  clusters_ = std::uint64_t{1} << npi_bits_;
  lines_.resize(geometry_.lines());
  set_stats_.resize(clusters_);
}

AccessOutcome BCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  const std::uint64_t cluster = line_addr & (clusters_ - 1);
  const unsigned ways = config_.associativity;
  Line* base = lines_.data() + cluster * ways;
  ++clock_;
  ++stats_.accesses;
  ++set_stats_[cluster].accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  for (unsigned w = 0; w < ways; ++w) {
    if (base[w].valid && base[w].line_addr == line_addr) {
      base[w].stamp = clock_;
      if (is_write) base[w].dirty = true;
      ++stats_.hits;
      ++stats_.primary_hits;  // decoder match: single-probe, 1-cycle hit
      ++set_stats_[cluster].hits;
      stats_.lookup_cycles += 1;
      return {true, 1, 1};
    }
  }

  ++stats_.misses;
  ++set_stats_[cluster].misses;
  unsigned slot = ways;
  for (unsigned w = 0; w < ways; ++w) {
    if (!base[w].valid) {
      slot = w;
      break;
    }
  }
  if (slot == ways) {
    slot = 0;
    for (unsigned w = 1; w < ways; ++w) {
      if (base[w].stamp < base[slot].stamp) slot = w;
    }
    ++stats_.evictions;
    if (base[slot].dirty) ++stats_.writebacks;
  }
  // Install and program the line's PI register (implicit in line_addr: the
  // PI field is line_addr >> npi_bits masked to pi_bits).
  base[slot] = Line{line_addr, clock_, true, is_write};
  stats_.lookup_cycles += 1;
  return {false, 1, 1};
}

std::string BCache::name() const {
  return "b_cache(MF=" + std::to_string(config_.mapping_factor) +
         ",BAS=" + std::to_string(config_.associativity) + ")";
}

void BCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
}

void BCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  clock_ = 0;
}

}  // namespace canu
