// B-Cache — the balanced cache (paper §III.C; Zhang, ISCA 2006).
//
// The index of a direct-mapped cache (OI bits) is replaced by a longer
// decoder index of PI + NPI bits:
//   * NPI (non-programmable index) bits select one of 2^NPI clusters,
//     exactly like a traditional index;
//   * PI (programmable index) bits are matched associatively against a
//     per-line programmable register inside the cluster.
// The geometry is controlled by two parameters (paper eqs. (6)/(7)):
//   mapping factor   MF  = 2^(PI+NPI) / 2^OI
//   associativity    BAS = 2^OI / 2^NPI
// The paper's configuration is MF = 2, BAS = 8 over a 1024-line cache
// (OI = 10), giving NPI = 7 and PI = 4. Because allocation within a cluster
// replaces the LRU line and programs its PI register, the organization
// reaches the miss rate of a BAS-way set-associative cache while keeping a
// direct-mapped access time (the decoder does the PI match).
//
// Per-set statistics are reported at cluster granularity (2^NPI entries):
// a cluster is the physical group of lines an access can touch, which is
// the meaningful unit for the uniformity analysis (DESIGN.md §3).
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"

namespace canu {

/// Geometry knobs for the B-cache (paper eqs. (6)/(7) defaults: MF=2, BAS=8).
struct BCacheConfig {
  unsigned mapping_factor = 2;  ///< MF, a power of two >= 1
  unsigned associativity = 8;   ///< BAS, a power of two >= 2
};

class BCache final : public CacheModel {
 public:
  /// `geometry.ways` must be 1 (the B-cache re-organizes a direct-mapped
  /// cache of geometry.lines() lines).
  explicit BCache(CacheGeometry geometry, BCacheConfig config = BCacheConfig());

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  /// Number of clusters (per-set stats granularity).
  std::uint64_t num_sets() const noexcept override { return clusters_; }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  unsigned pi_bits() const noexcept { return pi_bits_; }
  unsigned npi_bits() const noexcept { return npi_bits_; }
  unsigned original_index_bits() const noexcept { return oi_bits_; }
  std::uint64_t clusters() const noexcept { return clusters_; }

 private:
  struct Line {
    std::uint64_t line_addr = 0;  ///< full line address (tag + PI recovery)
    std::uint64_t stamp = 0;      ///< LRU stamp within the cluster
    bool valid = false;
    bool dirty = false;
  };

  CacheGeometry geometry_;
  BCacheConfig config_;
  unsigned oi_bits_ = 0;
  unsigned npi_bits_ = 0;
  unsigned pi_bits_ = 0;
  std::uint64_t clusters_ = 0;
  std::vector<Line> lines_;
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace canu
