#include "assoc/column_associative.hpp"

#include <algorithm>

#include "indexing/modulo.hpp"
#include "util/error.hpp"

namespace canu {

ColumnAssociativeCache::ColumnAssociativeCache(CacheGeometry geometry,
                                               IndexFunctionPtr primary_index)
    : geometry_(geometry),
      index_fn_(std::move(primary_index)),
      lines_(geometry.sets()),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways == 1,
                 "column-associative cache is built on a direct-mapped array");
  CANU_CHECK_MSG(geometry_.sets() >= 2, "need at least 2 sets to rehash");
  if (!index_fn_) {
    index_fn_ = std::make_shared<ModuloIndex>(geometry_.sets(),
                                              geometry_.offset_bits());
  }
}

AccessOutcome ColumnAssociativeCache::access(std::uint64_t addr,
                                             AccessType type) {
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  const std::uint64_t i = index_fn_->index(addr);
  const std::uint64_t j = alternate_of(i);
  ++stats_.accesses;
  ++set_stats_[i].accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  Line& primary = lines_[i];
  if (primary.valid && primary.line_addr == line_addr) {
    if (is_write) primary.dirty = true;
    ++stats_.hits;
    ++stats_.primary_hits;
    ++set_stats_[i].hits;
    stats_.lookup_cycles += 1;
    return {true, 1, 1};
  }

  // If the primary slot holds a rehashed block, the sought block cannot be
  // in the alternate slot either (that block's own primary slot is here):
  // replace directly without a second probe (paper §III.A).
  if (primary.valid && primary.rehash) {
    ++stats_.misses;
    ++stats_.evictions;
    if (primary.dirty) ++stats_.writebacks;
    ++set_stats_[i].misses;
    primary = Line{line_addr, true, false, is_write};
    stats_.lookup_cycles += 1;
    return {false, 1, 1};
  }

  // Second probe at the alternate location.
  ++rehash_probes_;
  ++set_stats_[j].accesses;
  Line& alternate = lines_[j];
  if (alternate.valid && alternate.line_addr == line_addr) {
    ++stats_.hits;
    ++stats_.secondary_hits;
    ++stats_.swaps;
    ++set_stats_[j].hits;
    // Swap so the block is found first-time next access; the demoted block
    // becomes a rehashed resident of the alternate slot.
    std::swap(primary, alternate);
    primary.rehash = false;
    alternate.rehash = true;
    if (is_write) primary.dirty = true;
    stats_.lookup_cycles += 2;
    return {true, 2, 2};
  }

  // Miss in both locations: install at the primary slot; the displaced
  // block moves to the alternate slot instead of being evicted.
  ++stats_.misses;
  ++rehash_misses_;
  ++set_stats_[i].misses;
  if (primary.valid) {
    if (alternate.valid) {
      ++stats_.evictions;
      if (alternate.dirty) ++stats_.writebacks;
    }
    alternate = primary;
    alternate.rehash = true;
    ++stats_.swaps;
  }
  primary = Line{line_addr, true, false, is_write};
  stats_.lookup_cycles += 2;
  return {false, 2, 2};
}

std::string ColumnAssociativeCache::name() const {
  return "column_assoc[" + index_fn_->name() + "]";
}

void ColumnAssociativeCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
  rehash_probes_ = 0;
  rehash_misses_ = 0;
}

void ColumnAssociativeCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
}

}  // namespace canu
