#include "assoc/adaptive_cache.hpp"

#include <algorithm>

#include "indexing/modulo.hpp"
#include "util/error.hpp"

namespace canu {

// ---------------------------------------------------------------- SHT ----

SetHistoryTable::SetHistoryTable(std::size_t capacity) : capacity_(capacity) {
  CANU_CHECK_MSG(capacity >= 1, "SHT capacity must be >= 1");
  nodes_.resize(capacity);
  free_.reserve(capacity);
  for (std::size_t i = capacity; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
  map_.reserve(capacity * 2);
}

void SetHistoryTable::unlink(std::uint32_t n) noexcept {
  Node& node = nodes_[n];
  if (node.prev != kNull) nodes_[node.prev].next = node.next;
  else head_ = node.next;
  if (node.next != kNull) nodes_[node.next].prev = node.prev;
  else tail_ = node.prev;
  node.prev = node.next = kNull;
}

void SetHistoryTable::push_front(std::uint32_t n) noexcept {
  Node& node = nodes_[n];
  node.prev = kNull;
  node.next = head_;
  if (head_ != kNull) nodes_[head_].prev = n;
  head_ = n;
  if (tail_ == kNull) tail_ = n;
}

void SetHistoryTable::touch(std::uint64_t set) {
  auto it = map_.find(set);
  if (it != map_.end()) {
    unlink(it->second);
    push_front(it->second);
    return;
  }
  std::uint32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    n = tail_;  // evict the LRU set from the history
    map_.erase(nodes_[n].set);
    unlink(n);
  }
  nodes_[n].set = set;
  map_.emplace(set, n);
  push_front(n);
}

bool SetHistoryTable::contains(std::uint64_t set) const noexcept {
  return map_.find(set) != map_.end();
}

void SetHistoryTable::clear() {
  map_.clear();
  head_ = tail_ = kNull;
  free_.clear();
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
}

// ------------------------------------------------------- AdaptiveCache ----

AdaptiveCache::AdaptiveCache(CacheGeometry geometry, AdaptiveConfig config,
                             IndexFunctionPtr index_fn)
    : geometry_(geometry),
      config_(config),
      index_fn_(std::move(index_fn)),
      lines_(geometry.sets()),
      sht_(std::max<std::size_t>(
          1, static_cast<std::size_t>(config.sht_fraction *
                                      static_cast<double>(geometry.sets())))),
      out_by_target_(geometry.sets(), ~std::uint64_t{0}),
      out_capacity_(std::max<std::size_t>(
          1, static_cast<std::size_t>(config.out_fraction *
                                      static_cast<double>(geometry.sets())))),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways == 1,
                 "adaptive cache is built on a direct-mapped array");
  CANU_CHECK_MSG(config.sht_fraction > 0.0 && config.sht_fraction < 1.0,
                 "sht_fraction must be in (0,1)");
  CANU_CHECK_MSG(config.out_fraction > 0.0 && config.out_fraction <= 1.0,
                 "out_fraction must be in (0,1]");
  if (!index_fn_) {
    index_fn_ = std::make_shared<ModuloIndex>(geometry_.sets(),
                                              geometry_.offset_bits());
  }
  out_.reserve(out_capacity_ * 2);
}

void AdaptiveCache::out_erase(std::uint64_t line_addr) {
  auto it = out_.find(line_addr);
  if (it == out_.end()) return;
  out_by_target_[it->second.location] = ~std::uint64_t{0};
  out_.erase(it);
}

void AdaptiveCache::out_drop_target(std::uint64_t location) {
  const std::uint64_t line_addr = out_by_target_[location];
  if (line_addr != ~std::uint64_t{0}) {
    out_.erase(line_addr);
    out_by_target_[location] = ~std::uint64_t{0};
  }
}

void AdaptiveCache::out_insert(std::uint64_t line_addr,
                               std::uint64_t location) {
  if (out_.size() >= out_capacity_) {
    // Evict the least-recently-used OUT entry; its block stays in the cache
    // but is no longer reachable through the directory and will age out.
    auto lru = out_.begin();
    for (auto it = out_.begin(); it != out_.end(); ++it) {
      if (it->second.stamp < lru->second.stamp) lru = it;
    }
    out_by_target_[lru->second.location] = ~std::uint64_t{0};
    out_.erase(lru);
  }
  out_.emplace(line_addr, OutEntry{location, clock_});
  out_by_target_[location] = line_addr;
}

std::uint64_t AdaptiveCache::find_disposable_set(
    std::uint64_t origin) const noexcept {
  const std::uint64_t sets = geometry_.sets();
  for (std::uint64_t d = 1; d < sets; ++d) {
    const std::uint64_t candidate = (origin + d) & (sets - 1);
    if (!sht_.contains(candidate)) return candidate;
  }
  // Every set is MRU (only possible for tiny caches): fall back to the
  // neighbouring set.
  return (origin + 1) & (sets - 1);
}

AccessOutcome AdaptiveCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  const std::uint64_t i = index_fn_->index(addr);
  ++clock_;
  ++stats_.accesses;
  ++set_stats_[i].accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;
  // The disposable status of set i's occupant is decided by the SHT state
  // *before* this access registers set i as MRU.
  const bool was_mru = sht_.contains(i);
  sht_.touch(i);

  Line& primary = lines_[i];
  if (primary.valid && primary.line_addr == line_addr) {
    if (is_write) primary.dirty = true;
    ++stats_.hits;
    ++stats_.primary_hits;
    ++set_stats_[i].hits;
    stats_.lookup_cycles += 1;
    return {true, 1, 1};
  }

  // Primary miss: the OUT directory (searched in parallel with the cache)
  // may know an alternate location for this block.
  auto out_it = out_.find(line_addr);
  if (out_it != out_.end()) {
    const std::uint64_t j = out_it->second.location;
    Line& alternate = lines_[j];
    CANU_CHECK_MSG(alternate.valid && alternate.line_addr == line_addr,
                   "OUT directory points at a stale line");
    ++stats_.hits;
    ++stats_.secondary_hits;
    ++stats_.swaps;
    ++set_stats_[j].hits;
    ++set_stats_[j].accesses;
    // Swap the block back into its primary location; the displaced primary
    // occupant takes over the alternate slot and the OUT directory tracks
    // it there. Any directory entry pointing at slot i is now stale (its
    // subject moves to j).
    out_erase(line_addr);
    out_drop_target(i);
    std::swap(primary, alternate);
    if (is_write) primary.dirty = true;
    if (alternate.valid) {
      out_insert(alternate.line_addr, j);
    }
    stats_.lookup_cycles += 3;
    return {true, 2, 3};
  }

  // True miss: fetch into the primary location.
  ++stats_.misses;
  ++set_stats_[i].misses;
  if (primary.valid) {
    // The displaced occupant is preserved only if its set was an MRU set
    // before this access (disposable bit clear).
    if (was_mru) {
      const std::uint64_t j = find_disposable_set(i);
      Line displaced = primary;
      out_drop_target(i);  // the occupant's old entry (if any) is now stale
      Line& target = lines_[j];
      if (target.valid) {
        ++stats_.evictions;
        if (target.dirty) ++stats_.writebacks;
        out_drop_target(j);
      }
      target = displaced;
      out_insert(displaced.line_addr, j);
      ++relocations_;
      ++stats_.swaps;
    } else {
      ++stats_.evictions;
      if (primary.dirty) ++stats_.writebacks;
      out_drop_target(i);
    }
  }
  primary = Line{line_addr, true, is_write};
  stats_.lookup_cycles += 3;  // OUT search + refill initiation (formula (8))
  return {false, 2, 3};
}

std::string AdaptiveCache::name() const {
  return "adaptive[" + index_fn_->name() + "]";
}

void AdaptiveCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
  relocations_ = 0;
}

void AdaptiveCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  sht_.clear();
  out_.clear();
  std::fill(out_by_target_.begin(), out_by_target_.end(), ~std::uint64_t{0});
  clock_ = 0;
}

}  // namespace canu
