// Column-associative cache (paper §III.A; Agarwal & Pudar, ISCA 1993).
//
// A direct-mapped cache that, on a primary miss, probes one alternate
// location obtained by complementing the most significant index bit. Each
// line carries a rehash bit marking it as living in its alternate location:
//
//   * primary hit              -> 1 cycle
//   * primary miss, rehash bit set at the primary slot
//                              -> the slot holds somebody else's rehashed
//                                 block; replace it directly (no 2nd probe),
//                                 clear the rehash bit
//   * alternate hit            -> 2 cycles; swap the blocks so the next
//                                 access hits first time; the demoted block's
//                                 rehash bit is set
//   * miss in both             -> new block installed at the primary slot;
//                                 the displaced block moves to the alternate
//                                 slot (rehash bit set) instead of being
//                                 evicted; the alternate slot's occupant is
//                                 evicted
//
// The primary index defaults to traditional modulo indexing but accepts any
// IndexFunction — the hybrid configuration of the paper's Figure 8.
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "indexing/index_function.hpp"

namespace canu {

class ColumnAssociativeCache final : public CacheModel {
 public:
  /// `geometry.ways` must be 1 (the scheme is defined over a direct-mapped
  /// array). `primary_index` defaults to modulo indexing.
  explicit ColumnAssociativeCache(CacheGeometry geometry,
                                  IndexFunctionPtr primary_index = nullptr);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  AmatTerms amat_terms() const noexcept override {
    AmatTerms t;
    t.formula = AmatTerms::Formula::kColumn;
    t.slow_hit_fraction = fraction_rehash_hits();
    t.probed_miss_fraction = fraction_rehash_misses();
    return t;
  }

  /// Counters feeding the paper's AMAT formula (9).
  std::uint64_t rehash_probes() const noexcept { return rehash_probes_; }
  std::uint64_t rehash_hits() const noexcept { return stats_.secondary_hits; }
  /// Misses that performed the second probe (charged MissPenalty + 1).
  std::uint64_t rehash_misses() const noexcept { return rehash_misses_; }

  /// Fraction of hits satisfied by the alternate location.
  double fraction_rehash_hits() const noexcept {
    return stats_.hits == 0 ? 0.0
                            : static_cast<double>(stats_.secondary_hits) /
                                  static_cast<double>(stats_.hits);
  }
  /// Fraction of misses that probed the alternate location first.
  double fraction_rehash_misses() const noexcept {
    return stats_.misses == 0 ? 0.0
                              : static_cast<double>(rehash_misses_) /
                                    static_cast<double>(stats_.misses);
  }

  /// The alternate location for a primary index (MSB complemented).
  std::uint64_t alternate_of(std::uint64_t set) const noexcept {
    return set ^ (geometry_.sets() >> 1);
  }

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    bool valid = false;
    bool rehash = false;
    bool dirty = false;
  };

  CacheGeometry geometry_;
  IndexFunctionPtr index_fn_;
  std::vector<Line> lines_;
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t rehash_probes_ = 0;
  std::uint64_t rehash_misses_ = 0;
};

}  // namespace canu
