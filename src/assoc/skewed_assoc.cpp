#include "assoc/skewed_assoc.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

SkewedAssocCache::SkewedAssocCache(CacheGeometry geometry)
    : geometry_(geometry) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways >= 2 && geometry_.ways <= 8,
                 "skewed cache supports 2..8 banks, got " << geometry_.ways);
  sets_per_bank_ = geometry_.sets();  // lines / ways
  index_bits_ = log2_exact(sets_per_bank_);
  lines_.resize(geometry_.lines());
  set_stats_.resize(geometry_.lines());
}

std::uint64_t SkewedAssocCache::skew_index(unsigned bank,
                                           std::uint64_t addr) const noexcept {
  const std::uint64_t idx = bit_field(addr, geometry_.offset_bits(),
                                      index_bits_);
  const std::uint64_t tag = addr >> (geometry_.offset_bits() + index_bits_);
  const std::uint64_t hashed = (tag * kBankMultipliers[bank]) ^
                               (tag >> index_bits_);
  return (idx ^ hashed) & (sets_per_bank_ - 1);
}

AccessOutcome SkewedAssocCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  ++clock_;
  ++stats_.accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  // All banks are probed in parallel.
  std::uint64_t slots[8] = {};
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    slots[w] = static_cast<std::uint64_t>(w) * sets_per_bank_ +
               skew_index(w, addr);
  }
  // Accesses are attributed to the bank-0 slot (the canonical "set" of the
  // address) so the uniformity analysis sees one increment per access.
  ++set_stats_[slots[0]].accesses;

  for (unsigned w = 0; w < geometry_.ways; ++w) {
    Line& line = lines_[slots[w]];
    if (line.valid && line.line_addr == line_addr) {
      line.stamp = clock_;
      if (is_write) line.dirty = true;
      ++stats_.hits;
      ++stats_.primary_hits;  // parallel probe: single-cycle hit
      ++set_stats_[slots[w]].hits;
      stats_.lookup_cycles += 1;
      return {true, 1, 1};
    }
  }

  ++stats_.misses;
  ++set_stats_[slots[0]].misses;
  // Victim: an invalid candidate slot if any, else the LRU among them.
  std::uint64_t victim = slots[0];
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (!lines_[slots[w]].valid) {
      victim = slots[w];
      break;
    }
    if (lines_[slots[w]].stamp < lines_[victim].stamp) victim = slots[w];
  }
  if (lines_[victim].valid) {
    ++stats_.evictions;
    if (lines_[victim].dirty) ++stats_.writebacks;
  }
  lines_[victim] = Line{line_addr, clock_, true, is_write};
  stats_.lookup_cycles += 1;
  return {false, 1, 1};
}

std::string SkewedAssocCache::name() const {
  return "skewed" + std::to_string(geometry_.ways) + "way";
}

void SkewedAssocCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
}

void SkewedAssocCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  clock_ = 0;
}

}  // namespace canu
