#include "assoc/dynamic_index.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

DynamicIndexCache::DynamicIndexCache(CacheGeometry geometry,
                                     std::vector<IndexFunctionPtr> candidates,
                                     DynamicIndexConfig config)
    : geometry_(geometry),
      config_(config),
      candidates_(std::move(candidates)),
      lines_(geometry.sets()),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways == 1,
                 "dynamic-index cache re-maps a direct-mapped array");
  CANU_CHECK_MSG(!candidates_.empty(), "need at least one candidate");
  CANU_CHECK_MSG(config_.epoch_length >= 1024, "epoch too short to sample");
  CANU_CHECK_MSG(config_.sample_shift <= 8, "sampling too sparse");
  for (const auto& fn : candidates_) {
    CANU_CHECK(fn != nullptr);
    CANU_CHECK_MSG(fn->sets() <= geometry_.sets(),
                   "candidate addresses more sets than the cache has");
  }
  sample_mask_ = (std::uint64_t{1} << config_.sample_shift) - 1;
  shadows_.reserve(candidates_.size());
  for (const auto& fn : candidates_) {
    Shadow sh;
    sh.fn = fn;
    // One tag per sampled set; the shadow shares the cache's geometry, so
    // index >> sample_shift addresses its (smaller) tag array.
    sh.tags.assign(geometry_.sets() >> config_.sample_shift,
                   ~std::uint64_t{0});
    shadows_.push_back(std::move(sh));
  }
}

void DynamicIndexCache::flush_array() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++stats_.writebacks;
    line = Line{};
  }
}

void DynamicIndexCache::decide_epoch() {
  accesses_in_epoch_ = 0;
  // Pick the candidate with the fewest sampled misses this epoch.
  std::size_t best = current_;
  for (std::size_t c = 0; c < shadows_.size(); ++c) {
    if (shadows_[c].epoch_misses < shadows_[best].epoch_misses) best = c;
  }
  const double incumbent =
      static_cast<double>(shadows_[current_].epoch_misses);
  const double challenger = static_cast<double>(shadows_[best].epoch_misses);
  if (best != current_ &&
      challenger < incumbent * (1.0 - config_.hysteresis_pct / 100.0)) {
    current_ = best;
    ++switches_;
    flush_array();  // remapping invalidates every resident placement
  }
  for (Shadow& sh : shadows_) {
    sh.epoch_misses = 0;
    sh.epoch_samples = 0;
  }
}

AccessOutcome DynamicIndexCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  ++stats_.accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  // Shadow directories observe every reference that falls in their sampled
  // sets (the sample is taken on the candidate's own index).
  for (Shadow& sh : shadows_) {
    const std::uint64_t idx = sh.fn->index(addr);
    if ((idx & sample_mask_) != 0) continue;
    std::uint64_t& tag = sh.tags[idx >> config_.sample_shift];
    ++sh.epoch_samples;
    if (tag != line_addr) {
      ++sh.epoch_misses;
      tag = line_addr;
    }
  }
  if (++accesses_in_epoch_ >= config_.epoch_length) decide_epoch();

  const std::uint64_t i = candidates_[current_]->index(addr);
  ++set_stats_[i].accesses;
  Line& line = lines_[i];
  if (line.valid && line.line_addr == line_addr) {
    if (is_write) line.dirty = true;
    ++stats_.hits;
    ++stats_.primary_hits;
    ++set_stats_[i].hits;
    stats_.lookup_cycles += 1;
    return {true, 1, 1};
  }
  ++stats_.misses;
  ++set_stats_[i].misses;
  if (line.valid) {
    ++stats_.evictions;
    if (line.dirty) ++stats_.writebacks;
  }
  line = Line{line_addr, true, is_write};
  stats_.lookup_cycles += 1;
  return {false, 1, 1};
}

std::string DynamicIndexCache::name() const {
  std::string n = "dynamic{";
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    if (c) n += ",";
    n += candidates_[c]->name();
  }
  return n + "}";
}

void DynamicIndexCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
  switches_ = 0;
}

void DynamicIndexCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  for (Shadow& sh : shadows_) {
    std::fill(sh.tags.begin(), sh.tags.end(), ~std::uint64_t{0});
    sh.epoch_misses = 0;
    sh.epoch_samples = 0;
  }
  current_ = 0;
  accesses_in_epoch_ = 0;
}

}  // namespace canu
