// DynamicIndexCache — runtime selection between candidate index functions.
//
// The paper proposes selecting an indexing scheme per application from an
// offline profile (Figure 5) and leaves "adjusting dynamically to a given
// application's memory access pattern" as the shortcoming of all static
// indexing schemes (§V). This model closes that gap with a hardware-
// plausible mechanism:
//
//   * the main array is a direct-mapped cache using the currently selected
//     index function;
//   * one *shadow tag directory* per candidate function runs in parallel —
//     a tag-only copy of the cache indexed by that candidate, counting the
//     misses the candidate would have taken (sampled 1-in-`sample_shift`
//     sets to keep the hardware honest);
//   * every `epoch_length` accesses the controller compares shadow miss
//     counts; if the best candidate undercuts the incumbent by more than
//     `hysteresis_pct`, the cache switches: the array is flushed (the
//     realistic cost — remapping invalidates every resident placement) and
//     subsequent compulsory refills are paid by the normal miss path.
//
// Because the decision input is the *same stream* the cache serves, the
// model adapts to program phases — something none of the paper's static
// schemes can do. bench/abl_dynamic_index measures both the steady-state
// overhead (vs the best static choice) and the phase-change win.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "indexing/index_function.hpp"

namespace canu {

struct DynamicIndexConfig {
  std::uint64_t epoch_length = 50'000;  ///< accesses between decisions
  double hysteresis_pct = 10.0;  ///< required shadow-miss advantage (%)
  unsigned sample_shift = 3;     ///< shadows sample 1 in 2^shift sets
};

class DynamicIndexCache final : public CacheModel {
 public:
  /// `candidates` must be non-empty; candidate 0 is the initial selection.
  DynamicIndexCache(CacheGeometry geometry,
                    std::vector<IndexFunctionPtr> candidates,
                    DynamicIndexConfig config = DynamicIndexConfig());

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  std::size_t current_candidate() const noexcept { return current_; }
  std::uint64_t switches() const noexcept { return switches_; }
  const IndexFunction& current_function() const noexcept {
    return *candidates_[current_];
  }

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    bool valid = false;
    bool dirty = false;
  };

  /// Tag-only shadow directory for one candidate (sampled sets).
  struct Shadow {
    IndexFunctionPtr fn;
    std::vector<std::uint64_t> tags;  ///< line addr per sampled set; ~0 empty
    std::uint64_t epoch_misses = 0;
    std::uint64_t epoch_samples = 0;
  };

  void decide_epoch();
  void flush_array();

  CacheGeometry geometry_;
  DynamicIndexConfig config_;
  std::vector<IndexFunctionPtr> candidates_;
  std::vector<Shadow> shadows_;
  std::vector<Line> lines_;
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::size_t current_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t accesses_in_epoch_ = 0;
  std::uint64_t sample_mask_ = 0;
};

}  // namespace canu
