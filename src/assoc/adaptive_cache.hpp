// Adaptive group-associative cache (paper §III.B; Peir, Lee & Hsu,
// ASPLOS 1998).
//
// A direct-mapped cache augmented with two tables:
//   SHT (set-reference history table) — the set indexes most recently used,
//       capacity 3/8 of the set count (paper §IV). A set present in the SHT
//       is an MRU set; blocks living in MRU sets are considered valuable
//       (disposable bit d = 0), blocks in non-MRU sets are disposable.
//   OUT (out-of-position directory) — maps the line address of a block that
//       was displaced out of an MRU set to the alternate set now holding it,
//       capacity 4/16 = 1/4 of the set count (paper §IV), LRU replacement.
//
// Access protocol (paper §III.B):
//   * hit at the direct-mapped location    -> 1 cycle, SHT updated
//   * primary miss, OUT entry matches and the alternate location still holds
//     the block                            -> 3 cycles (OUT search + second
//       lookup); the block is swapped back into its primary location to
//       improve future latency, the displaced occupant is re-registered in
//       the OUT directory
//   * true miss                            -> the new block is fetched into
//       the primary location. If the displaced occupant's set is an MRU set
//       (d = 0), the occupant is relocated into a nearby disposable line
//       (first set at increasing distance that is not in the SHT) and the
//       OUT directory records its new home; otherwise it is simply evicted.
//
// This realizes the paper's "selective victim caching" view: only victims
// of MRU sets are preserved, and they are preserved inside the cache's own
// under-utilized sets rather than in a separate buffer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "indexing/index_function.hpp"

namespace canu {

/// LRU-ordered set of set-indexes with fixed capacity: the SHT.
class SetHistoryTable {
 public:
  explicit SetHistoryTable(std::size_t capacity);

  /// Mark `set` as most-recently-used (inserting or refreshing).
  void touch(std::uint64_t set);
  bool contains(std::uint64_t set) const noexcept;
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  // Intrusive doubly-linked LRU list over a node pool + index map.
  struct Node {
    std::uint64_t set = 0;
    std::uint32_t prev = kNull;
    std::uint32_t next = kNull;
  };
  static constexpr std::uint32_t kNull = 0xffffffff;

  void unlink(std::uint32_t n) noexcept;
  void push_front(std::uint32_t n) noexcept;

  std::size_t capacity_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
  std::uint32_t head_ = kNull;
  std::uint32_t tail_ = kNull;
  std::vector<std::uint32_t> free_;
};

/// Table sizing for the adaptive cache (paper §IV defaults).
struct AdaptiveConfig {
  /// SHT capacity as a fraction of the set count (paper: 3/8).
  double sht_fraction = 3.0 / 8.0;
  /// OUT capacity as a fraction of the set count (paper: 4/16).
  double out_fraction = 4.0 / 16.0;
};

class AdaptiveCache final : public CacheModel {
 public:
  explicit AdaptiveCache(CacheGeometry geometry,
                         AdaptiveConfig config = AdaptiveConfig(),
                         IndexFunctionPtr index_fn = nullptr);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  AmatTerms amat_terms() const noexcept override {
    AmatTerms t;
    t.formula = AmatTerms::Formula::kAdaptive;
    t.direct_hit_fraction = stats_.primary_hit_fraction();
    return t;
  }

  /// Hits satisfied through the OUT directory (== stats().secondary_hits).
  std::uint64_t out_hits() const noexcept { return stats_.secondary_hits; }
  /// Blocks preserved by relocation into a disposable line.
  std::uint64_t relocations() const noexcept { return relocations_; }

  std::size_t sht_capacity() const noexcept { return sht_.capacity(); }
  std::size_t out_capacity() const noexcept { return out_capacity_; }

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    bool valid = false;
    bool dirty = false;
  };
  struct OutEntry {
    std::uint64_t location = 0;  ///< set index holding the block
    std::uint64_t stamp = 0;     ///< LRU stamp
  };

  void out_erase(std::uint64_t line_addr);
  void out_insert(std::uint64_t line_addr, std::uint64_t location);
  /// Drop the OUT entry, if any, that points at `location`.
  void out_drop_target(std::uint64_t location);
  /// First set at increasing distance from `origin` that is not in the SHT.
  std::uint64_t find_disposable_set(std::uint64_t origin) const noexcept;

  CacheGeometry geometry_;
  AdaptiveConfig config_;
  IndexFunctionPtr index_fn_;
  std::vector<Line> lines_;
  SetHistoryTable sht_;
  std::unordered_map<std::uint64_t, OutEntry> out_;  ///< line_addr -> entry
  std::vector<std::uint64_t> out_by_target_;  ///< set -> line_addr or ~0
  std::size_t out_capacity_;
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t relocations_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace canu
