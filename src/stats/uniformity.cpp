#include "stats/uniformity.hpp"

namespace canu {

std::vector<std::uint64_t> extract_counts(std::span<const SetStats> set_stats,
                                          SetCounter counter) {
  std::vector<std::uint64_t> counts;
  counts.reserve(set_stats.size());
  for (const SetStats& s : set_stats) {
    switch (counter) {
      case SetCounter::kAccesses: counts.push_back(s.accesses); break;
      case SetCounter::kHits: counts.push_back(s.hits); break;
      case SetCounter::kMisses: counts.push_back(s.misses); break;
    }
  }
  return counts;
}

UniformityReport analyse_uniformity(std::span<const SetStats> set_stats) {
  UniformityReport r;
  r.sets = set_stats.size();
  if (r.sets == 0) return r;

  const auto accesses = extract_counts(set_stats, SetCounter::kAccesses);
  const auto hits = extract_counts(set_stats, SetCounter::kHits);
  const auto misses = extract_counts(set_stats, SetCounter::kMisses);

  r.access_moments = compute_moments(accesses);
  r.hit_moments = compute_moments(hits);
  r.miss_moments = compute_moments(misses);
  r.avg_accesses = r.access_moments.mean;
  r.avg_hits = r.hit_moments.mean;
  r.avg_misses = r.miss_moments.mean;

  std::size_t under_half = 0, over_twice = 0;
  for (std::size_t i = 0; i < r.sets; ++i) {
    const double a = static_cast<double>(accesses[i]);
    const double h = static_cast<double>(hits[i]);
    const double m = static_cast<double>(misses[i]);
    if (h >= 2.0 * r.avg_hits && r.avg_hits > 0.0) ++r.fhs;
    if (m >= 2.0 * r.avg_misses && r.avg_misses > 0.0) ++r.fms;
    if (a < 0.5 * r.avg_accesses) ++r.las;
    if (a < 0.5 * r.avg_accesses) ++under_half;
    if (a > 2.0 * r.avg_accesses) ++over_twice;
  }
  r.frac_under_half =
      static_cast<double>(under_half) / static_cast<double>(r.sets);
  r.frac_over_twice =
      static_cast<double>(over_twice) / static_cast<double>(r.sets);
  return r;
}

}  // namespace canu
