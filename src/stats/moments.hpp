// Central moments of per-set count distributions (paper §IV.D).
//
// The paper measures uniformity by treating the per-set miss counts as a
// distribution and computing its skewness (third standardized moment) and
// kurtosis (fourth standardized moment). A perfectly uniform cache has zero
// skew and minimal kurtosis; sharp peaks (a few heavily-missed sets) drive
// both up.
#pragma once

#include <cstdint>
#include <span>

namespace canu {

struct Moments {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance
  double stddev = 0.0;
  double skewness = 0.0;  ///< m3 / m2^(3/2); 0 for degenerate distributions
  double kurtosis = 0.0;  ///< m4 / m2^2 (Pearson; normal = 3)
  double excess_kurtosis = 0.0;  ///< kurtosis - 3
};

/// Population moments of `values`.
Moments compute_moments(std::span<const double> values);

/// Convenience overload for count data.
Moments compute_moments(std::span<const std::uint64_t> counts);

/// Percent change from `baseline` to `value`: 100*(value-baseline)/baseline.
/// Used for the paper's "% increase in kurtosis/skewness" figures. Returns
/// NaN if baseline is 0 (reported as "n/a" by the tables).
double percent_increase(double baseline, double value);

/// Percent reduction from `baseline` to `value`:
/// 100*(baseline-value)/baseline. Used for the "% reduction in miss-rate"
/// and "% reduction in AMAT" figures. Returns NaN if baseline is 0.
double percent_reduction(double baseline, double value);

}  // namespace canu
