#include "stats/three_c.hpp"

#include <unordered_set>

#include "cache/set_assoc_cache.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu {

ThreeCReport classify_misses(CacheModel& model, const Trace& trace,
                             const CacheGeometry& capacity_geometry,
                             ThreadPool* pool) {
  capacity_geometry.validate();
  CacheGeometry full = capacity_geometry;
  full.ways = static_cast<unsigned>(capacity_geometry.lines());
  full.validate();
  CANU_CHECK_MSG(full.sets() == 1,
                 "capacity reference must be fully associative");

  model.flush();
  const unsigned offset_bits = capacity_geometry.offset_bits();

  ThreeCReport report;
  report.accesses = trace.size();

  // The two legs are independent — the model's misses don't depend on the
  // reference structures and vice versa — so they can run as two tasks.
  // Each leg writes disjoint report fields; the TaskGroup wait publishes
  // them. Counts are identical to a single fused loop.
  const auto model_leg = [&] {
    obs::Span span("threec", "3C model misses");
    std::uint64_t misses = 0;
    for (const MemRef& r : trace) {
      if (!model.access(r.addr, r.type).hit) ++misses;
    }
    report.total_misses = misses;
  };
  const auto reference_leg = [&] {
    obs::Span span("threec", "3C compulsory+capacity");
    SetAssocCache reference(full);  // fully-associative LRU, same capacity
    std::unordered_set<std::uint64_t> seen_lines;
    seen_lines.reserve(trace.size() / 8 + 16);
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    for (const MemRef& r : trace) {
      const std::uint64_t line = r.addr >> offset_bits;
      const bool first_touch = seen_lines.insert(line).second;
      const bool full_miss = !reference.access(r.addr, r.type).hit;
      if (first_touch) {
        ++compulsory;
      } else if (full_miss) {
        ++capacity;
      }
    }
    report.compulsory = compulsory;
    report.capacity = capacity;
  };

  if (pool != nullptr) {
    TaskGroup group(pool);
    group.run(model_leg);
    group.run(reference_leg);
    group.wait();
  } else {
    model_leg();
    reference_leg();
  }

  report.conflict = static_cast<std::int64_t>(report.total_misses) -
                    static_cast<std::int64_t>(report.compulsory) -
                    static_cast<std::int64_t>(report.capacity);
  return report;
}

ThreeCReport classify_misses_paper_l1(CacheModel& model, const Trace& trace,
                                      ThreadPool* pool) {
  return classify_misses(model, trace, CacheGeometry::paper_l1(), pool);
}

}  // namespace canu
