#include "stats/three_c.hpp"

#include <unordered_set>

#include "cache/set_assoc_cache.hpp"
#include "util/error.hpp"

namespace canu {

ThreeCReport classify_misses(CacheModel& model, const Trace& trace,
                             const CacheGeometry& capacity_geometry) {
  capacity_geometry.validate();
  CacheGeometry full = capacity_geometry;
  full.ways = static_cast<unsigned>(capacity_geometry.lines());
  full.validate();
  CANU_CHECK_MSG(full.sets() == 1,
                 "capacity reference must be fully associative");

  model.flush();
  SetAssocCache reference(full);  // fully-associative LRU, same capacity
  std::unordered_set<std::uint64_t> seen_lines;
  seen_lines.reserve(trace.size() / 8 + 16);
  const unsigned offset_bits = capacity_geometry.offset_bits();

  ThreeCReport report;
  for (const MemRef& r : trace) {
    ++report.accesses;
    const std::uint64_t line = r.addr >> offset_bits;
    const bool first_touch = seen_lines.insert(line).second;
    const bool full_miss = !reference.access(r.addr, r.type).hit;
    const bool model_miss = !model.access(r.addr, r.type).hit;
    if (model_miss) ++report.total_misses;
    if (first_touch) {
      ++report.compulsory;
    } else if (full_miss) {
      ++report.capacity;
    }
  }
  report.conflict = static_cast<std::int64_t>(report.total_misses) -
                    static_cast<std::int64_t>(report.compulsory) -
                    static_cast<std::int64_t>(report.capacity);
  return report;
}

ThreeCReport classify_misses_paper_l1(CacheModel& model, const Trace& trace) {
  return classify_misses(model, trace, CacheGeometry::paper_l1());
}

}  // namespace canu
