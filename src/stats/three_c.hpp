// 3C miss classification (Hill): compulsory / capacity / conflict.
//
// The paper's techniques all target *conflict* misses — the misses a
// direct-mapped or low-associative placement causes beyond what a
// fully-associative cache of the same capacity would suffer. This module
// decomposes a model's misses accordingly:
//
//   compulsory = first-ever reference to a line (infinite cache misses)
//   capacity   = additional misses of a fully-associative LRU cache of the
//                same capacity
//   conflict   = the model's misses beyond compulsory + capacity
//
// Conflict can be negative for schemes that beat fully-associative LRU on a
// trace (e.g. via OPT-like relocation or lucky hashing); the report keeps
// the signed value, as the literature does.
#pragma once

#include <cstdint>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "trace/trace.hpp"

namespace canu {

class ThreadPool;

struct ThreeCReport {
  std::uint64_t accesses = 0;
  std::uint64_t total_misses = 0;       ///< of the model under study
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::int64_t conflict = 0;            ///< signed (see header comment)

  double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(total_misses) /
                               static_cast<double>(accesses);
  }
  double conflict_fraction() const noexcept {
    return total_misses == 0 ? 0.0
                             : static_cast<double>(conflict) /
                                   static_cast<double>(total_misses);
  }
};

/// Classify the misses a (freshly flushed) `model` incurs on `trace`.
/// `capacity_geometry` describes the equal-capacity fully-associative
/// reference (ways = lines, one set). The model is flushed first. With a
/// pool, the model leg and the compulsory/capacity reference leg run as
/// two concurrent tasks (identical counts either way).
ThreeCReport classify_misses(CacheModel& model, const Trace& trace,
                             const CacheGeometry& capacity_geometry,
                             ThreadPool* pool = nullptr);

/// Convenience: classify against the paper's 32 KB L1 capacity.
ThreeCReport classify_misses_paper_l1(CacheModel& model, const Trace& trace,
                                      ThreadPool* pool = nullptr);

}  // namespace canu
