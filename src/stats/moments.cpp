#include "stats/moments.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace canu {

Moments compute_moments(std::span<const double> values) {
  Moments m;
  m.n = values.size();
  if (m.n == 0) return m;

  double sum = 0.0;
  for (double v : values) sum += v;
  m.mean = sum / static_cast<double>(m.n);

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double v : values) {
    const double d = v - m.mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  const double n = static_cast<double>(m.n);
  m2 /= n;
  m3 /= n;
  m4 /= n;
  m.variance = m2;
  m.stddev = std::sqrt(m2);
  if (m2 > 0.0) {
    m.skewness = m3 / (m2 * m.stddev);
    m.kurtosis = m4 / (m2 * m2);
    m.excess_kurtosis = m.kurtosis - 3.0;
  }
  return m;
}

Moments compute_moments(std::span<const std::uint64_t> counts) {
  std::vector<double> values(counts.begin(), counts.end());
  return compute_moments(values);
}

double percent_increase(double baseline, double value) {
  if (baseline == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (value - baseline) / baseline;
}

double percent_reduction(double baseline, double value) {
  if (baseline == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (baseline - value) / baseline;
}

}  // namespace canu
