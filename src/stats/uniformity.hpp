// Set-level uniformity analysis.
//
// Implements Zhang's classification used by the paper (§IV.C):
//   FHS — frequently-hit sets:    >= 2x the average number of hits
//   FMS — frequently-missed sets: >= 2x the average number of misses
//   LAS — least-accessed sets:    <  1/2 the average number of accesses
// plus the Figure 1 style summary (fraction of sets below half / above twice
// the average access count) and per-set moment extraction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache_model.hpp"
#include "stats/moments.hpp"

namespace canu {

struct UniformityReport {
  std::size_t sets = 0;
  double avg_accesses = 0.0;
  double avg_hits = 0.0;
  double avg_misses = 0.0;

  std::size_t fhs = 0;  ///< frequently-hit sets
  std::size_t fms = 0;  ///< frequently-missed sets
  std::size_t las = 0;  ///< least-accessed sets

  /// Fraction of sets receiving < 1/2 the average accesses (Fig. 1: 90.43%
  /// for fft) and > 2x the average (6.641% for fft).
  double frac_under_half = 0.0;
  double frac_over_twice = 0.0;

  Moments access_moments;
  Moments hit_moments;
  Moments miss_moments;

  double fhs_fraction() const noexcept {
    return sets ? static_cast<double>(fhs) / static_cast<double>(sets) : 0.0;
  }
  double fms_fraction() const noexcept {
    return sets ? static_cast<double>(fms) / static_cast<double>(sets) : 0.0;
  }
  double las_fraction() const noexcept {
    return sets ? static_cast<double>(las) / static_cast<double>(sets) : 0.0;
  }
};

/// Analyse a per-set counter span produced by a cache model.
UniformityReport analyse_uniformity(std::span<const SetStats> set_stats);

/// Extract one field of the per-set counters as a vector (for histograms
/// and custom analyses).
enum class SetCounter { kAccesses, kHits, kMisses };
std::vector<std::uint64_t> extract_counts(std::span<const SetStats> set_stats,
                                          SetCounter counter);

}  // namespace canu
