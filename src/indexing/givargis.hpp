// Givargis trace-driven index-bit selection (paper §II.A, eqs. (1)/(2);
// Givargis, DAC 2003).
//
// From the set of *unique* addresses in a profiling trace, each candidate
// address bit i gets a quality value
//     Q_i = min(Z_i, O_i) / max(Z_i, O_i)                           (1)
// where Z_i/O_i count how often bit i is 0/1 across the unique addresses,
// and each pair (i, j) gets a correlation
//     C_ij = min(E_ij, D_ij) / max(E_ij, D_ij)                      (2)
// where E_ij/D_ij count equal/different values of bits i and j.
//
// Selection is greedy: pick the highest-quality bit, then repeatedly pick the
// candidate maximizing quality discounted by its correlation with the bits
// already selected (score_j = Q_j * prod_{s in S} (1 - C_sj)), until m bits
// are chosen. This realizes the paper's "select next high quality bit and
// update correlation vectors" loop; the multiplicative discount is our
// concrete reading of the dot-product update, documented in DESIGN.md.
//
// Following the paper's methodology (§IV.A), byte-offset bits are *excluded*
// from the candidate set — the paper attributes Givargis' poor 32-byte-line
// results to exactly this exclusion, which bench/abl_givargis_blocksize
// explores.
#pragma once

#include <span>
#include <vector>

#include "indexing/index_function.hpp"
#include "trace/trace.hpp"

namespace canu {

/// Result of the quality/correlation analysis, exposed for tests and tools.
struct GivargisAnalysis {
  std::vector<unsigned> candidate_bits;  ///< bit positions analysed
  std::vector<double> quality;           ///< Q_i per candidate
  std::vector<std::vector<double>> correlation;  ///< C_ij per candidate pair
  std::vector<unsigned> selected_bits;   ///< chosen index bits, LSB first
};

/// Tuning knobs for the Givargis analysis.
struct GivargisOptions {
  /// Number of candidate bits above the offset to analyse. Bits beyond the
  /// highest set bit of any traced address have zero quality and are never
  /// selected, so a generous window costs nothing.
  unsigned candidate_window = 32;
  /// Include byte-offset bits as candidates (paper: excluded).
  bool include_offset_bits = false;
};

class GivargisIndex final : public IndexFunction {
 public:

  /// Train on a profiling trace. `sets` must be a power of two.
  GivargisIndex(const Trace& profile, std::uint64_t sets, unsigned offset_bits,
                GivargisOptions opt = GivargisOptions());

  /// Train on a precomputed unique-address set (indexing/factory.hpp's
  /// ProfileContext computes it once and shares it across trained schemes).
  GivargisIndex(std::span<const std::uint64_t> unique_addrs,
                std::uint64_t sets, unsigned offset_bits,
                GivargisOptions opt = GivargisOptions());

  /// Restore a previously trained function from its persisted bit
  /// positions (indexing/trained_store.hpp) — no analysis is run, so the
  /// quality/correlation fields of analysis() stay empty.
  GivargisIndex(std::vector<unsigned> selected_bits, std::uint64_t sets);

  std::uint64_t index(std::uint64_t addr) const noexcept override;
  std::uint64_t sets() const noexcept override { return sets_; }
  std::string name() const override { return "givargis"; }

  /// The trained bit positions (LSB of the produced index first).
  const std::vector<unsigned>& selected_bits() const noexcept {
    return analysis_.selected_bits;
  }
  const GivargisAnalysis& analysis() const noexcept { return analysis_; }

  /// Run the quality/correlation analysis without constructing an index
  /// function (used by GivargisXorIndex and by tests).
  static GivargisAnalysis analyse(const Trace& profile, unsigned index_bits,
                                  unsigned offset_bits, GivargisOptions opt = GivargisOptions());

  /// Same analysis over an already-deduplicated address set.
  static GivargisAnalysis analyse_unique(
      std::span<const std::uint64_t> unique_addrs, unsigned index_bits,
      unsigned offset_bits, GivargisOptions opt = GivargisOptions());

 private:
  std::uint64_t sets_;
  GivargisAnalysis analysis_;
};

}  // namespace canu
