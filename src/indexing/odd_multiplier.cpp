#include "indexing/odd_multiplier.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

OddMultiplierIndex::OddMultiplierIndex(std::uint64_t sets, unsigned offset_bits,
                                       std::uint64_t multiplier)
    : sets_(sets),
      offset_bits_(offset_bits),
      index_bits_(log2_exact(sets)),
      multiplier_(multiplier) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  CANU_CHECK_MSG(multiplier % 2 == 1,
                 "multiplier must be odd, got " << multiplier);
}

std::uint64_t OddMultiplierIndex::index(std::uint64_t addr) const noexcept {
  const std::uint64_t idx = bit_field(addr, offset_bits_, index_bits_);
  const std::uint64_t tag = addr >> (offset_bits_ + index_bits_);
  return (multiplier_ * tag + idx) & (sets_ - 1);
}

std::string OddMultiplierIndex::name() const {
  return "odd_multiplier(" + std::to_string(multiplier_) + ")";
}

}  // namespace canu
