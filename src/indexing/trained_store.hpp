// On-disk cache of trained index functions.
//
// The three profiled schemes (Givargis, Givargis-XOR, Patel) each reduce,
// after their expensive analysis/search, to a short list of selected
// address-bit positions — everything index() ever consults. Training is a
// pure function of (profiling trace, scheme, sets, offset bits, tuning
// options), and the profiling trace is itself keyed by the trace cache, so
// the selected bits can be persisted next to the cached trace and restored
// on later runs, skipping trace materialization and training entirely.
// This is what lets warm sampled runs (DESIGN.md §14) avoid the profile
// pass that would otherwise dominate their wall clock.
//
// Layout: `<dir>/<trace_key>.<fingerprint>.idx`, where the fingerprint
// hashes (scheme, sets, offset_bits, tuning options). Files are versioned
// ("CANUIDX1"), FNV-1a checksummed, written atomically (temp + rename),
// and discarded-and-retrained when unreadable — the same contract as the
// trace cache and the feature sidecars.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "indexing/factory.hpp"
#include "indexing/index_function.hpp"

namespace canu {

/// Short stable hex digest of everything (besides the profiling trace)
/// that determines a trained function's selected bits.
std::string index_fingerprint(IndexScheme scheme, std::uint64_t sets,
                              unsigned offset_bits,
                              const IndexFactoryOptions& opt = {});

/// The selected bit positions of a trained function, or nullopt when the
/// concrete type is not one of the persistable trained schemes.
std::optional<std::vector<unsigned>> extract_trained_bits(
    const IndexFunction& fn);

/// Rebuild a trained function from persisted bits (inverse of
/// extract_trained_bits for the given scheme).
IndexFunctionPtr restore_index_function(IndexScheme scheme,
                                        std::vector<unsigned> bits,
                                        std::uint64_t sets,
                                        unsigned offset_bits);

class TrainedIndexStore {
 public:
  /// `dir` is typically the trace-cache directory; empty disables the
  /// store (load misses, store is a no-op).
  explicit TrainedIndexStore(std::string dir);

  bool enabled() const noexcept { return !dir_.empty(); }

  std::string path_for(const std::string& trace_key,
                       const std::string& fingerprint) const;

  /// Load persisted bits; nullopt on miss. A corrupt or version-mismatched
  /// file is removed and reported as a miss (retrain-and-rewrite contract).
  std::optional<std::vector<unsigned>> load(
      const std::string& trace_key, const std::string& fingerprint) const;

  /// Atomically persist the bits (temp file + rename).
  void store(const std::string& trace_key, const std::string& fingerprint,
             const std::vector<unsigned>& bits) const;

 private:
  std::string dir_;
};

}  // namespace canu
