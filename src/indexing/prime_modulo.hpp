// Prime-modulo hashing (paper §II.B, eq. (3); Kharbutli et al. HPCA'04):
//     index = line_address mod p
// where p is the largest prime <= the number of physical sets. Sets
// [p, physical_sets) are never used — the paper's "cache fragmentation".
#pragma once

#include "indexing/index_function.hpp"

namespace canu {

class PrimeModuloIndex final : public IndexFunction {
 public:
  /// `physical_sets` is the geometric set count; the modulus is the largest
  /// prime <= physical_sets.
  PrimeModuloIndex(std::uint64_t physical_sets, unsigned offset_bits);

  std::uint64_t index(std::uint64_t addr) const noexcept override;

  /// Number of sets actually reachable (= the prime modulus).
  std::uint64_t sets() const noexcept override { return prime_; }
  std::string name() const override { return "prime_modulo"; }

  std::uint64_t prime() const noexcept { return prime_; }
  std::uint64_t physical_sets() const noexcept { return physical_sets_; }

  /// Fraction of the physical sets left unused (fragmentation).
  double fragmentation() const noexcept {
    return 1.0 - static_cast<double>(prime_) /
                     static_cast<double>(physical_sets_);
  }

 private:
  std::uint64_t physical_sets_;
  std::uint64_t prime_;
  unsigned offset_bits_;
};

}  // namespace canu
