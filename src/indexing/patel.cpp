#include "indexing/patel.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

namespace {

/// C(n, k) with saturation to avoid overflow in feasibility checks.
std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    // result * (n-k+i) may overflow for large windows; saturate.
    if (result > ~std::uint64_t{0} / (n - k + i)) return ~std::uint64_t{0};
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace

std::uint64_t PatelOptimalIndex::combination_cost(
    const Trace& trace, const std::vector<unsigned>& bits, std::uint64_t sets,
    unsigned offset_bits) {
  // Direct-mapped simulation: one resident line identity per set.
  std::vector<std::uint64_t> resident(sets, ~std::uint64_t{0});
  std::uint64_t misses = 0;
  for (const MemRef& r : trace) {
    const std::uint64_t set = gather_bits(r.addr, bits) & (sets - 1);
    const std::uint64_t line = r.addr >> offset_bits;
    if (resident[set] != line) {
      ++misses;
      resident[set] = line;
    }
  }
  return misses;
}

PatelOptimalIndex::PatelOptimalIndex(const Trace& profile, std::uint64_t sets,
                                     unsigned offset_bits, PatelOptions opt)
    : sets_(sets) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  CANU_CHECK_MSG(!profile.empty(), "Patel search requires a non-empty profile");
  const unsigned m = log2_exact(sets);
  CANU_CHECK_MSG(opt.candidate_window >= m,
                 "candidate window " << opt.candidate_window
                                     << " smaller than index width " << m);
  const std::uint64_t space = binomial(opt.candidate_window, m);
  CANU_CHECK_MSG(space <= opt.max_combinations,
                 "search space " << space << " exceeds cap "
                                 << opt.max_combinations
                                 << " (the intractability the paper cites)");

  // Pre-extract line addresses once; cost evaluation then only gathers bits.
  std::vector<std::uint64_t> lines;
  lines.reserve(profile.size());
  for (const MemRef& r : profile) lines.push_back(r.addr >> offset_bits);

  auto cost_of = [&](const std::vector<unsigned>& rel_bits) {
    std::vector<std::uint64_t> resident(sets, ~std::uint64_t{0});
    std::uint64_t misses = 0;
    for (std::uint64_t line : lines) {
      const std::uint64_t set = gather_bits(line, rel_bits);
      if (resident[set] != line) {
        ++misses;
        resident[set] = line;
      }
    }
    return misses;
  };

  // Enumerate m-combinations of [0, window) in lexicographic order.
  std::vector<unsigned> combo(m);
  for (unsigned i = 0; i < m; ++i) combo[i] = i;
  best_cost_ = ~std::uint64_t{0};
  for (;;) {
    ++searched_;
    const std::uint64_t cost = cost_of(combo);
    if (cost < best_cost_) {
      best_cost_ = cost;
      selected_bits_ = combo;
    }
    // Next combination.
    int i = static_cast<int>(m) - 1;
    while (i >= 0 &&
           combo[static_cast<unsigned>(i)] ==
               opt.candidate_window - m + static_cast<unsigned>(i)) {
      --i;
    }
    if (i < 0) break;
    ++combo[static_cast<unsigned>(i)];
    for (unsigned j = static_cast<unsigned>(i) + 1; j < m; ++j) {
      combo[j] = combo[j - 1] + 1;
    }
  }
  // Rebase selected bits from line-relative to absolute address positions.
  for (unsigned& b : selected_bits_) b += offset_bits;
}

PatelOptimalIndex::PatelOptimalIndex(std::vector<unsigned> selected_bits,
                                     std::uint64_t sets)
    : sets_(sets), selected_bits_(std::move(selected_bits)) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  CANU_CHECK_MSG(selected_bits_.size() == log2_exact(sets),
                 "restored bit count " << selected_bits_.size()
                                       << " does not index " << sets
                                       << " sets");
}

std::uint64_t PatelOptimalIndex::index(std::uint64_t addr) const noexcept {
  return gather_bits(addr, selected_bits_);
}

}  // namespace canu
