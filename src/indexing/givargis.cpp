#include "indexing/givargis.hpp"

#include <algorithm>
#include <bit>

#include "obs/obs.hpp"
#include "trace/trace_stats.hpp"
#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

GivargisAnalysis GivargisIndex::analyse(const Trace& profile,
                                        unsigned index_bits,
                                        unsigned offset_bits,
                                        GivargisOptions opt) {
  CANU_CHECK_MSG(!profile.empty(), "Givargis requires a non-empty profile");
  const std::vector<std::uint64_t> addrs = unique_addresses(profile);
  return analyse_unique(addrs, index_bits, offset_bits, opt);
}

GivargisAnalysis GivargisIndex::analyse_unique(
    std::span<const std::uint64_t> unique_addrs, unsigned index_bits,
    unsigned offset_bits, GivargisOptions opt) {
  CANU_CHECK_MSG(!unique_addrs.empty(),
                 "Givargis requires a non-empty profile");
  obs::Span span("train", "givargis training", "unique_addrs",
                 unique_addrs.size());
  obs::count(obs::Counter::kGivargisTrainings);
  CANU_CHECK_MSG(opt.candidate_window >= index_bits,
                 "candidate window " << opt.candidate_window
                                     << " smaller than index width "
                                     << index_bits);

  GivargisAnalysis a;
  const unsigned lo = opt.include_offset_bits ? 0 : offset_bits;
  for (unsigned b = lo; b < lo + opt.candidate_window && b < 64; ++b) {
    a.candidate_bits.push_back(b);
  }
  const std::size_t n = a.candidate_bits.size();
  CANU_CHECK(n >= index_bits);

  const double total = static_cast<double>(unique_addrs.size());

  // Count ones per bit and pairwise equal-values. Naively this is an
  // O(u * n^2) bit-probing loop; instead, transpose each candidate bit into
  // a packed column bitset (64 addresses per word). Then the ones count is
  // a popcount sum over one column, and the pairwise *different* count is a
  // popcount sum over the XOR of two columns — the same integer counters at
  // ~1/64th the work, which matters because this analysis dominates
  // trained-scheme construction time.
  const std::size_t u = unique_addrs.size();
  const std::size_t words = (u + 63) / 64;
  std::vector<std::uint64_t> columns(n * words, 0);
  for (std::size_t k = 0; k < u; ++k) {
    const std::uint64_t addr = unique_addrs[k];
    const std::uint64_t mask = std::uint64_t{1} << (k & 63);
    const std::size_t word = k >> 6;
    for (std::size_t i = 0; i < n; ++i) {
      if (get_bit(addr, a.candidate_bits[i])) columns[i * words + word] |= mask;
    }
  }

  std::vector<std::size_t> ones(n, 0);
  std::vector<std::vector<std::size_t>> equal(n, std::vector<std::size_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* col_i = columns.data() + i * words;
    for (std::size_t w = 0; w < words; ++w) {
      ones[i] += static_cast<std::size_t>(std::popcount(col_i[w]));
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::uint64_t* col_j = columns.data() + j * words;
      std::size_t different = 0;
      for (std::size_t w = 0; w < words; ++w) {
        different += static_cast<std::size_t>(std::popcount(col_i[w] ^ col_j[w]));
      }
      equal[i][j] = u - different;
    }
  }

  a.quality.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double o = static_cast<double>(ones[i]);
    const double z = total - o;
    a.quality[i] = (std::max(z, o) == 0) ? 0.0 : std::min(z, o) / std::max(z, o);
  }

  a.correlation.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    a.correlation[i][i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double e = static_cast<double>(equal[i][j]);
      const double d = total - e;
      const double c =
          (std::max(e, d) == 0) ? 0.0 : std::min(e, d) / std::max(e, d);
      // Eq. (2) yields 1 for *uncorrelated* bits (E ~= D) and 0 for fully
      // correlated or anti-correlated bits. We store the *correlation
      // strength* 1-C so that the greedy discount below penalizes picking a
      // bit that mirrors an already-selected one.
      a.correlation[i][j] = a.correlation[j][i] = 1.0 - c;
    }
  }

  // Greedy selection with multiplicative decorrelation discount.
  std::vector<double> score = a.quality;
  std::vector<bool> taken(n, false);
  for (unsigned round = 0; round < index_bits; ++round) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      if (best == n || score[i] > score[best] ||
          (score[i] == score[best] && i < best)) {
        best = i;
      }
    }
    CANU_CHECK(best < n);
    taken[best] = true;
    a.selected_bits.push_back(a.candidate_bits[best]);
    for (std::size_t i = 0; i < n; ++i) {
      if (!taken[i]) score[i] *= 1.0 - a.correlation[best][i];
    }
  }
  // Bits stay in greedy-selection (quality-ranked) order. For the pure
  // Givargis index the order is only a permutation of set numbers, but the
  // Givargis-XOR hybrid mixes these bits into the index field, where the
  // placement matters.
  return a;
}

GivargisIndex::GivargisIndex(const Trace& profile, std::uint64_t sets,
                             unsigned offset_bits, GivargisOptions opt)
    : sets_(sets) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  analysis_ = analyse(profile, log2_exact(sets), offset_bits, opt);
}

GivargisIndex::GivargisIndex(std::span<const std::uint64_t> unique_addrs,
                             std::uint64_t sets, unsigned offset_bits,
                             GivargisOptions opt)
    : sets_(sets) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  analysis_ = analyse_unique(unique_addrs, log2_exact(sets), offset_bits, opt);
}

GivargisIndex::GivargisIndex(std::vector<unsigned> selected_bits,
                             std::uint64_t sets)
    : sets_(sets) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  CANU_CHECK_MSG(selected_bits.size() == log2_exact(sets),
                 "restored bit count " << selected_bits.size()
                                       << " does not index " << sets
                                       << " sets");
  analysis_.selected_bits = std::move(selected_bits);
}

std::uint64_t GivargisIndex::index(std::uint64_t addr) const noexcept {
  return gather_bits(addr, analysis_.selected_bits);
}

}  // namespace canu
