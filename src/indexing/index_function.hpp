// IndexFunction: maps a byte address to a cache-set index.
//
// This is the strategy interface behind every indexing scheme in the paper's
// Section II (modulo baseline, XOR, odd-multiplier, prime-modulo, Givargis,
// Givargis-XOR, Patel). Cache models are parameterized on an IndexFunction;
// the set of cache lines an address can live in is fully determined by it.
//
// Conventions (paper §1.1, Figure 2): for an address with `offset_bits` b and
// a cache with 2^m sets, the traditional fields are
//     offset = addr[b-1 : 0]
//     index  = addr[b+m-1 : b]
//     tag    = addr[N-1 : b+m]
// An IndexFunction may consume any address bits above the offset, but must
// always return a value < sets().
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace canu {

class IndexFunction {
 public:
  virtual ~IndexFunction() = default;

  /// Map a byte address to a set index in [0, sets()).
  virtual std::uint64_t index(std::uint64_t addr) const noexcept = 0;

  /// Number of distinct sets this function can address. Note: for
  /// prime-modulo this is smaller than the physical set count (the paper's
  /// "cache fragmentation"); cache models size their arrays by the physical
  /// geometry and simply never see the fragmented sets used.
  virtual std::uint64_t sets() const noexcept = 0;

  /// Scheme name for reports, e.g. "xor", "odd_multiplier(21)".
  virtual std::string name() const = 0;
};

using IndexFunctionPtr = std::shared_ptr<const IndexFunction>;

}  // namespace canu
