#include "indexing/trained_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "indexing/givargis.hpp"
#include "indexing/givargis_xor.hpp"
#include "indexing/patel.hpp"
#include "util/error.hpp"

namespace canu {

namespace fs = std::filesystem;

namespace {

constexpr char kIdxMagic[8] = {'C', 'A', 'N', 'U', 'I', 'D', 'X', '1'};

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_bytes(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string unique_temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

std::string index_fingerprint(IndexScheme scheme, std::uint64_t sets,
                              unsigned offset_bits,
                              const IndexFactoryOptions& opt) {
  const std::string name = index_scheme_name(scheme);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_bytes(h, name.data(), name.size());
  h = fnv1a_u64(h, sets);
  h = fnv1a_u64(h, offset_bits);
  h = fnv1a_u64(h, opt.odd_multiplier);
  h = fnv1a_u64(h, opt.patel_candidate_window);
  std::ostringstream os;
  os << name << '-' << std::hex << std::setw(16) << std::setfill('0') << h;
  return os.str();
}

std::optional<std::vector<unsigned>> extract_trained_bits(
    const IndexFunction& fn) {
  if (const auto* g = dynamic_cast<const GivargisIndex*>(&fn)) {
    return g->selected_bits();
  }
  if (const auto* gx = dynamic_cast<const GivargisXorIndex*>(&fn)) {
    return gx->selected_tag_bits();
  }
  if (const auto* p = dynamic_cast<const PatelOptimalIndex*>(&fn)) {
    return p->selected_bits();
  }
  return std::nullopt;
}

IndexFunctionPtr restore_index_function(IndexScheme scheme,
                                        std::vector<unsigned> bits,
                                        std::uint64_t sets,
                                        unsigned offset_bits) {
  switch (scheme) {
    case IndexScheme::kGivargis:
      return std::make_shared<GivargisIndex>(std::move(bits), sets);
    case IndexScheme::kGivargisXor:
      return std::make_shared<GivargisXorIndex>(std::move(bits), sets,
                                                offset_bits);
    case IndexScheme::kPatelOptimal:
      return std::make_shared<PatelOptimalIndex>(std::move(bits), sets);
    default:
      break;
  }
  throw Error("scheme '" + index_scheme_name(scheme) +
              "' is not a restorable trained scheme");
}

TrainedIndexStore::TrainedIndexStore(std::string dir) : dir_(std::move(dir)) {}

std::string TrainedIndexStore::path_for(const std::string& trace_key,
                                        const std::string& fingerprint) const {
  return (fs::path(dir_) / (trace_key + "." + fingerprint + ".idx")).string();
}

std::optional<std::vector<unsigned>> TrainedIndexStore::load(
    const std::string& trace_key, const std::string& fingerprint) const {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(trace_key, fingerprint);
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();

  const auto discard = [&path]() -> std::optional<std::vector<unsigned>> {
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  };

  // magic(8) + count u32 + count × u32 + checksum u64
  if (bytes.size() < 8 + 4 + 8) return discard();
  if (std::memcmp(bytes.data(), kIdxMagic, 8) != 0) return discard();
  const auto u32_at = [&bytes](std::size_t pos) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    return v;
  };
  const std::uint32_t count = u32_at(8);
  const std::size_t expect = 8 + 4 + std::size_t{count} * 4 + 8;
  if (bytes.size() != expect) return discard();
  const std::size_t body = bytes.size() - 8 - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[bytes.size() - 8 + i]))
              << (8 * i);
  }
  if (fnv1a_bytes(0xcbf29ce484222325ULL, bytes.data() + 8, body) != stored) {
    return discard();
  }

  std::vector<unsigned> bits;
  bits.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    bits.push_back(u32_at(8 + 4 + std::size_t{i} * 4));
  }
  return bits;
}

void TrainedIndexStore::store(const std::string& trace_key,
                              const std::string& fingerprint,
                              const std::vector<unsigned>& bits) const {
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);

  std::string body;
  const auto append_u32 = [&body](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  append_u32(static_cast<std::uint32_t>(bits.size()));
  for (const unsigned b : bits) append_u32(static_cast<std::uint32_t>(b));
  const std::uint64_t checksum =
      fnv1a_bytes(0xcbf29ce484222325ULL, body.data(), body.size());

  const std::string path = path_for(trace_key, fingerprint);
  const std::string temp = path + unique_temp_suffix();
  {
    std::ofstream os(temp, std::ios::binary);
    CANU_CHECK_MSG(os.is_open(), "cannot open '" << temp << "' for writing");
    os.write(kIdxMagic, 8);
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    for (int i = 0; i < 8; ++i) {
      os.put(static_cast<char>((checksum >> (8 * i)) & 0xff));
    }
    os.close();
    CANU_CHECK_MSG(!os.fail(),
                   "failed writing trained-index file '" << path << "'");
  }
  fs::rename(temp, path, ec);
  if (ec) fs::remove(temp, ec);  // concurrent writer won the race; fine
}

}  // namespace canu
