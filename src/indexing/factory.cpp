#include "indexing/factory.hpp"

#include "trace/trace_stats.hpp"
#include "indexing/givargis.hpp"
#include "indexing/givargis_xor.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "indexing/patel.hpp"
#include "indexing/prime_modulo.hpp"
#include "indexing/xor_index.hpp"
#include "util/error.hpp"

namespace canu {

std::string index_scheme_name(IndexScheme scheme) {
  switch (scheme) {
    case IndexScheme::kModulo: return "modulo";
    case IndexScheme::kXor: return "xor";
    case IndexScheme::kOddMultiplier: return "odd_multiplier";
    case IndexScheme::kPrimeModulo: return "prime_modulo";
    case IndexScheme::kGivargis: return "givargis";
    case IndexScheme::kGivargisXor: return "givargis_xor";
    case IndexScheme::kPatelOptimal: return "patel_optimal";
  }
  return "unknown";
}

IndexScheme parse_index_scheme(const std::string& name) {
  for (IndexScheme s : kAllIndexSchemes) {
    if (index_scheme_name(s) == name) return s;
  }
  throw Error("unknown index scheme: " + name);
}

bool scheme_needs_profile(IndexScheme scheme) noexcept {
  return scheme == IndexScheme::kGivargis ||
         scheme == IndexScheme::kGivargisXor ||
         scheme == IndexScheme::kPatelOptimal;
}

std::span<const std::uint64_t> ProfileContext::unique_addrs() const {
  if (!unique_) unique_ = unique_addresses(*profile_);
  return *unique_;
}

IndexFunctionPtr make_index_function(IndexScheme scheme, std::uint64_t sets,
                                     unsigned offset_bits,
                                     const Trace* profile,
                                     const IndexFactoryOptions& opt) {
  if (profile == nullptr) {
    return make_index_function(scheme, sets, offset_bits,
                               static_cast<const ProfileContext*>(nullptr),
                               opt);
  }
  const ProfileContext context(*profile);
  return make_index_function(scheme, sets, offset_bits, &context, opt);
}

IndexFunctionPtr make_index_function(IndexScheme scheme, std::uint64_t sets,
                                     unsigned offset_bits,
                                     const ProfileContext* profile,
                                     const IndexFactoryOptions& opt) {
  if (scheme_needs_profile(scheme)) {
    CANU_CHECK_MSG(profile != nullptr && !profile->trace().empty(),
                   index_scheme_name(scheme)
                       << " requires a non-empty profiling trace");
  }
  switch (scheme) {
    case IndexScheme::kModulo:
      return std::make_shared<ModuloIndex>(sets, offset_bits);
    case IndexScheme::kXor:
      return std::make_shared<XorIndex>(sets, offset_bits);
    case IndexScheme::kOddMultiplier:
      return std::make_shared<OddMultiplierIndex>(sets, offset_bits,
                                                  opt.odd_multiplier);
    case IndexScheme::kPrimeModulo:
      return std::make_shared<PrimeModuloIndex>(sets, offset_bits);
    case IndexScheme::kGivargis:
      return std::make_shared<GivargisIndex>(profile->unique_addrs(), sets,
                                             offset_bits);
    case IndexScheme::kGivargisXor:
      return std::make_shared<GivargisXorIndex>(profile->unique_addrs(), sets,
                                                offset_bits);
    case IndexScheme::kPatelOptimal: {
      PatelOptions popt;
      popt.candidate_window = opt.patel_candidate_window;
      return std::make_shared<PatelOptimalIndex>(profile->trace(), sets,
                                                 offset_bits, popt);
    }
  }
  throw Error("unhandled index scheme");
}

}  // namespace canu
