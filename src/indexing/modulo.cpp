#include "indexing/modulo.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

ModuloIndex::ModuloIndex(std::uint64_t sets, unsigned offset_bits)
    : sets_(sets),
      offset_bits_(offset_bits),
      index_bits_(log2_exact(sets)) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
}

std::uint64_t ModuloIndex::index(std::uint64_t addr) const noexcept {
  return bit_field(addr, offset_bits_, index_bits_);
}

}  // namespace canu
