#include "indexing/givargis_xor.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

GivargisXorIndex::GivargisXorIndex(const Trace& profile, std::uint64_t sets,
                                   unsigned offset_bits,
                                   GivargisOptions opt)
    : sets_(sets),
      offset_bits_(offset_bits),
      index_bits_(log2_exact(sets)) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  // Restrict candidates to the tag region by shifting the analysis window:
  // analyse() starts its window at `offset_bits` when offset bits are
  // excluded, so present it with an effective offset of offset+index bits.
  GivargisAnalysis a = GivargisIndex::analyse(
      profile, index_bits_, offset_bits_ + index_bits_, opt);
  selected_tag_bits_ = a.selected_bits;
}

GivargisXorIndex::GivargisXorIndex(
    std::span<const std::uint64_t> unique_addrs, std::uint64_t sets,
    unsigned offset_bits, GivargisOptions opt)
    : sets_(sets),
      offset_bits_(offset_bits),
      index_bits_(log2_exact(sets)) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  GivargisAnalysis a = GivargisIndex::analyse_unique(
      unique_addrs, index_bits_, offset_bits_ + index_bits_, opt);
  selected_tag_bits_ = a.selected_bits;
}

GivargisXorIndex::GivargisXorIndex(std::vector<unsigned> selected_tag_bits,
                                   std::uint64_t sets, unsigned offset_bits)
    : sets_(sets),
      offset_bits_(offset_bits),
      index_bits_(log2_exact(sets)),
      selected_tag_bits_(std::move(selected_tag_bits)) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
  CANU_CHECK_MSG(selected_tag_bits_.size() == index_bits_,
                 "restored tag-bit count " << selected_tag_bits_.size()
                                           << " does not index " << sets
                                           << " sets");
}

std::uint64_t GivargisXorIndex::index(std::uint64_t addr) const noexcept {
  const std::uint64_t idx = bit_field(addr, offset_bits_, index_bits_);
  const std::uint64_t tag_hash = gather_bits(addr, selected_tag_bits_);
  return (idx ^ tag_hash) & (sets_ - 1);
}

}  // namespace canu
