// Patel application-specific optimal indexing (paper §II.F; Patel et al.,
// ICCAD 2004): exhaustively search bit combinations for the one minimizing
// conflict misses on a given trace.
//
// The paper declined to evaluate this scheme at 1024 sets because the search
// is intractable (C(32,10) ≈ 6.5e7 combinations × trace-length simulation).
// We implement it for small caches — bench/abl_patel_optimal explores where
// exhaustive search stops being feasible — and expose the paper's conflict-
// pattern cost (eq. (6)) alongside direct miss-count simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "indexing/index_function.hpp"
#include "trace/trace.hpp"

namespace canu {

/// Tuning knobs for the Patel exhaustive search.
struct PatelOptions {
  /// Candidate bits above the offset considered by the search. The search
  /// enumerates C(candidate_window, m) combinations; keep the window small.
  unsigned candidate_window = 12;
  /// Hard cap on combinations to guard against accidental blow-ups.
  std::uint64_t max_combinations = 2'000'000;
};

class PatelOptimalIndex final : public IndexFunction {
 public:

  /// Search for the m-bit combination with the fewest direct-mapped misses
  /// on `profile`. Throws canu::Error if the search space exceeds
  /// opt.max_combinations.
  PatelOptimalIndex(const Trace& profile, std::uint64_t sets,
                    unsigned offset_bits, PatelOptions opt = PatelOptions());

  /// Restore a previously searched function from its persisted bit
  /// positions (indexing/trained_store.hpp); no search is run, so
  /// best_cost() and combinations_searched() report zero.
  PatelOptimalIndex(std::vector<unsigned> selected_bits, std::uint64_t sets);

  std::uint64_t index(std::uint64_t addr) const noexcept override;
  std::uint64_t sets() const noexcept override { return sets_; }
  std::string name() const override { return "patel_optimal"; }

  const std::vector<unsigned>& selected_bits() const noexcept {
    return selected_bits_;
  }
  /// Miss count of the winning combination on the profiling trace.
  std::uint64_t best_cost() const noexcept { return best_cost_; }
  /// Number of combinations evaluated.
  std::uint64_t combinations_searched() const noexcept { return searched_; }

  /// The paper's cost (eq. (6)) of one bit combination: the number of
  /// misses a direct-mapped cache indexed by the absolute address bits
  /// `bits` incurs on `trace` (line identity = address >> offset_bits).
  /// Exposed so tests can cross-check the search.
  static std::uint64_t combination_cost(const Trace& trace,
                                        const std::vector<unsigned>& bits,
                                        std::uint64_t sets,
                                        unsigned offset_bits);

 private:
  std::uint64_t sets_;
  std::vector<unsigned> selected_bits_;
  std::uint64_t best_cost_ = 0;
  std::uint64_t searched_ = 0;
};

}  // namespace canu
