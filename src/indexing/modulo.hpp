// Traditional modulo-2^m indexing — the baseline every scheme is compared to.
#pragma once

#include "indexing/index_function.hpp"

namespace canu {

/// index = addr[offset+m-1 : offset]  (i.e. line address mod 2^m).
class ModuloIndex final : public IndexFunction {
 public:
  /// `sets` must be a power of two; `offset_bits` = log2(line size).
  ModuloIndex(std::uint64_t sets, unsigned offset_bits);

  std::uint64_t index(std::uint64_t addr) const noexcept override;
  std::uint64_t sets() const noexcept override { return sets_; }
  std::string name() const override { return "modulo"; }

  unsigned offset_bits() const noexcept { return offset_bits_; }
  unsigned index_bits() const noexcept { return index_bits_; }

 private:
  std::uint64_t sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
};

}  // namespace canu
