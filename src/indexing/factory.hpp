// Factory for index functions, keyed by scheme kind. Used by the Evaluator
// and the figure benches to construct schemes uniformly; trained schemes
// (Givargis, Givargis-XOR, Patel) take a profiling trace, mirroring the
// paper's offline-profiling model (Figure 5).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "indexing/index_function.hpp"
#include "trace/trace.hpp"

namespace canu {

enum class IndexScheme {
  kModulo,
  kXor,
  kOddMultiplier,
  kPrimeModulo,
  kGivargis,
  kGivargisXor,
  kPatelOptimal,
};

/// All schemes, in the order the paper's figures list them.
constexpr IndexScheme kAllIndexSchemes[] = {
    IndexScheme::kModulo,       IndexScheme::kXor,
    IndexScheme::kOddMultiplier, IndexScheme::kPrimeModulo,
    IndexScheme::kGivargis,     IndexScheme::kGivargisXor,
    IndexScheme::kPatelOptimal,
};

/// Stable display name of a scheme ("modulo", "xor", ...).
std::string index_scheme_name(IndexScheme scheme);

/// Parse a display name back to a scheme; throws canu::Error on unknown name.
IndexScheme parse_index_scheme(const std::string& name);

/// True for schemes that require a profiling trace.
bool scheme_needs_profile(IndexScheme scheme) noexcept;

struct IndexFactoryOptions {
  std::uint64_t odd_multiplier = 21;   ///< for kOddMultiplier
  unsigned patel_candidate_window = 12;
};

/// Shared derived state of one profiling trace. Every trained scheme built
/// for the same workload needs the same expensive preprocessing (today: the
/// sorted unique-address set Givargis' analysis is defined over), so the
/// evaluator builds one ProfileContext per workload and hands it to every
/// make_index_function call instead of letting each scheme recompute it.
///
/// Lazy members are computed on first use; a context is meant to be used
/// from one thread (the evaluator gives each workload task its own).
class ProfileContext {
 public:
  explicit ProfileContext(const Trace& profile) : profile_(&profile) {}

  const Trace& trace() const noexcept { return *profile_; }

  /// Sorted unique addresses of the profile, computed once and cached.
  std::span<const std::uint64_t> unique_addrs() const;

 private:
  const Trace* profile_;
  mutable std::optional<std::vector<std::uint64_t>> unique_;
};

/// Build an index function for `scheme` over a cache with `sets` sets and
/// 2^offset_bits-byte lines. `profile` must be provided (non-null, non-empty)
/// for trained schemes and is ignored otherwise.
IndexFunctionPtr make_index_function(IndexScheme scheme, std::uint64_t sets,
                                     unsigned offset_bits,
                                     const Trace* profile = nullptr,
                                     const IndexFactoryOptions& opt = {});

/// Same, with trained schemes drawing their profiling inputs from a shared
/// ProfileContext (null for untrained-only scheme sets).
IndexFunctionPtr make_index_function(IndexScheme scheme, std::uint64_t sets,
                                     unsigned offset_bits,
                                     const ProfileContext* profile,
                                     const IndexFactoryOptions& opt = {});

/// Disambiguate literal-nullptr calls between the two pointer overloads.
inline IndexFunctionPtr make_index_function(IndexScheme scheme,
                                            std::uint64_t sets,
                                            unsigned offset_bits,
                                            std::nullptr_t,
                                            const IndexFactoryOptions& opt = {}) {
  return make_index_function(scheme, sets, offset_bits,
                             static_cast<const ProfileContext*>(nullptr), opt);
}

}  // namespace canu
