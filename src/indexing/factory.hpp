// Factory for index functions, keyed by scheme kind. Used by the Evaluator
// and the figure benches to construct schemes uniformly; trained schemes
// (Givargis, Givargis-XOR, Patel) take a profiling trace, mirroring the
// paper's offline-profiling model (Figure 5).
#pragma once

#include <optional>
#include <string>

#include "indexing/index_function.hpp"
#include "trace/trace.hpp"

namespace canu {

enum class IndexScheme {
  kModulo,
  kXor,
  kOddMultiplier,
  kPrimeModulo,
  kGivargis,
  kGivargisXor,
  kPatelOptimal,
};

/// All schemes, in the order the paper's figures list them.
constexpr IndexScheme kAllIndexSchemes[] = {
    IndexScheme::kModulo,       IndexScheme::kXor,
    IndexScheme::kOddMultiplier, IndexScheme::kPrimeModulo,
    IndexScheme::kGivargis,     IndexScheme::kGivargisXor,
    IndexScheme::kPatelOptimal,
};

/// Stable display name of a scheme ("modulo", "xor", ...).
std::string index_scheme_name(IndexScheme scheme);

/// Parse a display name back to a scheme; throws canu::Error on unknown name.
IndexScheme parse_index_scheme(const std::string& name);

/// True for schemes that require a profiling trace.
bool scheme_needs_profile(IndexScheme scheme) noexcept;

struct IndexFactoryOptions {
  std::uint64_t odd_multiplier = 21;   ///< for kOddMultiplier
  unsigned patel_candidate_window = 12;
};

/// Build an index function for `scheme` over a cache with `sets` sets and
/// 2^offset_bits-byte lines. `profile` must be provided (non-null, non-empty)
/// for trained schemes and is ignored otherwise.
IndexFunctionPtr make_index_function(IndexScheme scheme, std::uint64_t sets,
                                     unsigned offset_bits,
                                     const Trace* profile = nullptr,
                                     const IndexFactoryOptions& opt = {});

}  // namespace canu
