// Exclusive-OR hashing (paper §II.D, eq. (5); Kharbutli et al. HPCA'04):
//     index = (t XOR I) mod s
// where I is the traditional index field and t is the low `m` bits of the
// tag (the number of tag bits used equals the number of index bits).
#pragma once

#include "indexing/index_function.hpp"

namespace canu {

class XorIndex final : public IndexFunction {
 public:
  XorIndex(std::uint64_t sets, unsigned offset_bits);

  std::uint64_t index(std::uint64_t addr) const noexcept override;
  std::uint64_t sets() const noexcept override { return sets_; }
  std::string name() const override { return "xor"; }

 private:
  std::uint64_t sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
};

}  // namespace canu
