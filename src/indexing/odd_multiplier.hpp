// Odd-multiplier displacement hashing (paper §II.C, eq. (4); based on
// Kharbutli et al. and Raghavan–Hayes RANDOM-H):
//     index = (p * T + I) mod s
// where T is the tag, I the traditional index field, s the set count and p an
// odd multiplier. The paper's recommended multipliers are 9, 21, 31 and 61.
#pragma once

#include <array>

#include "indexing/index_function.hpp"

namespace canu {

class OddMultiplierIndex final : public IndexFunction {
 public:
  /// Multipliers recommended by the original authors (paper §II.C).
  static constexpr std::array<std::uint64_t, 4> kRecommendedMultipliers = {
      9, 21, 31, 61};

  OddMultiplierIndex(std::uint64_t sets, unsigned offset_bits,
                     std::uint64_t multiplier = 21);

  std::uint64_t index(std::uint64_t addr) const noexcept override;
  std::uint64_t sets() const noexcept override { return sets_; }
  std::string name() const override;

  std::uint64_t multiplier() const noexcept { return multiplier_; }

 private:
  std::uint64_t sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
  std::uint64_t multiplier_;
};

}  // namespace canu
