#include "indexing/prime_modulo.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"
#include "util/prime.hpp"

namespace canu {

PrimeModuloIndex::PrimeModuloIndex(std::uint64_t physical_sets,
                                   unsigned offset_bits)
    : physical_sets_(physical_sets),
      prime_(largest_prime_le(physical_sets)),
      offset_bits_(offset_bits) {
  CANU_CHECK_MSG(physical_sets >= 2, "need at least 2 sets");
}

std::uint64_t PrimeModuloIndex::index(std::uint64_t addr) const noexcept {
  return (addr >> offset_bits_) % prime_;
}

}  // namespace canu
