#include "indexing/xor_index.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

XorIndex::XorIndex(std::uint64_t sets, unsigned offset_bits)
    : sets_(sets), offset_bits_(offset_bits), index_bits_(log2_exact(sets)) {
  CANU_CHECK_MSG(is_pow2(sets), "set count must be a power of two: " << sets);
}

std::uint64_t XorIndex::index(std::uint64_t addr) const noexcept {
  const std::uint64_t idx = bit_field(addr, offset_bits_, index_bits_);
  const std::uint64_t tag = bit_field(addr, offset_bits_ + index_bits_,
                                      index_bits_);
  return (idx ^ tag) & (sets_ - 1);
}

}  // namespace canu
