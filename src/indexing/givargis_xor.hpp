// Givargis-XOR hybrid (paper §II.E, proposed by the paper's authors):
// select m high-quality, low-correlation *tag* bits with Givargis' analysis,
// then XOR them with the traditional index bits:
//     index = (givargis_tag_bits(addr) XOR I) mod s
#pragma once

#include <span>
#include <vector>

#include "indexing/givargis.hpp"
#include "indexing/index_function.hpp"
#include "trace/trace.hpp"

namespace canu {

class GivargisXorIndex final : public IndexFunction {
 public:
  /// Train on a profiling trace; candidate bits are restricted to the tag
  /// region (above offset+index bits), per the scheme's definition.
  GivargisXorIndex(const Trace& profile, std::uint64_t sets,
                   unsigned offset_bits,
                   GivargisOptions opt = GivargisOptions());

  /// Train on a precomputed unique-address set (shared ProfileContext).
  GivargisXorIndex(std::span<const std::uint64_t> unique_addrs,
                   std::uint64_t sets, unsigned offset_bits,
                   GivargisOptions opt = GivargisOptions());

  /// Restore a previously trained function from its persisted tag-bit
  /// positions (indexing/trained_store.hpp); no analysis is run.
  GivargisXorIndex(std::vector<unsigned> selected_tag_bits,
                   std::uint64_t sets, unsigned offset_bits);

  std::uint64_t index(std::uint64_t addr) const noexcept override;
  std::uint64_t sets() const noexcept override { return sets_; }
  std::string name() const override { return "givargis_xor"; }

  /// Tag-bit positions XOR-ed into the index (LSB first).
  const std::vector<unsigned>& selected_tag_bits() const noexcept {
    return selected_tag_bits_;
  }

 private:
  std::uint64_t sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
  std::vector<unsigned> selected_tag_bits_;
};

}  // namespace canu
