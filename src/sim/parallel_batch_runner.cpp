#include "sim/parallel_batch_runner.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace canu {

ParallelBatchRunner::ParallelBatchRunner(RunConfig config, ThreadPool* pool)
    : inner_(std::move(config)), pool_(pool) {}

ParallelBatchRunner::~ParallelBatchRunner() {
  // TaskGroup's destructor waits without throwing; replay exceptions are
  // only observable through drain()/results().
  in_flight_.reset();
}

std::size_t ParallelBatchRunner::add(CacheModel& l1) {
  drain();
  return inner_.add(l1);
}

void ParallelBatchRunner::launch(std::span<const MemRef> refs) {
  // One contiguous shard per task, at most one task per worker: with more
  // pipelines than workers, neighbouring pipelines share a shard so each
  // task stays coarse.
  const std::size_t pipelines = inner_.pipeline_count();
  const std::size_t shards =
      std::min<std::size_t>(std::max(1u, pool_->size()), pipelines);
  const bool timed = obs::metrics_on();
  if (timed) {
    obs::count(obs::Counter::kChunksConsumed);
    shard_end_ns_.assign(shards, 0);
  }
  in_flight_ = std::make_unique<TaskGroup>(pool_);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t first = s * pipelines / shards;
    const std::size_t last = (s + 1) * pipelines / shards;
    in_flight_->run([this, refs, first, last, s, timed] {
      inner_.feed_range(refs, first, last);
      // Each task writes only its own slot; the TaskGroup wait in drain()
      // publishes the values to the producer thread.
      if (timed) shard_end_ns_[s] = obs::now_ns();
    });
  }
}

void ParallelBatchRunner::feed(std::span<const MemRef> refs) {
  if (cancel_ != nullptr) cancel_->check();
  if (pool_ == nullptr || inner_.pipeline_count() <= 1) {
    drain();
    inner_.feed(refs);
    return;
  }
  drain();
  launch(refs);
  drain();
}

void ParallelBatchRunner::feed_async(std::span<const MemRef> refs) {
  if (cancel_ != nullptr) cancel_->check();
  obs::count(obs::Counter::kChunksProduced);
  if (pool_ == nullptr || inner_.pipeline_count() <= 1) {
    inner_.feed(refs);
    return;
  }
  // Copy into the slot the in-flight chunk is NOT using: the copy of chunk
  // k+1 overlaps the replay of chunk k. Only then wait for chunk k — the
  // per-pipeline order barrier — and launch chunk k+1.
  std::vector<MemRef>& slot = slots_[next_slot_];
  next_slot_ ^= 1u;
  slot.assign(refs.begin(), refs.end());
  if (obs::metrics_on() && in_flight_ != nullptr) {
    // Attribute this handoff to one side of the double buffer: if the last
    // shard was still replaying when the producer arrived, the producer
    // stalled on a full buffer until it finished; otherwise the replay side
    // sat idle (buffer empty) from its end timestamp until now.
    const std::uint64_t arrive = obs::now_ns();
    drain();
    std::uint64_t replay_end = 0;
    for (const std::uint64_t e : shard_end_ns_)
      replay_end = std::max(replay_end, e);
    if (replay_end > arrive) {
      obs::count(obs::Counter::kBufferFullStallNs, replay_end - arrive);
    } else if (replay_end != 0) {
      obs::count(obs::Counter::kBufferEmptyStallNs, arrive - replay_end);
    }
  } else {
    drain();
  }
  launch(slot);
}

void ParallelBatchRunner::drain() {
  if (in_flight_) {
    // Clear the handle before wait() so a rethrown replay error leaves the
    // runner drained rather than permanently poisoned.
    std::unique_ptr<TaskGroup> group = std::move(in_flight_);
    group->wait();
  }
}

HierarchyResult ParallelBatchRunner::snapshot(std::size_t i) {
  drain();
  return inner_.snapshot(i);
}

RunResult ParallelBatchRunner::result(std::size_t i,
                                      const std::string& workload) {
  drain();
  return inner_.result(i, workload);
}

std::vector<RunResult> ParallelBatchRunner::results(
    const std::string& workload) {
  drain();
  return inner_.results(workload);
}

void ParallelBatchRunner::reset() {
  drain();
  inner_.reset();
}

ChunkingSink ParallelBatchRunner::make_sink(std::size_t chunk_refs) {
  return ChunkingSink(
      [this](std::span<const MemRef> refs) { feed_async(refs); }, chunk_refs);
}

std::vector<RunResult> run_batch(ParallelBatchRunner& runner,
                                 TraceSource& source) {
  for (std::span<const MemRef> chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    runner.feed_async(chunk);
  }
  return runner.results(source.name());
}

}  // namespace canu
