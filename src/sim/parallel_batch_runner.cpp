#include "sim/parallel_batch_runner.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace canu {

ParallelBatchRunner::ParallelBatchRunner(RunConfig config, ThreadPool* pool)
    : inner_(std::move(config)), pool_(pool) {}

ParallelBatchRunner::~ParallelBatchRunner() {
  // TaskGroup's destructor waits without throwing; replay exceptions are
  // only observable through drain()/results().
  in_flight_.reset();
}

std::size_t ParallelBatchRunner::add(CacheModel& l1) {
  drain();
  return inner_.add(l1);
}

void ParallelBatchRunner::launch(std::span<const MemRef> refs) {
  // One contiguous shard per task, at most one task per worker: with more
  // pipelines than workers, neighbouring pipelines share a shard so each
  // task stays coarse.
  const std::size_t pipelines = inner_.pipeline_count();
  const std::size_t shards =
      std::min<std::size_t>(std::max(1u, pool_->size()), pipelines);
  in_flight_ = std::make_unique<TaskGroup>(pool_);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t first = s * pipelines / shards;
    const std::size_t last = (s + 1) * pipelines / shards;
    in_flight_->run(
        [this, refs, first, last] { inner_.feed_range(refs, first, last); });
  }
}

void ParallelBatchRunner::feed(std::span<const MemRef> refs) {
  if (pool_ == nullptr || inner_.pipeline_count() <= 1) {
    drain();
    inner_.feed(refs);
    return;
  }
  drain();
  launch(refs);
  drain();
}

void ParallelBatchRunner::feed_async(std::span<const MemRef> refs) {
  if (pool_ == nullptr || inner_.pipeline_count() <= 1) {
    inner_.feed(refs);
    return;
  }
  // Copy into the slot the in-flight chunk is NOT using: the copy of chunk
  // k+1 overlaps the replay of chunk k. Only then wait for chunk k — the
  // per-pipeline order barrier — and launch chunk k+1.
  std::vector<MemRef>& slot = slots_[next_slot_];
  next_slot_ ^= 1u;
  slot.assign(refs.begin(), refs.end());
  drain();
  launch(slot);
}

void ParallelBatchRunner::drain() {
  if (in_flight_) {
    // Clear the handle before wait() so a rethrown replay error leaves the
    // runner drained rather than permanently poisoned.
    std::unique_ptr<TaskGroup> group = std::move(in_flight_);
    group->wait();
  }
}

RunResult ParallelBatchRunner::result(std::size_t i,
                                      const std::string& workload) {
  drain();
  return inner_.result(i, workload);
}

std::vector<RunResult> ParallelBatchRunner::results(
    const std::string& workload) {
  drain();
  return inner_.results(workload);
}

void ParallelBatchRunner::reset() {
  drain();
  inner_.reset();
}

ChunkingSink ParallelBatchRunner::make_sink(std::size_t chunk_refs) {
  return ChunkingSink(
      [this](std::span<const MemRef> refs) { feed_async(refs); }, chunk_refs);
}

std::vector<RunResult> run_batch(ParallelBatchRunner& runner,
                                 TraceSource& source) {
  for (std::span<const MemRef> chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    runner.feed_async(chunk);
  }
  return runner.results(source.name());
}

}  // namespace canu
