// Trace runner: drives a trace through an L1 model + unified L2 hierarchy
// and packages everything the figure benches need — miss rates, the
// scheme-appropriate AMAT, and the per-set uniformity analysis.
#pragma once

#include <string>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "stats/uniformity.hpp"
#include "trace/trace.hpp"

namespace canu {

struct RunConfig {
  CacheGeometry l2_geometry = CacheGeometry::paper_l2();
  TimingModel timing;
};

/// Provenance of a result produced by sampled-interval replay
/// (sim/sampled_replay.hpp). Default-constructed = exact replay.
struct SampleInfo {
  bool sampled = false;
  std::size_t clusters = 0;
  std::size_t intervals_total = 0;
  std::size_t intervals_fed = 0;       ///< warm-up + measured
  std::size_t intervals_measured = 0;  ///< one per non-empty cluster
  std::uint64_t refs_total = 0;
  std::uint64_t refs_fed = 0;
  /// 95% confidence half-widths from the between-cluster variance of the
  /// per-representative metrics (conservative; DESIGN.md §14).
  double miss_rate_ci95 = 0;
  double amat_ci95 = 0;
  /// Human-readable annotation, e.g. why sampling fell back to exact.
  std::string note;
};

struct RunResult {
  std::string workload;
  std::string scheme;       ///< L1 model name
  CacheStats l1;
  CacheStats l2;
  double miss_penalty = 0;  ///< derived from L2 behaviour (sim/amat.hpp)
  double amat = 0;          ///< scheme-appropriate analytic AMAT
  double measured_amat = 0; ///< cycle-accounting cross-check
  UniformityReport uniformity;
  SampleInfo sample;        ///< sampled-replay provenance (default: exact)

  double miss_rate() const noexcept { return l1.miss_rate(); }
};

/// Compute the analytic AMAT for `model` given a miss penalty, dispatching
/// to the paper's formula (8) for the adaptive cache, formula (9) for the
/// column-associative cache, and the conventional formula otherwise (the
/// victim cache reuses the column formula shape: swap hits cost 2 cycles).
double scheme_amat(const CacheModel& model, double miss_penalty,
                   const TimingModel& timing = TimingModel());

/// scheme_amat with an explicit miss rate instead of the model's cumulative
/// one — the sampled-replay path evaluates the same formula at the
/// extrapolated miss rate (hit/miss split fractions still come from the
/// model's accumulated terms).
double scheme_amat_at(const CacheModel& model, double miss_rate,
                      double miss_penalty,
                      const TimingModel& timing = TimingModel());

/// Run `trace` through `l1` backed by a fresh L2; fills every RunResult
/// field. The L1 is flushed first, so results are independent of prior runs.
RunResult run_trace(CacheModel& l1, const Trace& trace,
                    const RunConfig& config = RunConfig());

}  // namespace canu
