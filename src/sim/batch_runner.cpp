#include "sim/batch_runner.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sim/amat.hpp"
#include "util/error.hpp"

namespace canu {

namespace {

/// Block size of the planned kernel: (set, line) plans are derived for this
/// many references at a time, small enough that the two plan buffers
/// (2 × 8 B × 2048 = 32 KB) stay L1/L2-resident while every member
/// configuration consumes them.
constexpr std::size_t kPlanBlockRefs = 2048;

}  // namespace

BatchRunner::BatchRunner(RunConfig config) : config_(std::move(config)) {}

BatchRunner::~BatchRunner() = default;

std::size_t BatchRunner::add(CacheModel& l1) {
  l1.flush();
  Pipeline p;
  p.l1 = &l1;
  p.hierarchy = std::make_unique<Hierarchy>(l1, config_.l2_geometry,
                                            config_.timing);
  // Plannable organization? Join (or open) the access-plan class of its
  // exact index-function object. Models that each own a private index
  // function land in singleton classes and keep the classic replay path;
  // only deliberately shared functions (the grid builder's per-
  // (scheme, sets, line) classes) fan out one derivation to many members.
  p.planned = dynamic_cast<SetAssocCache*>(&l1);
  if (p.planned != nullptr) {
    const IndexFunction* index = &p.planned->index_function();
    const unsigned offset_bits = p.planned->geometry().offset_bits();
    for (std::size_t c = 0; c < plan_classes_.size(); ++c) {
      if (plan_classes_[c].index == index &&
          plan_classes_[c].offset_bits == offset_bits) {
        p.plan_class = c;
        break;
      }
    }
    if (p.plan_class == kNoPlanClass) {
      plan_classes_.push_back(PlanClass{index, offset_bits, 0});
      p.plan_class = plan_classes_.size() - 1;
    }
    ++plan_classes_[p.plan_class].members;
    // A class "forms" when it gains its second member — that is the moment
    // one derivation starts serving many configurations (singleton classes
    // replay classically and share nothing).
    if (plan_classes_[p.plan_class].members == 2) {
      obs::count(obs::Counter::kPlanClassesFormed);
    }
  }
  pipelines_.push_back(std::move(p));
  return pipelines_.size() - 1;
}

void BatchRunner::feed(std::span<const MemRef> refs) {
  obs::count(obs::Counter::kChunksConsumed);
  feed_range(refs, 0, pipelines_.size());
}

void BatchRunner::replay_planned(std::span<const MemRef> refs,
                                 std::span<const std::size_t> members,
                                 const PlanClass& cls) {
  const IndexFunction& index = *cls.index;
  const unsigned offset_bits = cls.offset_bits;
  std::uint64_t set_buf[kPlanBlockRefs];
  std::uint64_t line_buf[kPlanBlockRefs];
  for (std::size_t start = 0; start < refs.size(); start += kPlanBlockRefs) {
    const std::size_t n = std::min(kPlanBlockRefs, refs.size() - start);
    const MemRef* block = refs.data() + start;
    // Shared derivation: set index and line address once per reference,
    // not once per reference per configuration.
    for (std::size_t i = 0; i < n; ++i) {
      set_buf[i] = index.index(block[i].addr);
      line_buf[i] = block[i].addr >> offset_bits;
    }
    for (const std::size_t m : members) {
      if (cancel_ != nullptr) cancel_->check();
      SetAssocCache& l1 = *pipelines_[m].planned;
      Hierarchy& h = *pipelines_[m].hierarchy;
      for (std::size_t i = 0; i < n; ++i) {
        h.finish_access(l1.access_preindexed(set_buf[i], line_buf[i],
                                             block[i].type),
                        block[i].addr, block[i].type);
      }
    }
  }
}

void BatchRunner::feed_range(std::span<const MemRef> refs, std::size_t first,
                             std::size_t last) {
  CANU_CHECK_MSG(first <= last && last <= pipelines_.size(),
                 "batch pipeline range [" << first << ", " << last
                                          << ") out of bounds");
  obs::Span span("replay", "replay chunk", "refs", refs.size());
  const std::uint64_t t0 = obs::metrics_on() ? obs::now_ns() : 0;
  // Pipelines outer, references inner: the chunk stays resident in the
  // host cache while every scheme consumes it. Same-class pipelines within
  // the range are lifted into one planned replay; grouping never crosses
  // the [first, last) shard boundary, so concurrent shards stay disjoint.
  std::vector<std::uint8_t> grouped(last - first, 0);
  std::vector<std::size_t> members;
  for (std::size_t i = first; i < last; ++i) {
    if (grouped[i - first]) continue;
    if (cancel_ != nullptr) cancel_->check();
    Pipeline& p = pipelines_[i];
    if (p.plan_class != kNoPlanClass &&
        plan_classes_[p.plan_class].members > 1) {
      members.clear();
      for (std::size_t j = i; j < last; ++j) {
        if (pipelines_[j].plan_class == p.plan_class) {
          members.push_back(j);
          grouped[j - first] = 1;
        }
      }
      if (members.size() > 1) {
        replay_planned(refs, members, plan_classes_[p.plan_class]);
        continue;
      }
      // Lone member within this shard: the classic path below is cheaper
      // than staging plan buffers for a single consumer.
    }
    grouped[i - first] = 1;
    Hierarchy& h = *p.hierarchy;
    for (const MemRef& r : refs) h.access(r.addr, r.type);
  }
  if (obs::metrics_on()) {
    obs::count(obs::Counter::kChunkReplays);
    obs::observe(obs::Hist::kChunkReplayNs, obs::now_ns() - t0);
  }
}

RunResult BatchRunner::result(std::size_t i,
                              const std::string& workload) const {
  CANU_CHECK_MSG(i < pipelines_.size(),
                 "batch pipeline index out of range: " << i);
  const Pipeline& p = pipelines_[i];
  const HierarchyResult hres = p.hierarchy->result();

  RunResult result;
  result.workload = workload;
  result.scheme = p.l1->name();
  result.l1 = hres.l1;
  result.l2 = hres.l2;
  result.miss_penalty = miss_penalty_from_l2(hres.l2, config_.timing);
  result.amat = scheme_amat(*p.l1, result.miss_penalty, config_.timing);
  result.measured_amat = hres.measured_amat();
  result.uniformity = analyse_uniformity(p.l1->set_stats());
  return result;
}

HierarchyResult BatchRunner::snapshot(std::size_t i) const {
  CANU_CHECK_MSG(i < pipelines_.size(),
                 "batch pipeline index out of range: " << i);
  return pipelines_[i].hierarchy->result();
}

CacheModel& BatchRunner::model(std::size_t i) const {
  CANU_CHECK_MSG(i < pipelines_.size(),
                 "batch pipeline index out of range: " << i);
  return *pipelines_[i].l1;
}

std::vector<RunResult> BatchRunner::results(const std::string& workload) const {
  std::vector<RunResult> out;
  out.reserve(pipelines_.size());
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    out.push_back(result(i, workload));
  }
  return out;
}

void BatchRunner::reset() {
  for (Pipeline& p : pipelines_) p.hierarchy->flush();
}

ChunkingSink BatchRunner::make_sink(std::size_t chunk_refs) {
  return ChunkingSink(
      [this](std::span<const MemRef> refs) { feed(refs); }, chunk_refs);
}

std::vector<RunResult> run_batch(BatchRunner& runner, TraceSource& source) {
  for (std::span<const MemRef> chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    runner.feed(chunk);
  }
  return runner.results(source.name());
}

}  // namespace canu
