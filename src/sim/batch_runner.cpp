#include "sim/batch_runner.hpp"

#include "obs/obs.hpp"
#include "sim/amat.hpp"
#include "util/error.hpp"

namespace canu {

BatchRunner::BatchRunner(RunConfig config) : config_(std::move(config)) {}

BatchRunner::~BatchRunner() = default;

std::size_t BatchRunner::add(CacheModel& l1) {
  l1.flush();
  Pipeline p;
  p.l1 = &l1;
  p.hierarchy = std::make_unique<Hierarchy>(l1, config_.l2_geometry,
                                            config_.timing);
  pipelines_.push_back(std::move(p));
  return pipelines_.size() - 1;
}

void BatchRunner::feed(std::span<const MemRef> refs) {
  obs::count(obs::Counter::kChunksConsumed);
  feed_range(refs, 0, pipelines_.size());
}

void BatchRunner::feed_range(std::span<const MemRef> refs, std::size_t first,
                             std::size_t last) {
  CANU_CHECK_MSG(first <= last && last <= pipelines_.size(),
                 "batch pipeline range [" << first << ", " << last
                                          << ") out of bounds");
  obs::Span span("replay", "replay chunk", "refs", refs.size());
  const std::uint64_t t0 = obs::metrics_on() ? obs::now_ns() : 0;
  // Pipelines outer, references inner: the chunk stays resident in the
  // host cache while every scheme consumes it.
  for (std::size_t i = first; i < last; ++i) {
    Hierarchy& h = *pipelines_[i].hierarchy;
    for (const MemRef& r : refs) h.access(r.addr, r.type);
  }
  if (obs::metrics_on()) {
    obs::count(obs::Counter::kChunkReplays);
    obs::observe(obs::Hist::kChunkReplayNs, obs::now_ns() - t0);
  }
}

RunResult BatchRunner::result(std::size_t i,
                              const std::string& workload) const {
  CANU_CHECK_MSG(i < pipelines_.size(),
                 "batch pipeline index out of range: " << i);
  const Pipeline& p = pipelines_[i];
  const HierarchyResult hres = p.hierarchy->result();

  RunResult result;
  result.workload = workload;
  result.scheme = p.l1->name();
  result.l1 = hres.l1;
  result.l2 = hres.l2;
  result.miss_penalty = miss_penalty_from_l2(hres.l2, config_.timing);
  result.amat = scheme_amat(*p.l1, result.miss_penalty, config_.timing);
  result.measured_amat = hres.measured_amat();
  result.uniformity = analyse_uniformity(p.l1->set_stats());
  return result;
}

std::vector<RunResult> BatchRunner::results(const std::string& workload) const {
  std::vector<RunResult> out;
  out.reserve(pipelines_.size());
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    out.push_back(result(i, workload));
  }
  return out;
}

void BatchRunner::reset() {
  for (Pipeline& p : pipelines_) p.hierarchy->flush();
}

ChunkingSink BatchRunner::make_sink(std::size_t chunk_refs) {
  return ChunkingSink(
      [this](std::span<const MemRef> refs) { feed(refs); }, chunk_refs);
}

std::vector<RunResult> run_batch(BatchRunner& runner, TraceSource& source) {
  for (std::span<const MemRef> chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    runner.feed(chunk);
  }
  return runner.results(source.name());
}

}  // namespace canu
