#include "sim/sampled_replay.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "sim/amat.hpp"
#include "util/error.hpp"

namespace canu {

IntervalReader::~IntervalReader() = default;

MemoryIntervalReader::MemoryIntervalReader(std::span<const MemRef> refs,
                                           std::size_t interval_refs)
    : refs_(refs), interval_refs_(interval_refs) {
  CANU_CHECK_MSG(interval_refs_ > 0, "interval size must be positive");
  count_ = (refs_.size() + interval_refs_ - 1) / interval_refs_;
}

std::span<const MemRef> MemoryIntervalReader::read_interval(
    std::size_t index) {
  CANU_CHECK_MSG(index < count_, "interval index out of range: " << index);
  const std::size_t begin = index * interval_refs_;
  const std::size_t n = std::min(interval_refs_, refs_.size() - begin);
  return refs_.subspan(begin, n);
}

FileIntervalReader::FileIntervalReader(const std::string& path,
                                       const FeatureSet& features)
    : source_(path, static_cast<std::size_t>(features.interval_refs)),
      features_(&features) {
  CANU_CHECK_MSG(features.has_anchors(),
                 "feature set for '" << path << "' carries no seek anchors");
}

std::span<const MemRef> FileIntervalReader::read_interval(std::size_t index) {
  CANU_CHECK_MSG(index < features_->intervals.size(),
                 "interval index out of range: " << index);
  const IntervalFeatures& iv = features_->intervals[index];
  source_.seek_to(iv.anchor);
  // The source's chunk size equals the interval size, so one pull yields
  // the whole interval (the trailing interval is naturally short).
  const std::span<const MemRef> refs = source_.next_chunk();
  CANU_CHECK_MSG(refs.size() == iv.refs,
                 "interval " << index << " decoded " << refs.size()
                             << " refs, sidecar recorded " << iv.refs);
  return refs;
}

namespace {

/// Weighted accumulation of snapshot deltas (doubles: weights are cluster
/// populations, so counters scale beyond their u64 sources only at the
/// final rescale).
struct StatsAccum {
  double accesses = 0, hits = 0, misses = 0, primary_hits = 0,
         secondary_hits = 0, evictions = 0, swaps = 0, lookup_cycles = 0,
         write_accesses = 0, writebacks = 0;

  void add(const CacheStats& before, const CacheStats& after, double w) {
    const auto d = [w](std::uint64_t b, std::uint64_t a) {
      return w * static_cast<double>(a - b);
    };
    accesses += d(before.accesses, after.accesses);
    hits += d(before.hits, after.hits);
    misses += d(before.misses, after.misses);
    primary_hits += d(before.primary_hits, after.primary_hits);
    secondary_hits += d(before.secondary_hits, after.secondary_hits);
    evictions += d(before.evictions, after.evictions);
    swaps += d(before.swaps, after.swaps);
    lookup_cycles += d(before.lookup_cycles, after.lookup_cycles);
    write_accesses += d(before.write_accesses, after.write_accesses);
    writebacks += d(before.writebacks, after.writebacks);
  }

  /// Scale every counter by `r` and round into integer CacheStats.
  CacheStats to_stats(double r) const {
    const auto s = [r](double v) {
      return static_cast<std::uint64_t>(std::llround(std::max(0.0, v * r)));
    };
    CacheStats out;
    out.accesses = s(accesses);
    out.hits = s(hits);
    out.misses = s(misses);
    out.primary_hits = s(primary_hits);
    out.secondary_hits = s(secondary_hits);
    out.evictions = s(evictions);
    out.swaps = s(swaps);
    out.lookup_cycles = s(lookup_cycles);
    out.write_accesses = s(write_accesses);
    out.writebacks = s(writebacks);
    return out;
  }
};

/// Per-pipeline accumulation across measured intervals.
struct PipelineAccum {
  StatsAccum l1, l2;
  double cycles = 0;  ///< weighted Δtotal_cycles
  /// Per-representative observations for the CI math.
  std::vector<double> miss_rates;
  std::vector<double> amats;  ///< measured per-interval AMAT
  std::vector<double> weights;
};

/// Probe used to correct a pipeline, chosen by its L1 scheme name. Direct
/// schemes get the probe of their own index function; the trained Givargis
/// family maps to its nearest untrained relative (bit-selection ≈ modulo,
/// Givargis-XOR ≈ XOR); retention-enhanced extensions (victim/B-cache,
/// adaptive, column-associative) map to the victim probe, whose small
/// fully-associative buffer prices their softer cold-start penalty.
std::size_t probe_for_scheme(const std::string& scheme) {
  const auto starts = [](const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
  };
  if (starts(scheme, "b_cache")) {
    return static_cast<std::size_t>(ProbeKind::kBCache);
  }
  if (starts(scheme, "column_assoc")) {
    return static_cast<std::size_t>(ProbeKind::kColumnAssoc);
  }
  if (starts(scheme, "adaptive") || starts(scheme, "victim")) {
    return static_cast<std::size_t>(ProbeKind::kVictim);
  }
  std::string inner = scheme;
  const std::size_t lb = scheme.find('[');
  if (lb != std::string::npos) {
    const std::size_t rb = scheme.find(']', lb);
    inner = scheme.substr(lb + 1, rb == std::string::npos ? std::string::npos
                                                          : rb - lb - 1);
  }
  if (starts(inner, "givargis_xor")) return static_cast<std::size_t>(ProbeKind::kXor);
  if (starts(inner, "givargis")) return static_cast<std::size_t>(ProbeKind::kModulo);
  if (starts(inner, "xor")) return static_cast<std::size_t>(ProbeKind::kXor);
  if (starts(inner, "odd_multiplier")) {
    return static_cast<std::size_t>(ProbeKind::kOddMultiplier);
  }
  if (starts(inner, "prime_modulo")) {
    return static_cast<std::size_t>(ProbeKind::kPrimeModulo);
  }
  return static_cast<std::size_t>(ProbeKind::kModulo);
}

double weighted_ci95(const std::vector<double>& values,
                     const std::vector<double>& weights) {
  double wsum = 0, mean = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    wsum += weights[i];
    mean += weights[i] * values[i];
  }
  if (wsum <= 0 || values.size() < 2) return 0;
  mean /= wsum;
  // Weighted between-representative variance, used as a conservative
  // stand-in for every cluster's within variance (clustering exists to
  // make within-cluster spread SMALLER than this).
  double var = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - mean;
    var += weights[i] * d * d;
  }
  var /= wsum;
  // Stratified CI: 1.96 * sqrt(sum_c (w_c/W)^2 * s^2).
  double frac_sq = 0;
  for (const double w : weights) frac_sq += (w / wsum) * (w / wsum);
  return 1.96 * std::sqrt(var * frac_sq);
}

}  // namespace

std::vector<RunResult> run_sampled(ParallelBatchRunner& runner,
                                   IntervalReader& reader,
                                   const SamplePlan& plan,
                                   const std::string& workload) {
  CANU_CHECK_MSG(!plan.exact, "run_sampled called with an exact plan");
  CANU_CHECK_MSG(!plan.segments.empty(), "sample plan has no segments");
  const std::size_t pipelines = runner.pipeline_count();
  CANU_CHECK_MSG(pipelines > 0, "no pipelines registered");

  obs::Span span("replay", "sampled replay " + workload, "segments",
                 plan.segments.size());

  std::vector<PipelineAccum> accum(pipelines);
  std::vector<HierarchyResult> before(pipelines);
  std::size_t fed = 0, measured = 0;

  // Each segment replays from a flushed cache: warm-up intervals prime the
  // state, then the measured window's counter deltas are captured. The
  // flush makes every segment's measurement independent of segment order
  // and of which other segments run — stitched-together stale state
  // otherwise biases measured intervals in either direction (stale lines
  // serve "lucky" hits or force extra conflict evictions).
  //
  // Residual cold-start inflation (the warm-up is deliberately short) is
  // estimated per segment with the planner's probe cache: the same
  // direct-mapped probe is re-simulated from the flushed start, and its
  // excess misses over the sidecar-recorded warm value — compulsory misses
  // the flush manufactured — are subtracted from every scheme's measured
  // misses. Cold-start inflation is compulsory-miss driven, so one probe
  // estimate serves all schemes.
  // Each pipeline's correcting probe, chosen by L1 scheme name once.
  std::vector<std::size_t> pipeline_probe(pipelines);
  for (std::size_t p = 0; p < pipelines; ++p) {
    pipeline_probe[p] = probe_for_scheme(runner.model(p).name());
  }

  // Difference-estimator terms per probe: the plan's probe-projected
  // prediction (weighted warm probe misses over measured windows) versus
  // the known whole-trace probe totals. The per-ref difference is the
  // clustering's drift bias on that probe — the systematic error a finite
  // cluster count leaves even with perfect per-segment measurement — and
  // is subtracted from each matching scheme below (survey-sampling
  // difference estimation with the probes as auxiliary variables).
  std::array<double, kProbeCount> probe_pred_misses{};
  double weighted_window_refs = 0;
  ProbeBank probes;
  for (const SampleSegment& seg : plan.segments) {
    const std::size_t window_end = seg.rep_interval + seg.measure_intervals;
    CANU_CHECK_MSG(window_end <= reader.interval_count(),
                   "plan references interval " << (window_end - 1)
                                               << " beyond the trace");
    runner.reset();
    probes.reset();
    const auto probe_feed = [&](std::span<const MemRef> refs) {
      for (const MemRef& ref : refs) {
        probes.access(ref.addr >> plan.offset_bits);
      }
    };
    for (std::size_t i = seg.first_interval; i < seg.rep_interval; ++i) {
      const std::span<const MemRef> refs = reader.read_interval(i);
      probe_feed(refs);
      runner.feed(refs);
      ++fed;
    }
    for (std::size_t p = 0; p < pipelines; ++p) {
      before[p] = runner.snapshot(p);
    }
    probes.take();  // discard warm-up misses; window misses start here
    double window_refs = 0;
    for (std::size_t i = seg.rep_interval; i < window_end; ++i) {
      const std::span<const MemRef> refs = reader.read_interval(i);
      probe_feed(refs);
      window_refs += static_cast<double>(refs.size());
      runner.feed(refs);
      ++fed;
      ++measured;
    }
    const std::array<std::uint64_t, kProbeCount> cold = probes.take();
    // Per-probe cold-start inflation: the flush's manufactured compulsory
    // misses, priced with each scheme family's own probe.
    std::array<double, kProbeCount> bias_rate{};
    for (std::size_t q = 0; q < kProbeCount; ++q) {
      bias_rate[q] =
          window_refs > 0
              ? std::max(0.0, (static_cast<double>(cold[q]) -
                               seg.probe_warm_misses[q]) /
                                  window_refs)
              : 0.0;
      probe_pred_misses[q] += seg.weight * seg.probe_warm_misses[q];
    }
    weighted_window_refs += seg.weight * window_refs;
    for (std::size_t p = 0; p < pipelines; ++p) {
      const HierarchyResult after = runner.snapshot(p);
      PipelineAccum& a = accum[p];
      a.l1.add(before[p].l1, after.l1, seg.weight);
      a.l2.add(before[p].l2, after.l2, seg.weight);
      const double d_cycles = static_cast<double>(after.total_cycles -
                                                  before[p].total_cycles);
      a.cycles += seg.weight * d_cycles;
      const double d_acc = static_cast<double>(after.l1.accesses -
                                               before[p].l1.accesses);
      const double d_miss = static_cast<double>(after.l1.misses -
                                                before[p].l1.misses);
      const double corrected = std::clamp(
          d_miss - bias_rate[pipeline_probe[p]] * d_acc, 0.0, d_acc);
      a.l1.misses -= seg.weight * (d_miss - corrected);
      a.l1.hits += seg.weight * (d_miss - corrected);
      a.miss_rates.push_back(d_acc > 0 ? corrected / d_acc : 0.0);
      a.amats.push_back(d_acc > 0 ? d_cycles / d_acc : 0.0);
      a.weights.push_back(seg.weight);
    }
  }

  // Per-ref drift bias the clustering leaves on each probe; subtracting a
  // scheme's matching value makes the estimator exactly unbiased on that
  // probe's metric and removes the probe-correlated component of the
  // scheme's drift bias (slope-1 difference estimation).
  std::array<double, kProbeCount> drift_bias{};
  if (weighted_window_refs > 0 && plan.total_refs > 0) {
    for (std::size_t q = 0; q < kProbeCount; ++q) {
      drift_bias[q] = probe_pred_misses[q] / weighted_window_refs -
                      plan.probe_true_misses[q] /
                          static_cast<double>(plan.total_refs);
    }
  }

  std::vector<RunResult> results;
  results.reserve(pipelines);
  for (std::size_t p = 0; p < pipelines; ++p) {
    PipelineAccum& a = accum[p];
    // Ratio estimator: rescale so the estimated access count matches the
    // true trace length (weights count intervals; intervals differ in refs
    // only at the tail, so this is a small correction).
    const double r =
        a.l1.accesses > 0
            ? static_cast<double>(plan.total_refs) / a.l1.accesses
            : 0.0;

    RunResult res;
    res.workload = workload;
    res.scheme = runner.model(p).name();
    res.l1 = a.l1.to_stats(r);
    res.l2 = a.l2.to_stats(r);
    const double miss_rate = std::clamp(
        (a.l1.accesses > 0 ? a.l1.misses / a.l1.accesses : 0.0) -
            drift_bias[pipeline_probe[p]],
        0.0, 1.0);
    // Keep the headline ratio exact after integer rounding.
    if (res.l1.accesses > 0) {
      res.l1.misses = static_cast<std::uint64_t>(
          std::llround(miss_rate * static_cast<double>(res.l1.accesses)));
      res.l1.hits = res.l1.accesses - res.l1.misses;
    }
    res.miss_penalty =
        miss_penalty_from_l2(res.l2, runner.config().timing);
    res.amat = scheme_amat_at(runner.model(p), miss_rate, res.miss_penalty,
                              runner.config().timing);
    const double measured_amat =
        a.l1.accesses > 0 ? a.cycles / a.l1.accesses : 0.0;
    res.measured_amat = measured_amat;
    // Per-set distribution over everything the pipeline replayed (warm-up
    // included): sampled uniformity is indicative, not extrapolated.
    res.uniformity = analyse_uniformity(runner.model(p).set_stats());

    res.sample.sampled = true;
    res.sample.clusters = plan.clusters;
    res.sample.intervals_total = plan.total_intervals;
    res.sample.intervals_fed = fed;
    res.sample.intervals_measured = measured;
    res.sample.refs_total = plan.total_refs;
    res.sample.refs_fed = plan.fed_refs;
    res.sample.miss_rate_ci95 = weighted_ci95(a.miss_rates, a.weights);
    res.sample.amat_ci95 = weighted_ci95(a.amats, a.weights);
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace canu
