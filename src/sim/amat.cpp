#include "sim/amat.hpp"

namespace canu {

double amat_conventional(double miss_rate, double miss_penalty,
                         double hit_time) {
  return hit_time + miss_rate * miss_penalty;
}

double amat_adaptive(double fraction_direct_hits, double miss_rate,
                     double miss_penalty, const TimingModel& t) {
  return fraction_direct_hits * t.l1_hit_cycles +
         (1.0 - fraction_direct_hits) * t.out_hit_cycles +
         miss_rate * miss_penalty;
}

double amat_column_associative(double fraction_rehash_hits,
                               double fraction_rehash_misses,
                               double miss_rate, double miss_penalty,
                               const TimingModel& t) {
  return fraction_rehash_hits * t.rehash_hit_cycles +
         (1.0 - fraction_rehash_hits) * t.l1_hit_cycles +
         fraction_rehash_misses * miss_rate * (miss_penalty + 1.0) +
         (1.0 - fraction_rehash_misses) * miss_rate * miss_penalty;
}

double miss_penalty_from_l2(const CacheStats& l2, const TimingModel& t) {
  return static_cast<double>(t.l2_hit_cycles) +
         l2.miss_rate() * static_cast<double>(t.memory_cycles);
}

}  // namespace canu
