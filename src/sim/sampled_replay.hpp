// Sampled-interval replay: execute a SamplePlan (src/sample) on the batch
// engine and extrapolate full-trace metrics.
//
// The replay is one forward pass: segments arrive sorted by interval index,
// each contributes its warm-up intervals (replayed but unmeasured — they
// prime L1/L2 contents) followed by the measured representative interval.
// Around each measured interval the engine's per-pipeline hierarchy
// counters are snapshotted; the deltas, weighted by cluster population and
// rescaled so estimated L1 accesses match the true trace length (ratio
// estimator), become the extrapolated CacheStats. AMAT is re-evaluated at
// the extrapolated miss rate using each model's accumulated formula terms;
// confidence intervals come from the weighted between-representative
// variance of the per-interval metrics (conservative stand-in for the
// within-cluster variance a single representative cannot observe).
// DESIGN.md §14 has the full derivation.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sample/sample_plan.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "trace/chunk_features.hpp"
#include "trace/trace_io.hpp"

namespace canu {

/// Random access to the trace's sampling intervals. read_interval() spans
/// stay valid until the next call on the same reader. Plans are replayed in
/// ascending interval order, so implementations may assume mostly-forward
/// access.
class IntervalReader {
 public:
  virtual ~IntervalReader();
  virtual std::span<const MemRef> read_interval(std::size_t index) = 0;
  virtual std::size_t interval_count() const noexcept = 0;
};

/// Intervals sliced out of an in-memory reference array (borrowed).
class MemoryIntervalReader final : public IntervalReader {
 public:
  MemoryIntervalReader(std::span<const MemRef> refs, std::size_t interval_refs);

  std::span<const MemRef> read_interval(std::size_t index) override;
  std::size_t interval_count() const noexcept override { return count_; }

 private:
  std::span<const MemRef> refs_;
  std::size_t interval_refs_;
  std::size_t count_;
};

/// Intervals decoded from a cached trace file, seeking via the feature
/// sidecar's per-interval anchors so unselected intervals are never
/// decoded. The feature set must have been computed from this file
/// (FeatureSet::has_anchors()).
class FileIntervalReader final : public IntervalReader {
 public:
  FileIntervalReader(const std::string& path, const FeatureSet& features);

  std::span<const MemRef> read_interval(std::size_t index) override;
  std::size_t interval_count() const noexcept override {
    return features_->intervals.size();
  }

 private:
  TraceFileSource source_;
  const FeatureSet* features_;  ///< borrowed; outlives the reader
};

/// Execute `plan` against the runner's registered pipelines and return the
/// extrapolated per-pipeline results (add() order), each annotated with
/// SampleInfo. The runner must be freshly built/reset — sampled replay owns
/// the whole feeding sequence. Composes with --threads (feeding is
/// synchronous per interval; sharding stays bit-for-bit deterministic) and
/// with --grid (access-plan classes group exactly as in exact replay).
std::vector<RunResult> run_sampled(ParallelBatchRunner& runner,
                                   IntervalReader& reader,
                                   const SamplePlan& plan,
                                   const std::string& workload);

}  // namespace canu
