// ComparisonTable: the workloads × schemes result grid every figure bench
// prints — including the trailing "Average" row the paper's figures carry.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace canu {

class ComparisonTable {
 public:
  /// `value_label` names the metric (e.g. "% reduction in miss-rate").
  explicit ComparisonTable(std::string value_label);

  /// Record one cell; rows and columns are created on first use, in
  /// insertion order.
  void set(const std::string& row, const std::string& column, double value);

  std::optional<double> get(const std::string& row,
                            const std::string& column) const;

  /// Mean over rows that have a (finite) value in this column.
  double column_average(const std::string& column) const;

  const std::vector<std::string>& rows() const noexcept { return rows_; }
  const std::vector<std::string>& columns() const noexcept { return columns_; }
  const std::string& value_label() const noexcept { return value_label_; }

  /// Render as an aligned text table with an Average row appended.
  void print(std::ostream& os, int precision = 2) const;

  /// Write as CSV (same layout, unrounded values).
  void write_csv(std::ostream& os) const;

 private:
  std::string value_label_;
  std::vector<std::string> rows_;
  std::vector<std::string> columns_;
  // Presentation order lives in rows_/columns_; these index maps make
  // set() O(log n) instead of a linear membership scan per call.
  std::map<std::string, std::size_t> row_index_;
  std::map<std::string, std::size_t> column_index_;
  std::map<std::pair<std::string, std::string>, double> cells_;
};

}  // namespace canu
