// Average memory access time models (paper §IV.B, formulas (8) and (9)).
//
// Interpretation (paper §IV.B: "the hit-time is split into two fractions,
// one for direct hit to the cache and the other for hits in the
// OUT-directory"):
//   * FractionOfDirectHits / FractionOfRehashHits are fractions of *hits* —
//     they split the average hit time between primary and alternate
//     locations; misses contribute only through the MissPenalty terms;
//   * FractionOfRehashMisses is a fraction of *misses* (those that probed
//     the alternate location and therefore pay MissPenalty + 1).
#pragma once

#include "cache/cache_model.hpp"
#include "cache/config.hpp"

namespace canu {

/// Conventional cache: AMAT = hit_time + miss_rate * penalty.
double amat_conventional(double miss_rate, double miss_penalty,
                         double hit_time = 1.0);

/// Adaptive cache, formula (8):
/// AMAT = fDirect*1 + (1-fDirect)*3 + missRate*penalty,
/// with fDirect = primary hits / hits (hit-time split).
double amat_adaptive(double fraction_direct_hits, double miss_rate,
                     double miss_penalty, const TimingModel& t = TimingModel());

/// Column-associative cache, formula (9):
/// AMAT = fRehashHit*2 + (1-fRehashHit)*1
///      + fRehashMiss*missRate*(penalty+1) + (1-fRehashMiss)*missRate*penalty
/// with fRehashHit over hits and fRehashMiss over misses.
double amat_column_associative(double fraction_rehash_hits,
                               double fraction_rehash_misses,
                               double miss_rate, double miss_penalty,
                               const TimingModel& t = TimingModel());

/// Miss penalty implied by an L2's behaviour for this run:
/// L2 hit latency + L2 miss rate * memory latency.
double miss_penalty_from_l2(const CacheStats& l2,
                            const TimingModel& t = TimingModel());

}  // namespace canu
