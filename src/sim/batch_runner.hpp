// Batch simulation engine: replay one reference stream through N scheme
// pipelines in a single pass.
//
// The figure benches compare many L1 organizations over the same workload
// trace. Driving them one at a time re-reads (or regenerates) the trace once
// per scheme; the BatchRunner instead consumes the stream chunk by chunk and
// replays each chunk through every pipeline while it is still cache-resident
// — one generation, one sweep. Pipelines are fully independent (each has its
// own L1 model and its own L2 hierarchy), so per-scheme results are
// identical to running run_trace() per scheme; chunk boundaries cannot
// change any outcome.
//
// Config-grid replay (DESIGN.md §13): pipelines whose L1 is a SetAssocCache
// SHARING an IndexFunction object form an access-plan class. For such a
// class the kernel derives each reference's set index and line address once
// per block and fans the precomputed plan out to every member — the DEW-
// style shared tag derivation that makes a sets × ways × line × scheme grid
// cost roughly one run instead of N. Sharing is keyed on index-function
// object identity, so it engages exactly when the caller built the grid
// that way (core/evaluator.cpp) and never changes results: the planned
// entry (SetAssocCache::access_preindexed) is the body of access() with the
// derivation hoisted out.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/set_assoc_cache.hpp"
#include "sim/runner.hpp"
#include "trace/stream.hpp"
#include "util/cancel.hpp"

namespace canu {

class BatchRunner {
 public:
  explicit BatchRunner(RunConfig config = RunConfig());
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Register a scheme pipeline: borrows `l1` (the caller keeps it to
  /// inspect per-set stats, as with run_trace), flushes it, and backs it
  /// with a fresh L2 of the configured geometry. Returns the pipeline index
  /// used by result().
  std::size_t add(CacheModel& l1);

  std::size_t pipeline_count() const noexcept { return pipelines_.size(); }

  /// Cooperative cancellation: `token` (borrowed; null = none) is checked
  /// between pipelines within a chunk — between grid rows in the planned
  /// kernel — so a cancelled or expired request abandons the replay within
  /// one pipeline-chunk of work rather than one whole chunk × N pipelines.
  /// Results that DO complete are bit-for-bit unaffected by the token.
  void set_cancel(const CancelToken* token) noexcept { cancel_ = token; }

  /// Replay one chunk of references through every pipeline.
  void feed(std::span<const MemRef> refs);

  /// Replay one chunk through pipelines [first, last) only — the shard
  /// primitive of the parallel engine (sim/parallel_batch_runner.hpp).
  /// Pipelines share no mutable state, so disjoint ranges may be replayed
  /// concurrently; each pipeline must still see every chunk, in order.
  /// Access-plan classes are grouped within the range only, keeping shards
  /// independent.
  void feed_range(std::span<const MemRef> refs, std::size_t first,
                  std::size_t last);

  /// Package pipeline `i`'s accumulated state, exactly as run_trace() would
  /// for the same reference stream.
  RunResult result(std::size_t i, const std::string& workload) const;

  /// All pipeline results, in add() order.
  std::vector<RunResult> results(const std::string& workload) const;

  /// Cheap copy of pipeline `i`'s accumulated hierarchy counters (no
  /// uniformity analysis). Sampled replay (sim/sampled_replay.hpp) diffs
  /// snapshots around each measured interval.
  HierarchyResult snapshot(std::size_t i) const;

  /// Pipeline `i`'s L1 model (the caller's object, as passed to add()).
  CacheModel& model(std::size_t i) const;

  const RunConfig& config() const noexcept { return config_; }

  /// Flush every pipeline (L1 contents, L2, cycle counters) so the runner
  /// can be reused for the next workload.
  void reset();

  /// A sink that forwards whole chunks into feed(); flush() the returned
  /// sink after generation to deliver the buffered tail.
  ChunkingSink make_sink(std::size_t chunk_refs = kDefaultChunkRefs);

 private:
  static constexpr std::size_t kNoPlanClass =
      std::numeric_limits<std::size_t>::max();

  struct Pipeline {
    CacheModel* l1;
    std::unique_ptr<Hierarchy> hierarchy;
    /// Non-null when l1 is a SetAssocCache (the plannable organization).
    SetAssocCache* planned = nullptr;
    std::size_t plan_class = kNoPlanClass;
  };

  /// Pipelines sharing one set-index/line-address derivation: same
  /// IndexFunction OBJECT (pointer identity — the caller's statement that
  /// the mapping is literally the same function) and same offset width.
  struct PlanClass {
    const IndexFunction* index;
    unsigned offset_bits;
    std::size_t members = 0;
  };

  /// Replay `refs` through every member pipeline, deriving the per-
  /// reference (set, line address) plan once per block and fanning it out.
  void replay_planned(std::span<const MemRef> refs,
                      std::span<const std::size_t> members,
                      const PlanClass& cls);

  RunConfig config_;
  std::vector<Pipeline> pipelines_;
  std::vector<PlanClass> plan_classes_;
  const CancelToken* cancel_ = nullptr;
};

/// Pull `source` through `runner` chunk by chunk and return all pipeline
/// results (in add() order), labelled with the source's name.
std::vector<RunResult> run_batch(BatchRunner& runner, TraceSource& source);

}  // namespace canu
