#include "sim/comparison.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace canu {

ComparisonTable::ComparisonTable(std::string value_label)
    : value_label_(std::move(value_label)) {}

void ComparisonTable::set(const std::string& row, const std::string& column,
                          double value) {
  if (row_index_.emplace(row, rows_.size()).second) {
    rows_.push_back(row);
  }
  if (column_index_.emplace(column, columns_.size()).second) {
    columns_.push_back(column);
  }
  cells_[{row, column}] = value;
}

std::optional<double> ComparisonTable::get(const std::string& row,
                                           const std::string& column) const {
  auto it = cells_.find({row, column});
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

double ComparisonTable::column_average(const std::string& column) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const std::string& row : rows_) {
    const auto v = get(row, column);
    if (v && std::isfinite(*v)) {
      sum += *v;
      ++n;
    }
  }
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum / static_cast<double>(n);
}

void ComparisonTable::print(std::ostream& os, int precision) const {
  os << value_label_ << '\n';
  TextTable table;
  std::vector<std::string> header = {"benchmark"};
  header.insert(header.end(), columns_.begin(), columns_.end());
  table.set_header(std::move(header));
  for (const std::string& row : rows_) {
    std::vector<std::string> cells = {row};
    for (const std::string& col : columns_) {
      const auto v = get(row, col);
      cells.push_back(v ? TextTable::num(*v, precision) : "-");
    }
    table.add_row(std::move(cells));
  }
  std::vector<std::string> avg = {"Average"};
  for (const std::string& col : columns_) {
    avg.push_back(TextTable::num(column_average(col), precision));
  }
  table.add_row(std::move(avg));
  table.print(os);
}

void ComparisonTable::write_csv(std::ostream& os) const {
  CsvWriter csv(os);
  std::vector<std::string> header = {"benchmark"};
  header.insert(header.end(), columns_.begin(), columns_.end());
  csv.write_row(header);
  for (const std::string& row : rows_) {
    std::vector<std::string> cells = {row};
    for (const std::string& col : columns_) {
      const auto v = get(row, col);
      std::ostringstream num;
      if (v) num << *v;
      cells.push_back(num.str());
    }
    csv.write_row(cells);
  }
}

}  // namespace canu
