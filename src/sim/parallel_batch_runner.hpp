// Parallel sharded batch replay: the multi-threaded face of the batch
// simulation engine (sim/batch_runner.hpp).
//
// Two axes of overlap, both determinism-preserving (DESIGN.md §9):
//
//  * Shard parallelism. The registered scheme pipelines are split into
//    contiguous shards, one replay task per shard per chunk, executed on a
//    shared ThreadPool. Pipelines share no mutable state and every pipeline
//    consumes the identical chunk sequence in order, so results are
//    bit-for-bit identical to the serial BatchRunner for any thread count
//    or shard assignment.
//
//  * Generation/replay overlap. feed_async() copies the caller's chunk
//    into one of two slot buffers and returns as soon as the *previous*
//    chunk's shard tasks have finished — a bounded two-slot queue between
//    the producing thread (workload generator or trace-cache reader) and
//    the replay shards. While chunk k replays, the producer generates
//    chunk k+1 and the engine copies it into the free slot. At most one
//    chunk is in flight, which is exactly the per-pipeline ordering
//    constraint.
//
// With a null pool the runner degenerates to the serial BatchRunner paths
// (feed_async == feed, no copies, no tasks) — this is the `--threads 1`
// mode, bit-for-bit *and* code-path identical to PR 1's engine.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/batch_runner.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace canu {

class ParallelBatchRunner {
 public:
  /// `pool` is borrowed and may be shared with other runners (the
  /// Evaluator nests workload-level tasks and shard tasks on one pool);
  /// null selects the serial engine.
  explicit ParallelBatchRunner(RunConfig config = RunConfig(),
                               ThreadPool* pool = nullptr);

  /// Waits for any in-flight replay before destruction.
  ~ParallelBatchRunner();

  ParallelBatchRunner(const ParallelBatchRunner&) = delete;
  ParallelBatchRunner& operator=(const ParallelBatchRunner&) = delete;

  /// Register a scheme pipeline (see BatchRunner::add). Must not be called
  /// while a chunk is in flight.
  std::size_t add(CacheModel& l1);

  std::size_t pipeline_count() const noexcept {
    return inner_.pipeline_count();
  }

  /// Cooperative cancellation: `token` (borrowed; null = none) is checked
  /// at every chunk boundary AND, via the serial engine, between pipelines
  /// within each shard's replay (between grid rows in the planned kernel),
  /// so a cancelled or expired request abandons the replay within one
  /// pipeline-chunk of work — feed/feed_async/drain throw Cancelled and
  /// the runner stays drained. Never checked mid-pipeline: results that DO
  /// complete are bit-for-bit unaffected by the token.
  void set_cancel(const CancelToken* token) noexcept {
    cancel_ = token;
    inner_.set_cancel(token);
  }

  /// Replay one chunk through every pipeline, shards in parallel, and wait
  /// for completion. The span is only read during the call.
  void feed(std::span<const MemRef> refs);

  /// Double-buffered replay: copy `refs` into a slot buffer, wait for the
  /// previous chunk's shards, launch this chunk's shards, and return while
  /// they run. The caller may immediately reuse (or regenerate) the memory
  /// behind `refs`.
  void feed_async(std::span<const MemRef> refs);

  /// Wait for any in-flight chunk; rethrows the first replay exception.
  void drain();

  /// Pipeline results, exactly as the serial BatchRunner would produce
  /// (drains first, so they see every fed chunk).
  RunResult result(std::size_t i, const std::string& workload);
  std::vector<RunResult> results(const std::string& workload);

  /// Drain, then copy pipeline `i`'s accumulated hierarchy counters (see
  /// BatchRunner::snapshot).
  HierarchyResult snapshot(std::size_t i);

  /// Pipeline `i`'s L1 model (safe while no chunk is in flight).
  CacheModel& model(std::size_t i) const { return inner_.model(i); }

  const RunConfig& config() const noexcept { return inner_.config(); }

  /// Drain, then flush every pipeline for reuse on the next workload.
  void reset();

  /// A sink that forwards whole chunks into feed_async(); flush() the
  /// returned sink after generation, then collect results (which drains).
  ChunkingSink make_sink(std::size_t chunk_refs = kDefaultChunkRefs);

  /// The serial engine this runner wraps (tests compare against it).
  const BatchRunner& serial() const noexcept { return inner_; }

 private:
  void launch(std::span<const MemRef> refs);

  BatchRunner inner_;
  ThreadPool* pool_;
  const CancelToken* cancel_ = nullptr;
  std::array<std::vector<MemRef>, 2> slots_;
  unsigned next_slot_ = 0;
  std::unique_ptr<TaskGroup> in_flight_;
  /// Per-shard replay end timestamps for the in-flight chunk (observability
  /// only; one slot per task, written by the owning task, read after the
  /// TaskGroup wait — no concurrent access).
  std::vector<std::uint64_t> shard_end_ns_;
};

/// Pull `source` through `runner` chunk by chunk — each chunk is copied
/// and replayed while the source produces the next one — and return all
/// pipeline results (in add() order), labelled with the source's name.
std::vector<RunResult> run_batch(ParallelBatchRunner& runner,
                                 TraceSource& source);

}  // namespace canu
