#include "sim/runner.hpp"

#include "assoc/adaptive_cache.hpp"
#include "assoc/column_associative.hpp"
#include "assoc/partner_cache.hpp"
#include "cache/victim_cache.hpp"
#include "sim/amat.hpp"

namespace canu {

double scheme_amat(const CacheModel& model, double miss_penalty,
                   const TimingModel& timing) {
  const CacheStats& s = model.stats();
  if (dynamic_cast<const AdaptiveCache*>(&model) != nullptr) {
    return amat_adaptive(s.primary_hit_fraction(), s.miss_rate(),
                         miss_penalty, timing);
  }
  if (const auto* column =
          dynamic_cast<const ColumnAssociativeCache*>(&model)) {
    return amat_column_associative(column->fraction_rehash_hits(),
                                   column->fraction_rehash_misses(),
                                   s.miss_rate(), miss_penalty, timing);
  }
  if (const auto* partner = dynamic_cast<const PartnerCache*>(&model)) {
    // Partner hits behave like column-associative rehash hits (2 cycles);
    // misses that followed a link pay the extra probe cycle.
    return amat_column_associative(partner->fraction_partner_hits(),
                                   partner->fraction_partner_misses(),
                                   s.miss_rate(), miss_penalty, timing);
  }
  if (dynamic_cast<const VictimCache*>(&model) != nullptr) {
    // Victim-buffer hits pay a swap cycle, like a column-assoc rehash hit;
    // every miss has probed the buffer, so it pays the +1 as well.
    const double f_victim_hit =
        s.hits == 0 ? 0.0
                    : static_cast<double>(s.secondary_hits) /
                          static_cast<double>(s.hits);
    return amat_column_associative(f_victim_hit, 1.0, s.miss_rate(),
                                   miss_penalty, timing);
  }
  return amat_conventional(s.miss_rate(), miss_penalty,
                           timing.l1_hit_cycles);
}

RunResult run_trace(CacheModel& l1, const Trace& trace,
                    const RunConfig& config) {
  l1.flush();
  Hierarchy hierarchy(l1, config.l2_geometry, config.timing);
  const HierarchyResult hres = hierarchy.run(trace);

  RunResult result;
  result.workload = trace.name();
  result.scheme = l1.name();
  result.l1 = hres.l1;
  result.l2 = hres.l2;
  result.miss_penalty = miss_penalty_from_l2(hres.l2, config.timing);
  result.amat = scheme_amat(l1, result.miss_penalty, config.timing);
  result.measured_amat = hres.measured_amat();
  result.uniformity = analyse_uniformity(l1.set_stats());
  return result;
}

}  // namespace canu
