#include "sim/runner.hpp"

#include "sim/amat.hpp"

namespace canu {

double scheme_amat(const CacheModel& model, double miss_penalty,
                   const TimingModel& timing) {
  return scheme_amat_at(model, model.stats().miss_rate(), miss_penalty,
                        timing);
}

double scheme_amat_at(const CacheModel& model, double miss_rate,
                      double miss_penalty, const TimingModel& timing) {
  const AmatTerms terms = model.amat_terms();
  switch (terms.formula) {
    case AmatTerms::Formula::kAdaptive:
      return amat_adaptive(terms.direct_hit_fraction, miss_rate,
                           miss_penalty, timing);
    case AmatTerms::Formula::kColumn:
      return amat_column_associative(terms.slow_hit_fraction,
                                     terms.probed_miss_fraction, miss_rate,
                                     miss_penalty, timing);
    case AmatTerms::Formula::kConventional:
      break;
  }
  return amat_conventional(miss_rate, miss_penalty, timing.l1_hit_cycles);
}

RunResult run_trace(CacheModel& l1, const Trace& trace,
                    const RunConfig& config) {
  l1.flush();
  Hierarchy hierarchy(l1, config.l2_geometry, config.timing);
  const HierarchyResult hres = hierarchy.run(trace);

  RunResult result;
  result.workload = trace.name();
  result.scheme = l1.name();
  result.l1 = hres.l1;
  result.l2 = hres.l2;
  result.miss_penalty = miss_penalty_from_l2(hres.l2, config.timing);
  result.amat = scheme_amat(l1, result.miss_penalty, config.timing);
  result.measured_amat = hres.measured_amat();
  result.uniformity = analyse_uniformity(l1.set_stats());
  return result;
}

}  // namespace canu
