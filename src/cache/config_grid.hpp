// ConfigGrid: the design-space sweep vocabulary for one-pass multi-
// configuration replay (DESIGN.md §13).
//
// A grid is four dimension lists — sets × ways × line size × scheme — and
// expands to the cross product in one canonical order. Canonicalization
// (each list sorted and deduplicated, cells enumerated scheme-major, then
// sets, ways, line) is part of the contract: two permuted-but-equivalent
// `--grid` specs expand to the same cells in the same order, print the
// same tables, and hash to the same daemon result-cache key.
//
// The scheme dimension is carried as names ("modulo", "xor",
// "column_assoc", ...): resolving a name to a live cache model is the
// core layer's job (core/evaluator.hpp), so the cache layer stays free of
// the scheme registry and the grid type is usable from the service layer
// for request-key canonicalization without dragging in model code.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/config.hpp"

namespace canu {

/// One cell of the expanded grid.
struct GridPoint {
  std::uint64_t sets = 0;
  unsigned ways = 0;
  std::uint64_t line = 0;
  std::string scheme;

  /// The cell's L1 geometry (size follows from sets * ways * line).
  CacheGeometry geometry() const noexcept {
    return CacheGeometry{sets * ways * line, line, ways};
  }

  /// Canonical row label, e.g. "xor@1024x2x32" (sets x ways x line).
  std::string label() const;
};

class ConfigGrid {
 public:
  /// Hard ceiling on expanded cells: wide enough for any real design-space
  /// sweep, small enough that one request cannot OOM the daemon.
  static constexpr std::size_t kMaxCells = 1024;

  /// Parse dimension tokens ("sets=512,1024", "ways=1,2", "line=32",
  /// "scheme=modulo,xor"). Omitted dimensions default to the paper's L1
  /// (1024 sets, 1 way, 32-byte lines, modulo indexing). Lists are
  /// canonicalized on parse. Throws canu::Error on malformed tokens,
  /// repeated dimensions, invalid values, or an oversize grid.
  static ConfigGrid parse(std::span<const std::string> tokens);

  const std::vector<std::uint64_t>& sets() const noexcept { return sets_; }
  const std::vector<unsigned>& ways() const noexcept { return ways_; }
  const std::vector<std::uint64_t>& lines() const noexcept { return lines_; }
  const std::vector<std::string>& schemes() const noexcept { return schemes_; }

  std::size_t cell_count() const noexcept {
    return sets_.size() * ways_.size() * lines_.size() * schemes_.size();
  }

  /// Every cell in canonical order: schemes outer, then sets, ways, line.
  std::vector<GridPoint> cells() const;

  /// The spec re-serialized in canonical form, one token per dimension in
  /// fixed order ("sets=...", "ways=...", "line=...", "scheme=...") — the
  /// normal form hashed into the daemon's result-cache key.
  std::vector<std::string> canonical_tokens() const;

 private:
  std::vector<std::uint64_t> sets_{1024};
  std::vector<unsigned> ways_{1};
  std::vector<std::uint64_t> lines_{32};
  std::vector<std::string> schemes_{"modulo"};
};

/// True if `arg` looks like a grid dimension token (sets=/ways=/line=/
/// scheme= prefix) — how the CLI and daemon tell dimension args apart from
/// suite or group names.
bool is_grid_dimension_token(const std::string& arg) noexcept;

}  // namespace canu
