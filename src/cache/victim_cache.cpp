#include "cache/victim_cache.hpp"

#include <algorithm>

#include "indexing/modulo.hpp"
#include "util/error.hpp"

namespace canu {

VictimCache::VictimCache(CacheGeometry geometry, unsigned victim_entries,
                         IndexFunctionPtr index_fn)
    : geometry_(geometry),
      index_fn_(std::move(index_fn)),
      lines_(geometry.sets()),
      victims_(victim_entries),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  CANU_CHECK_MSG(geometry_.ways == 1,
                 "victim cache models a direct-mapped primary cache");
  CANU_CHECK_MSG(victim_entries >= 1, "need at least one victim entry");
  if (!index_fn_) {
    index_fn_ = std::make_shared<ModuloIndex>(geometry_.sets(),
                                              geometry_.offset_bits());
  }
}

AccessOutcome VictimCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t set = index_fn_->index(addr);
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  Line& primary = lines_[set];
  ++clock_;
  ++stats_.accesses;
  ++set_stats_[set].accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  if (primary.valid && primary.line_addr == line_addr) {
    if (is_write) primary.dirty = true;
    ++stats_.hits;
    ++stats_.primary_hits;
    ++set_stats_[set].hits;
    stats_.lookup_cycles += 1;
    return {true, 1, 1};
  }

  // Probe the victim buffer; a hit swaps the entry with the primary line.
  for (VictimEntry& v : victims_) {
    if (v.valid && v.line_addr == line_addr) {
      ++stats_.hits;
      ++stats_.secondary_hits;
      ++stats_.swaps;
      ++set_stats_[set].hits;
      std::swap(v.line_addr, primary.line_addr);
      std::swap(v.valid, primary.valid);
      std::swap(v.dirty, primary.dirty);
      // After the swap the victim slot may hold an invalid line (cold set).
      v.stamp = clock_;
      primary.valid = true;
      primary.line_addr = line_addr;
      if (is_write) primary.dirty = true;
      stats_.lookup_cycles += 2;
      return {true, 2, 2};
    }
  }

  ++stats_.misses;
  ++set_stats_[set].misses;
  if (primary.valid) {
    // Displace into the LRU victim slot.
    VictimEntry* slot = &victims_[0];
    for (VictimEntry& v : victims_) {
      if (!v.valid) {
        slot = &v;
        break;
      }
      if (v.stamp < slot->stamp) slot = &v;
    }
    if (slot->valid) {
      ++stats_.evictions;
      if (slot->dirty) ++stats_.writebacks;
    }
    *slot = VictimEntry{primary.line_addr, clock_, true, primary.dirty};
  }
  primary = Line{line_addr, true, is_write};
  stats_.lookup_cycles += 1;
  return {false, 2, 1};
}

std::string VictimCache::name() const {
  return "victim(" + std::to_string(victims_.size()) + ")[" +
         index_fn_->name() + "]";
}

void VictimCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
}

void VictimCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  std::fill(victims_.begin(), victims_.end(), VictimEntry{});
  clock_ = 0;
}

}  // namespace canu
