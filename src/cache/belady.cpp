#include "cache/belady.hpp"

#include <limits>
#include <unordered_map>
#include <vector>

#include "indexing/modulo.hpp"
#include "util/error.hpp"

namespace canu {

OptResult simulate_opt(const Trace& trace, const CacheGeometry& geometry,
                       IndexFunctionPtr index_fn) {
  geometry.validate();
  if (!index_fn) {
    index_fn = std::make_shared<ModuloIndex>(geometry.sets(),
                                             geometry.offset_bits());
  }

  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  const unsigned offset_bits = geometry.offset_bits();
  const std::size_t n = trace.size();

  // Backward pass: next_use[i] = next position referencing the same line.
  std::vector<std::uint64_t> next_use(n, kNever);
  std::unordered_map<std::uint64_t, std::uint64_t> last_seen;
  last_seen.reserve(n / 4 + 16);
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t line = trace[i].addr >> offset_bits;
    auto [it, inserted] = last_seen.try_emplace(line, i);
    if (!inserted) {
      next_use[i] = it->second;
      it->second = i;
    }
  }

  struct Entry {
    std::uint64_t line = 0;
    std::uint64_t next = kNever;
    bool valid = false;
  };
  std::vector<Entry> entries(geometry.lines());
  OptResult result;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = trace[i].addr;
    const std::uint64_t line = addr >> offset_bits;
    const std::uint64_t set = index_fn->index(addr);
    Entry* ways = entries.data() + set * geometry.ways;
    ++result.accesses;

    Entry* found = nullptr;
    for (unsigned w = 0; w < geometry.ways; ++w) {
      if (ways[w].valid && ways[w].line == line) {
        found = &ways[w];
        break;
      }
    }
    if (found) {
      ++result.hits;
      found->next = next_use[i];
      continue;
    }
    ++result.misses;
    // Victim: invalid slot if any, else farthest next use.
    Entry* victim = &ways[0];
    for (unsigned w = 0; w < geometry.ways; ++w) {
      if (!ways[w].valid) {
        victim = &ways[w];
        break;
      }
      if (ways[w].next > victim->next) victim = &ways[w];
    }
    *victim = Entry{line, next_use[i], true};
  }
  return result;
}

}  // namespace canu
