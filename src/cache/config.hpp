// Cache geometry and timing parameters.
//
// The defaults reproduce the paper's experimental configuration (§IV):
// 32 KB direct-mapped L1 with 32-byte lines (1024 sets, 10 index bits) and a
// unified 256 KB LRU L2.
#pragma once

#include <cstdint>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

struct CacheGeometry {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint64_t line_size = 32;
  unsigned ways = 1;  ///< 1 = direct-mapped

  constexpr std::uint64_t sets() const noexcept {
    return size_bytes / (line_size * ways);
  }
  constexpr std::uint64_t lines() const noexcept {
    return size_bytes / line_size;
  }
  constexpr unsigned offset_bits() const noexcept {
    return log2_exact(line_size);
  }
  constexpr unsigned index_bits() const noexcept {
    return log2_exact(sets());
  }

  void validate() const {
    CANU_CHECK_MSG(line_size >= 4 && is_pow2(line_size),
                   "line size must be a power of two >= 4: " << line_size);
    CANU_CHECK_MSG(ways >= 1, "ways must be >= 1");
    CANU_CHECK_MSG(size_bytes % (line_size * ways) == 0,
                   "size " << size_bytes << " not divisible by line*ways");
    CANU_CHECK_MSG(is_pow2(sets()), "set count must be a power of two: "
                                        << sets());
    CANU_CHECK_MSG(sets() >= 1, "cache must have at least one set");
  }

  /// The paper's L1 configuration: 32 KB direct-mapped, 32-byte lines.
  static constexpr CacheGeometry paper_l1() noexcept {
    return CacheGeometry{32 * 1024, 32, 1};
  }
  /// The paper's L2 configuration: unified 256 KB; associativity is not
  /// specified in the paper, we use 8-way (DESIGN.md §3).
  static constexpr CacheGeometry paper_l2() noexcept {
    return CacheGeometry{256 * 1024, 32, 8};
  }
};

/// Cycle costs used by the AMAT computations (paper eqs. (8)/(9) and
/// DESIGN.md §3).
struct TimingModel {
  std::uint32_t l1_hit_cycles = 1;
  std::uint32_t rehash_hit_cycles = 2;   ///< column-associative second probe
  std::uint32_t out_hit_cycles = 3;      ///< adaptive-cache OUT-directory hit
  std::uint32_t l2_hit_cycles = 10;
  std::uint32_t memory_cycles = 100;
};

}  // namespace canu
