#include "cache/hierarchy.hpp"

#include "util/error.hpp"

namespace canu {

Hierarchy::Hierarchy(CacheModel& l1, CacheGeometry l2_geometry,
                     TimingModel timing)
    : l1_(&l1),
      l2_(std::make_unique<SetAssocCache>(l2_geometry)),
      timing_(timing) {}

Hierarchy::Hierarchy(CacheModel& l1, std::unique_ptr<CacheModel> l2,
                     TimingModel timing)
    : l1_(&l1), l2_(std::move(l2)), timing_(timing) {
  CANU_CHECK_MSG(l2_ != nullptr, "hierarchy requires an L2 model");
}

std::uint64_t Hierarchy::access(std::uint64_t addr, AccessType type) {
  return finish_access(l1_->access(addr, type), addr, type);
}

HierarchyResult Hierarchy::run(const Trace& trace) {
  for (const MemRef& r : trace) access(r.addr, r.type);
  return result();
}

HierarchyResult Hierarchy::result() const {
  HierarchyResult res;
  res.l1 = l1_->stats();
  res.l2 = l2_->stats();
  res.timing = timing_;
  res.total_cycles = total_cycles_;
  return res;
}

void Hierarchy::flush() {
  l1_->flush();
  l2_->flush();
  total_cycles_ = 0;
}

}  // namespace canu
