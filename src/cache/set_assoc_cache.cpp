#include "cache/set_assoc_cache.hpp"

#include <algorithm>

#include "indexing/modulo.hpp"
#include "util/simd.hpp"

namespace canu {

SetAssocCache::SetAssocCache(CacheGeometry geometry, IndexFunctionPtr index_fn,
                             ReplacementPolicy policy, std::uint64_t rng_seed)
    : geometry_(geometry),
      index_fn_(std::move(index_fn)),
      victim_(policy, rng_seed),
      tags_(geometry.lines(), kInvalidTag),
      stamps_(geometry.lines(), 0),
      dirty_(geometry.lines(), 0),
      rrpv_(geometry.lines(), 0),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  if (policy == ReplacementPolicy::kPlru) {
    CANU_CHECK_MSG(is_pow2(geometry_.ways) && geometry_.ways <= 64,
                   "tree PLRU requires a power-of-two way count <= 64, got "
                       << geometry_.ways);
    plru_bits_.assign(geometry_.sets(), 0);
  }
  if (!index_fn_) {
    index_fn_ = std::make_shared<ModuloIndex>(geometry_.sets(),
                                              geometry_.offset_bits());
  }
  CANU_CHECK_MSG(index_fn_->sets() <= geometry_.sets(),
                 "index function addresses " << index_fn_->sets()
                                             << " sets, cache has "
                                             << geometry_.sets());
  hit_stamp_mask_ =
      policy == ReplacementPolicy::kLru ? ~std::uint64_t{0} : std::uint64_t{0};
  slow_touch_ = policy == ReplacementPolicy::kPlru ||
                policy == ReplacementPolicy::kSrrip;
}

void SetAssocCache::touch_slow(std::uint64_t set, unsigned way,
                               bool fill) noexcept {
  switch (victim_.policy()) {
    case ReplacementPolicy::kPlru: {
      // Walk from the leaf to the root, pointing every tree bit away from
      // this way (heap layout: internal nodes 1..ways-1, leaves ways..2w-1).
      std::uint64_t& bits = plru_bits_[set];
      unsigned node = geometry_.ways + way;
      while (node > 1) {
        const unsigned parent = node / 2;
        if (node == 2 * parent) {
          bits |= std::uint64_t{1} << parent;  // left child used: point right
        } else {
          bits &= ~(std::uint64_t{1} << parent);
        }
        node = parent;
      }
      break;
    }
    case ReplacementPolicy::kSrrip:
      // Near-immediate re-reference on hit; fills keep the long insertion
      // interval (kRrpvInsert) already written by the caller.
      if (!fill) rrpv_[set * geometry_.ways + way] = 0;
      break;
    default:
      break;
  }
}

unsigned SetAssocCache::pick_victim(std::uint64_t set) noexcept {
  const std::size_t base = set * geometry_.ways;
  switch (victim_.policy()) {
    case ReplacementPolicy::kRandom:
      return victim_.select_random(geometry_.ways);
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      const std::uint64_t* stamps = stamps_.data() + base;
      unsigned slot = 0;
      for (unsigned w = 1; w < geometry_.ways; ++w) {
        if (stamps[w] < stamps[slot]) slot = w;
      }
      return slot;
    }
    case ReplacementPolicy::kPlru: {
      const std::uint64_t bits = plru_bits_[set];
      unsigned node = 1;
      while (node < geometry_.ways) {
        node = 2 * node + static_cast<unsigned>((bits >> node) & 1);
      }
      return node - geometry_.ways;
    }
    case ReplacementPolicy::kSrrip: {
      // Find an RRPV==max line; if none, age everyone and retry.
      std::uint8_t* rrpv = rrpv_.data() + base;
      for (;;) {
        for (unsigned w = 0; w < geometry_.ways; ++w) {
          if (rrpv[w] >= kRrpvMax) return w;
        }
        for (unsigned w = 0; w < geometry_.ways; ++w) ++rrpv[w];
      }
    }
  }
  return 0;
}

AccessOutcome SetAssocCache::access(std::uint64_t addr, AccessType type) {
  return access_preindexed(index_fn_->index(addr),
                           addr >> geometry_.offset_bits(), type);
}

AccessOutcome SetAssocCache::access_preindexed(std::uint64_t set,
                                               std::uint64_t line_addr,
                                               AccessType type) {
  CANU_CHECK_MSG(line_addr != kInvalidTag,
                 "address 0x" << std::hex
                              << (line_addr << geometry_.offset_bits())
                              << " aliases the invalid-tag sentinel");
  const std::size_t base = set * geometry_.ways;
  std::uint64_t* tags = tags_.data() + base;
  const unsigned ways = geometry_.ways;
  ++clock_;
  ++stats_.accesses;
  ++set_stats_[set].accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  // Tight probe: one compare per way over the contiguous tag column
  // (validity is folded into the tag via the sentinel). Wide way counts
  // take the AVX2 kernel when the host has it; first-match semantics are
  // identical either way (util/simd.hpp).
  const unsigned w = simd::find_u64(tags, ways, line_addr);

  if (w != ways) {
    const std::size_t idx = base + w;
    // Branchless recency update: refreshes the stamp under LRU, a no-op
    // store under FIFO/Random/PLRU/SRRIP.
    stamps_[idx] =
        (stamps_[idx] & ~hit_stamp_mask_) | (clock_ & hit_stamp_mask_);
    dirty_[idx] = static_cast<std::uint8_t>(dirty_[idx] | (is_write ? 1 : 0));
    if (slow_touch_) touch_slow(set, w, /*fill=*/false);
    ++stats_.hits;
    ++stats_.primary_hits;
    ++set_stats_[set].hits;
    stats_.lookup_cycles += 1;
    return {true, 1, 1};
  }

  // Miss: prefer the first invalid way, otherwise consult the policy.
  ++stats_.misses;
  ++set_stats_[set].misses;
  unsigned slot = simd::find_u64(tags, ways, kInvalidTag);
  if (slot == ways) {
    slot = pick_victim(set);
    ++stats_.evictions;
    if (dirty_[base + slot]) ++stats_.writebacks;
  }
  const std::size_t idx = base + slot;
  tags[slot] = line_addr;
  stamps_[idx] = clock_;
  rrpv_[idx] = kRrpvInsert;
  dirty_[idx] = is_write ? 1 : 0;
  if (slow_touch_) touch_slow(set, slot, /*fill=*/true);
  stats_.lookup_cycles += 1;
  return {false, 1, 1};
}

bool SetAssocCache::contains(std::uint64_t addr) const noexcept {
  const std::uint64_t set = index_fn_->index(addr);
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  const std::uint64_t* tags = tags_.data() + set * geometry_.ways;
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (tags[w] == line_addr) return true;
  }
  return false;
}

std::string SetAssocCache::name() const {
  std::string org = geometry_.ways == 1
                        ? "direct"
                        : std::to_string(geometry_.ways) + "way";
  if (victim_.policy() != ReplacementPolicy::kLru && geometry_.ways > 1) {
    org += "-" + replacement_policy_name(victim_.policy());
  }
  return org + "[" + index_fn_->name() + "]";
}

void SetAssocCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
}

void SetAssocCache::flush() {
  reset_stats();
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(rrpv_.begin(), rrpv_.end(), 0);
  std::fill(plru_bits_.begin(), plru_bits_.end(), 0);
  clock_ = 0;
}

}  // namespace canu
