#include "cache/set_assoc_cache.hpp"

#include <algorithm>

#include "indexing/modulo.hpp"

namespace canu {

SetAssocCache::SetAssocCache(CacheGeometry geometry, IndexFunctionPtr index_fn,
                             ReplacementPolicy policy, std::uint64_t rng_seed)
    : geometry_(geometry),
      index_fn_(std::move(index_fn)),
      victim_(policy, rng_seed),
      lines_(geometry.lines()),
      set_stats_(geometry.sets()) {
  geometry_.validate();
  if (policy == ReplacementPolicy::kPlru) {
    CANU_CHECK_MSG(is_pow2(geometry_.ways) && geometry_.ways <= 64,
                   "tree PLRU requires a power-of-two way count <= 64, got "
                       << geometry_.ways);
    plru_bits_.assign(geometry_.sets(), 0);
  }
  if (!index_fn_) {
    index_fn_ = std::make_shared<ModuloIndex>(geometry_.sets(),
                                              geometry_.offset_bits());
  }
  CANU_CHECK_MSG(index_fn_->sets() <= geometry_.sets(),
                 "index function addresses " << index_fn_->sets()
                                             << " sets, cache has "
                                             << geometry_.sets());
}

void SetAssocCache::touch(std::uint64_t set, unsigned way) noexcept {
  Line& line = set_begin(set)[way];
  switch (victim_.policy()) {
    case ReplacementPolicy::kLru:
      line.stamp = clock_;
      break;
    case ReplacementPolicy::kFifo:
    case ReplacementPolicy::kRandom:
      break;  // recency is irrelevant
    case ReplacementPolicy::kPlru: {
      // Walk from the leaf to the root, pointing every tree bit away from
      // this way (heap layout: internal nodes 1..ways-1, leaves ways..2w-1).
      std::uint64_t& bits = plru_bits_[set];
      unsigned node = geometry_.ways + way;
      while (node > 1) {
        const unsigned parent = node / 2;
        if (node == 2 * parent) {
          bits |= std::uint64_t{1} << parent;  // left child used: point right
        } else {
          bits &= ~(std::uint64_t{1} << parent);
        }
        node = parent;
      }
      break;
    }
    case ReplacementPolicy::kSrrip:
      line.rrpv = 0;  // near-immediate re-reference on hit
      break;
  }
}

unsigned SetAssocCache::pick_victim(std::uint64_t set) noexcept {
  Line* ways = set_begin(set);
  switch (victim_.policy()) {
    case ReplacementPolicy::kRandom:
      return victim_.select_random(geometry_.ways);
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      unsigned slot = 0;
      for (unsigned w = 1; w < geometry_.ways; ++w) {
        if (ways[w].stamp < ways[slot].stamp) slot = w;
      }
      return slot;
    }
    case ReplacementPolicy::kPlru: {
      const std::uint64_t bits = plru_bits_[set];
      unsigned node = 1;
      while (node < geometry_.ways) {
        node = 2 * node + static_cast<unsigned>((bits >> node) & 1);
      }
      return node - geometry_.ways;
    }
    case ReplacementPolicy::kSrrip: {
      // Find an RRPV==max line; if none, age everyone and retry.
      for (;;) {
        for (unsigned w = 0; w < geometry_.ways; ++w) {
          if (ways[w].rrpv >= kRrpvMax) return w;
        }
        for (unsigned w = 0; w < geometry_.ways; ++w) ++ways[w].rrpv;
      }
    }
  }
  return 0;
}

AccessOutcome SetAssocCache::access(std::uint64_t addr, AccessType type) {
  const std::uint64_t set = index_fn_->index(addr);
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  Line* ways = set_begin(set);
  ++clock_;
  ++stats_.accesses;
  ++set_stats_[set].accesses;
  const bool is_write = type == AccessType::kWrite;
  if (is_write) ++stats_.write_accesses;

  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (ways[w].valid && ways[w].line_addr == line_addr) {
      touch(set, w);
      if (is_write) ways[w].dirty = true;
      ++stats_.hits;
      ++stats_.primary_hits;
      ++set_stats_[set].hits;
      stats_.lookup_cycles += 1;
      return {true, 1, 1};
    }
  }

  // Miss: prefer an invalid way, otherwise consult the policy.
  ++stats_.misses;
  ++set_stats_[set].misses;
  unsigned slot = geometry_.ways;
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (!ways[w].valid) {
      slot = w;
      break;
    }
  }
  if (slot == geometry_.ways) {
    slot = pick_victim(set);
    ++stats_.evictions;
    if (ways[slot].dirty) ++stats_.writebacks;
  }
  ways[slot] = Line{line_addr, clock_, kRrpvInsert, true, is_write};
  touch(set, slot);
  // SRRIP distinguishes insertion (long interval) from promotion on hit;
  // undo touch()'s hit-promotion for fills.
  if (victim_.policy() == ReplacementPolicy::kSrrip) {
    ways[slot].rrpv = kRrpvInsert;
  }
  stats_.lookup_cycles += 1;
  return {false, 1, 1};
}

bool SetAssocCache::contains(std::uint64_t addr) const noexcept {
  const std::uint64_t set = index_fn_->index(addr);
  const std::uint64_t line_addr = addr >> geometry_.offset_bits();
  const Line* ways = set_begin(set);
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (ways[w].valid && ways[w].line_addr == line_addr) return true;
  }
  return false;
}

std::string SetAssocCache::name() const {
  std::string org = geometry_.ways == 1
                        ? "direct"
                        : std::to_string(geometry_.ways) + "way";
  if (victim_.policy() != ReplacementPolicy::kLru && geometry_.ways > 1) {
    org += "-" + replacement_policy_name(victim_.policy());
  }
  return org + "[" + index_fn_->name() + "]";
}

void SetAssocCache::reset_stats() {
  stats_ = CacheStats{};
  std::fill(set_stats_.begin(), set_stats_.end(), SetStats{});
}

void SetAssocCache::flush() {
  reset_stats();
  std::fill(lines_.begin(), lines_.end(), Line{});
  std::fill(plru_bits_.begin(), plru_bits_.end(), 0);
  clock_ = 0;
}

}  // namespace canu
