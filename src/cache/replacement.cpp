#include "cache/replacement.hpp"

namespace canu {

std::string replacement_policy_name(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kFifo: return "fifo";
    case ReplacementPolicy::kRandom: return "random";
    case ReplacementPolicy::kPlru: return "plru";
    case ReplacementPolicy::kSrrip: return "srrip";
  }
  return "unknown";
}

}  // namespace canu
