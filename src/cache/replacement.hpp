// Replacement policies for set-associative caches.
//
// Policies operate on way-granularity metadata kept by the owning cache;
// LRU/FIFO use a monotonically increasing stamp, Random uses the cache's
// deterministic RNG. ways are small (<= 16 in every configuration used by
// the experiments), so linear scans beat fancier structures.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace canu {

enum class ReplacementPolicy : std::uint8_t {
  kLru,     ///< true LRU (stamp-based)
  kFifo,    ///< insertion order
  kRandom,  ///< uniform random (deterministic RNG)
  kPlru,    ///< tree pseudo-LRU (the common hardware approximation)
  kSrrip,   ///< static re-reference interval prediction (Jaleel et al.)
};

std::string replacement_policy_name(ReplacementPolicy policy);

/// Carries the policy choice and the deterministic RNG behind kRandom.
/// The owning cache implements the policy's bookkeeping (stamps, tree bits,
/// RRPVs) itself — see SetAssocCache::touch()/pick_victim().
class VictimSelector {
 public:
  VictimSelector(ReplacementPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  ReplacementPolicy policy() const noexcept { return policy_; }

  /// Uniform victim choice for kRandom.
  unsigned select_random(unsigned ways) noexcept {
    return static_cast<unsigned>(rng_.below(ways));
  }

 private:
  ReplacementPolicy policy_;
  Xoshiro256 rng_;
};

}  // namespace canu
