#include "cache/split_hierarchy.hpp"

namespace canu {

SplitHierarchy::SplitHierarchy(CacheModel& l1i, CacheModel& l1d,
                               CacheGeometry l2_geometry, TimingModel timing)
    : l1i_(&l1i),
      l1d_(&l1d),
      l2_(std::make_unique<SetAssocCache>(l2_geometry)),
      timing_(timing) {}

std::uint64_t SplitHierarchy::access(std::uint64_t addr, AccessType type) {
  CacheModel& l1 = (type == AccessType::kFetch) ? *l1i_ : *l1d_;
  const AccessOutcome out = l1.access(addr, type);
  std::uint64_t cycles = out.cycles;
  if (!out.hit) {
    const AccessOutcome l2_out = l2_->access(addr, type);
    cycles += timing_.l2_hit_cycles;
    if (!l2_out.hit) cycles += timing_.memory_cycles;
  }
  total_cycles_ += cycles;
  ++references_;
  return cycles;
}

SplitHierarchyResult SplitHierarchy::run(const Trace& merged) {
  for (const MemRef& r : merged) access(r.addr, r.type);
  return result();
}

SplitHierarchyResult SplitHierarchy::result() const {
  SplitHierarchyResult res;
  res.l1i = l1i_->stats();
  res.l1d = l1d_->stats();
  res.l2 = l2_->stats();
  res.timing = timing_;
  res.total_cycles = total_cycles_;
  res.references = references_;
  return res;
}

void SplitHierarchy::flush() {
  l1i_->flush();
  l1d_->flush();
  l2_->flush();
  total_cycles_ = 0;
  references_ = 0;
}

Trace merge_fetch_data(const Trace& fetch, const Trace& data,
                       std::size_t fetches_per_data) {
  Trace merged("merged[" + fetch.name() + "+" + data.name() + "]");
  merged.reserve(fetch.size() + data.size());
  std::size_t fi = 0, di = 0;
  while (fi < fetch.size() || di < data.size()) {
    for (std::size_t k = 0; k < fetches_per_data && fi < fetch.size(); ++k) {
      merged.append(fetch[fi++]);
    }
    if (di < data.size()) merged.append(data[di++]);
    if (fi >= fetch.size() && di < data.size()) {
      // Fetch stream exhausted: drain the data stream.
      while (di < data.size()) merged.append(data[di++]);
    }
  }
  return merged;
}

}  // namespace canu
