// Two-level hierarchy: any L1 CacheModel in front of a unified L2
// SetAssocCache, with cycle accounting. The paper's configuration (§IV) is
// a 32 KB direct-mapped L1 and a unified 256 KB LRU L2.
//
// The hierarchy measures the quantity the AMAT formulas need: the average
// L1 miss penalty, i.e. L2 hit latency plus the memory latency weighted by
// the L2 miss ratio observed for this run.
#pragma once

#include <memory>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/set_assoc_cache.hpp"
#include "trace/trace.hpp"

namespace canu {

struct HierarchyResult {
  CacheStats l1;
  CacheStats l2;
  TimingModel timing;
  std::uint64_t total_cycles = 0;  ///< lookup cycles + miss penalties

  /// Average penalty charged per L1 miss in this run.
  double avg_miss_penalty() const noexcept {
    if (l1.misses == 0) return timing.l2_hit_cycles;
    return static_cast<double>(timing.l2_hit_cycles) +
           l2.miss_rate() * static_cast<double>(timing.memory_cycles);
  }
  /// Measured AMAT: total cycles divided by L1 accesses.
  double measured_amat() const noexcept {
    return l1.accesses == 0 ? 0.0
                            : static_cast<double>(total_cycles) /
                                  static_cast<double>(l1.accesses);
  }
};

/// Owns the L2; borrows the L1 (callers keep it to inspect per-set stats).
class Hierarchy {
 public:
  /// Conventional unified L2 of the given geometry (8-way LRU by default
  /// geometry; the paper's configuration via CacheGeometry::paper_l2()).
  Hierarchy(CacheModel& l1, CacheGeometry l2_geometry, TimingModel timing = {});

  /// Custom L2 organization (e.g. a column-associative or hashed L2 — the
  /// schemes are geometry-parametric, so they apply at any level).
  Hierarchy(CacheModel& l1, std::unique_ptr<CacheModel> l2,
            TimingModel timing = {});

  /// Simulate one reference through both levels; returns cycles charged.
  std::uint64_t access(std::uint64_t addr, AccessType type = AccessType::kRead);

  /// Second half of access() for callers that drove the L1 probe
  /// themselves (the planned batch kernel, sim/batch_runner.cpp): charge
  /// the L2 on an L1 miss and accumulate cycles, exactly as access() does
  /// after its own l1->access() call.
  std::uint64_t finish_access(const AccessOutcome& l1_out, std::uint64_t addr,
                              AccessType type) {
    std::uint64_t cycles = l1_out.cycles;
    if (!l1_out.hit) {
      const AccessOutcome l2_out = l2_->access(addr, type);
      cycles += timing_.l2_hit_cycles;
      if (!l2_out.hit) cycles += timing_.memory_cycles;
    }
    total_cycles_ += cycles;
    return cycles;
  }

  /// Replay a whole trace; returns the accumulated result.
  HierarchyResult run(const Trace& trace);

  HierarchyResult result() const;

  CacheModel& l1() noexcept { return *l1_; }
  CacheModel& l2() noexcept { return *l2_; }
  void flush();

 private:
  CacheModel* l1_;
  std::unique_ptr<CacheModel> l2_;
  TimingModel timing_;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace canu
