// Split L1 hierarchy: separate instruction and data L1 caches in front of a
// unified L2 — the paper's full simulated configuration (32 KB L1I + 32 KB
// L1D + 256 KB unified L2, §IV).
//
// The interleaver merges a data trace with an instruction-fetch trace at a
// configurable fetch:data ratio (real integer codes fetch ~3-5 instructions
// per data reference). Fetch records route to the L1I, everything else to
// the L1D; both miss into the shared L2.
#pragma once

#include <memory>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/set_assoc_cache.hpp"
#include "trace/trace.hpp"

namespace canu {

struct SplitHierarchyResult {
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  TimingModel timing;
  std::uint64_t total_cycles = 0;
  std::uint64_t references = 0;

  double measured_amat() const noexcept {
    return references == 0 ? 0.0
                           : static_cast<double>(total_cycles) /
                                 static_cast<double>(references);
  }
};

/// Borrows both L1 models (callers keep them to read per-set stats); owns
/// the unified L2.
class SplitHierarchy {
 public:
  SplitHierarchy(CacheModel& l1i, CacheModel& l1d, CacheGeometry l2_geometry,
                 TimingModel timing = TimingModel());

  /// Route one reference (kFetch -> L1I, else L1D); returns cycles charged.
  std::uint64_t access(std::uint64_t addr, AccessType type);

  /// Replay a merged trace.
  SplitHierarchyResult run(const Trace& merged);

  SplitHierarchyResult result() const;
  void flush();

  CacheModel& l1i() noexcept { return *l1i_; }
  CacheModel& l1d() noexcept { return *l1d_; }
  SetAssocCache& l2() noexcept { return *l2_; }

 private:
  CacheModel* l1i_;
  CacheModel* l1d_;
  std::unique_ptr<SetAssocCache> l2_;
  TimingModel timing_;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t references_ = 0;
};

/// Merge a data trace with a fetch trace, issuing ~`fetches_per_data`
/// consecutive fetches between data references (both streams preserve
/// their internal order; the shorter stream simply runs out).
Trace merge_fetch_data(const Trace& fetch, const Trace& data,
                       std::size_t fetches_per_data = 3);

}  // namespace canu
