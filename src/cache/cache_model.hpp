// CacheModel: the abstract interface every simulated cache implements —
// the conventional set-associative cache as well as the paper's three
// programmable-associativity organizations.
//
// Models are trace-driven: access() is called once per memory reference and
// returns whether it hit, how many locations were probed, and the lookup
// latency in cycles. Per-set counters are first-class (DESIGN.md §5.4)
// because the paper's central measurement is the distribution of accesses,
// hits and misses across sets.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/record.hpp"

namespace canu {

/// Result of a single cache access.
struct AccessOutcome {
  bool hit = false;
  /// Number of locations probed (1 = primary; 2 = rehash/partner/OUT...).
  std::uint32_t probes = 1;
  /// Lookup latency in cycles (excludes the miss penalty, which is charged
  /// by the hierarchy / AMAT model).
  std::uint32_t cycles = 1;
};

/// Aggregate counters for one cache.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t primary_hits = 0;    ///< hits in the first probed location
  std::uint64_t secondary_hits = 0;  ///< hits in an alternate location
  std::uint64_t evictions = 0;       ///< valid lines displaced
  std::uint64_t swaps = 0;           ///< block relocations (column/adaptive)
  std::uint64_t lookup_cycles = 0;   ///< sum of AccessOutcome::cycles
  std::uint64_t write_accesses = 0;  ///< accesses with AccessType::kWrite
  std::uint64_t writebacks = 0;      ///< dirty lines evicted to the next level

  double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
  double hit_rate() const noexcept { return 1.0 - miss_rate(); }
  /// Fraction of *hits* that were satisfied by the primary location.
  double primary_hit_fraction() const noexcept {
    return hits == 0 ? 1.0
                     : static_cast<double>(primary_hits) /
                           static_cast<double>(hits);
  }
};

// All models implement a write-back, write-allocate policy: writes mark
// the resident line dirty, evicting a dirty line counts as a writeback
// (traffic to the next level; not charged cycles — a write buffer is
// assumed to hide the latency). Relocations between sets (column swap,
// adaptive/partner preservation, victim-buffer swap) carry the dirty bit
// without generating traffic.

/// Per-set counters; the input to the uniformity analysis.
struct SetStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Operands of the scheme-appropriate analytic AMAT formula (sim/amat.hpp).
/// Each model reports which formula shape applies to it and the hit/miss
/// splits that formula consumes, so the simulation engine never has to know
/// the concrete scheme types.
struct AmatTerms {
  enum class Formula {
    kConventional,  ///< AMAT = hit_time + miss_rate * penalty
    kAdaptive,      ///< paper formula (8): direct vs OUT-directory hits
    kColumn,        ///< paper formula (9): rehash hit/miss splits
  };
  Formula formula = Formula::kConventional;
  /// kAdaptive: fraction of hits satisfied by the primary location
  /// (formula (8)'s FractionOfDirectHits).
  double direct_hit_fraction = 1.0;
  /// kColumn: fraction of hits satisfied on the slow path — rehash,
  /// partner or victim-buffer hits (formula (9)'s FractionOfRehashHits).
  double slow_hit_fraction = 0.0;
  /// kColumn: fraction of misses that performed the extra probe and
  /// therefore pay MissPenalty + 1 (formula (9)'s FractionOfRehashMisses).
  double probed_miss_fraction = 0.0;
};

class CacheModel {
 public:
  virtual ~CacheModel() = default;

  /// Simulate one reference; updates all counters.
  virtual AccessOutcome access(std::uint64_t addr,
                               AccessType type = AccessType::kRead) = 0;

  /// Number of physical sets (the per-set stats span has this many entries).
  virtual std::uint64_t num_sets() const noexcept = 0;

  virtual const CacheStats& stats() const noexcept = 0;
  virtual std::span<const SetStats> set_stats() const noexcept = 0;

  /// Organization name for reports, e.g. "direct[xor]" or "column_assoc".
  virtual std::string name() const = 0;

  /// The AMAT formula this model's timing behaviour follows, with the
  /// current values of the operands. The default is the conventional
  /// single-probe formula; schemes with a slow hit path override this.
  virtual AmatTerms amat_terms() const noexcept { return AmatTerms{}; }

  /// Clear counters but keep cache contents (for warmup/measure splits).
  virtual void reset_stats() = 0;

  /// Invalidate all contents and clear counters.
  virtual void flush() = 0;
};

}  // namespace canu
