#include "cache/config_grid.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

namespace {

/// Split "a,b,c" on commas; an empty list or empty element is an error.
std::vector<std::string> split_list(const std::string& dim,
                                    const std::string& text) {
  CANU_CHECK_MSG(!text.empty(), "--grid " << dim << "= needs a value list");
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    CANU_CHECK_MSG(!item.empty(),
                   "empty element in --grid " << dim << "=" << text);
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::uint64_t parse_dim_u64(const std::string& dim, const std::string& item) {
  CANU_CHECK_MSG(!item.empty() && item.find_first_not_of("0123456789") ==
                                      std::string::npos,
                 "invalid --grid " << dim << " value '" << item
                                   << "' (want a positive integer)");
  CANU_CHECK_MSG(item.size() <= 10, "--grid " << dim << " value '" << item
                                              << "' out of range");
  return std::stoull(item);
}

template <typename T>
void sort_dedup(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

std::string GridPoint::label() const {
  return scheme + "@" + std::to_string(sets) + "x" + std::to_string(ways) +
         "x" + std::to_string(line);
}

ConfigGrid ConfigGrid::parse(std::span<const std::string> tokens) {
  ConfigGrid grid;
  bool seen_sets = false, seen_ways = false, seen_line = false,
       seen_scheme = false;
  for (const std::string& token : tokens) {
    const std::size_t eq = token.find('=');
    CANU_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "malformed --grid dimension '"
                       << token << "' (want sets=|ways=|line=|scheme=)");
    const std::string dim = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (dim == "sets") {
      CANU_CHECK_MSG(!seen_sets, "--grid dimension 'sets' given twice");
      seen_sets = true;
      grid.sets_.clear();
      for (const std::string& item : split_list(dim, value)) {
        const std::uint64_t v = parse_dim_u64(dim, item);
        CANU_CHECK_MSG(v >= 1 && v <= (1u << 24) && is_pow2(v),
                       "--grid sets value " << v
                                            << " must be a power of two "
                                               "in [1, 2^24]");
        grid.sets_.push_back(v);
      }
    } else if (dim == "ways") {
      CANU_CHECK_MSG(!seen_ways, "--grid dimension 'ways' given twice");
      seen_ways = true;
      grid.ways_.clear();
      for (const std::string& item : split_list(dim, value)) {
        const std::uint64_t v = parse_dim_u64(dim, item);
        CANU_CHECK_MSG(v >= 1 && v <= 64,
                       "--grid ways value " << v << " must be in [1, 64]");
        grid.ways_.push_back(static_cast<unsigned>(v));
      }
    } else if (dim == "line") {
      CANU_CHECK_MSG(!seen_line, "--grid dimension 'line' given twice");
      seen_line = true;
      grid.lines_.clear();
      for (const std::string& item : split_list(dim, value)) {
        const std::uint64_t v = parse_dim_u64(dim, item);
        CANU_CHECK_MSG(v >= 4 && v <= 4096 && is_pow2(v),
                       "--grid line value "
                           << v << " must be a power of two in [4, 4096]");
        grid.lines_.push_back(v);
      }
    } else if (dim == "scheme") {
      CANU_CHECK_MSG(!seen_scheme, "--grid dimension 'scheme' given twice");
      seen_scheme = true;
      grid.schemes_ = split_list(dim, value);
    } else {
      throw Error("unknown --grid dimension '" + dim +
                  "' (want sets|ways|line|scheme)");
    }
  }
  sort_dedup(&grid.sets_);
  sort_dedup(&grid.ways_);
  sort_dedup(&grid.lines_);
  sort_dedup(&grid.schemes_);
  CANU_CHECK_MSG(grid.cell_count() <= kMaxCells,
                 "--grid expands to " << grid.cell_count()
                                      << " configurations (max " << kMaxCells
                                      << ")");
  return grid;
}

std::vector<GridPoint> ConfigGrid::cells() const {
  std::vector<GridPoint> out;
  out.reserve(cell_count());
  for (const std::string& scheme : schemes_) {
    for (const std::uint64_t sets : sets_) {
      for (const unsigned ways : ways_) {
        for (const std::uint64_t line : lines_) {
          out.push_back(GridPoint{sets, ways, line, scheme});
        }
      }
    }
  }
  return out;
}

std::vector<std::string> ConfigGrid::canonical_tokens() const {
  const auto join_nums = [](const auto& items) {
    std::string s;
    for (const auto& v : items) {
      if (!s.empty()) s += ',';
      s += std::to_string(v);
    }
    return s;
  };
  std::string schemes;
  for (const std::string& s : schemes_) {
    if (!schemes.empty()) schemes += ',';
    schemes += s;
  }
  return {"sets=" + join_nums(sets_), "ways=" + join_nums(ways_),
          "line=" + join_nums(lines_), "scheme=" + schemes};
}

bool is_grid_dimension_token(const std::string& arg) noexcept {
  return arg.rfind("sets=", 0) == 0 || arg.rfind("ways=", 0) == 0 ||
         arg.rfind("line=", 0) == 0 || arg.rfind("scheme=", 0) == 0;
}

}  // namespace canu
