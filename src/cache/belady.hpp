// Belady's OPT replacement — the theoretical bound the paper invokes in
// Section III ("a fully associative cache with a perfect replacement policy
// ... only serves as a theoretical lower bound for cache miss rates").
//
// OPT needs the future reference stream, so this is an offline simulator:
// it takes the whole trace, precomputes next-use positions, and replays it,
// evicting the resident line whose next use is farthest in the future.
// With ways == lines (one set) this is the fully-associative OPT bound.
#pragma once

#include <cstdint>

#include "cache/config.hpp"
#include "indexing/index_function.hpp"
#include "trace/trace.hpp"

namespace canu {

struct OptResult {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// Simulate `trace` through a cache with OPT replacement. If `index_fn` is
/// null, modulo indexing over the geometry is used. A fully-associative
/// bound is obtained with geometry {size, line, ways = size/line}.
OptResult simulate_opt(const Trace& trace, const CacheGeometry& geometry,
                       IndexFunctionPtr index_fn = nullptr);

}  // namespace canu
