// SetAssocCache: the conventional k-way set-associative cache with a
// pluggable index function and replacement policy. With ways=1 and
// ModuloIndex this is the paper's direct-mapped baseline; swapping the
// index function yields the Section II schemes without touching the
// organization.
//
// Replacement policies: true LRU and FIFO (stamp-based), deterministic
// random, tree pseudo-LRU (per-set tree bits, the common hardware
// approximation; requires a power-of-two way count) and SRRIP (2-bit
// re-reference prediction values per line).
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/replacement.hpp"
#include "indexing/index_function.hpp"

namespace canu {

class SetAssocCache final : public CacheModel {
 public:
  /// If `index_fn` is null a ModuloIndex over the geometry is used.
  SetAssocCache(CacheGeometry geometry, IndexFunctionPtr index_fn = nullptr,
                ReplacementPolicy policy = ReplacementPolicy::kLru,
                std::uint64_t rng_seed = 0x9d8f'51ce'77a1'0b2dULL);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  const CacheGeometry& geometry() const noexcept { return geometry_; }
  const IndexFunction& index_function() const noexcept { return *index_fn_; }
  ReplacementPolicy policy() const noexcept { return victim_.policy(); }

  /// True if the line containing `addr` is currently resident (no counter
  /// updates; used by tests and by the hierarchy for inclusion checks).
  bool contains(std::uint64_t addr) const noexcept;

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    std::uint64_t stamp = 0;
    std::uint8_t rrpv = 0;  ///< SRRIP re-reference prediction value
    bool valid = false;
    bool dirty = false;
  };

  // SRRIP parameters (2-bit RRPV, insert at "long" re-reference interval).
  static constexpr std::uint8_t kRrpvMax = 3;
  static constexpr std::uint8_t kRrpvInsert = 2;

  Line* set_begin(std::uint64_t set) noexcept {
    return lines_.data() + set * geometry_.ways;
  }
  const Line* set_begin(std::uint64_t set) const noexcept {
    return lines_.data() + set * geometry_.ways;
  }

  /// Record a use of `way` in `set` (hit or fill).
  void touch(std::uint64_t set, unsigned way) noexcept;
  /// Choose the victim way among an all-valid set.
  unsigned pick_victim(std::uint64_t set) noexcept;

  CacheGeometry geometry_;
  IndexFunctionPtr index_fn_;
  VictimSelector victim_;
  std::vector<Line> lines_;
  std::vector<std::uint64_t> plru_bits_;  ///< per-set PLRU tree bits
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace canu
