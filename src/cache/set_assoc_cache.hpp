// SetAssocCache: the conventional k-way set-associative cache with a
// pluggable index function and replacement policy. With ways=1 and
// ModuloIndex this is the paper's direct-mapped baseline; swapping the
// index function yields the Section II schemes without touching the
// organization.
//
// Replacement policies: true LRU and FIFO (stamp-based), deterministic
// random, tree pseudo-LRU (per-set tree bits, the common hardware
// approximation; requires a power-of-two way count) and SRRIP (2-bit
// re-reference prediction values per line).
//
// Line state is stored structure-of-arrays (tags / stamps / dirty bytes /
// RRPVs in separate flat arrays) so the probe loop touches only the tag
// column — one cache line covers 8 ways — and the replacement-stamp update
// is a branchless masked store for LRU/FIFO. Validity is encoded in the
// tag array itself (kInvalidTag), which keeps the probe a single compare
// per way; addresses in the top line-sized sliver of the 64-bit space are
// rejected rather than aliased onto the sentinel.
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/replacement.hpp"
#include "indexing/index_function.hpp"

namespace canu {

class SetAssocCache final : public CacheModel {
 public:
  /// If `index_fn` is null a ModuloIndex over the geometry is used.
  SetAssocCache(CacheGeometry geometry, IndexFunctionPtr index_fn = nullptr,
                ReplacementPolicy policy = ReplacementPolicy::kLru,
                std::uint64_t rng_seed = 0x9d8f'51ce'77a1'0b2dULL);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;

  /// The access-plan entry of the batch replay kernel (DESIGN.md §13):
  /// identical to access() but with the set index and line address already
  /// derived by the caller — the grid engine computes them once per
  /// line-size/index-function class and fans them out to every member
  /// configuration. `set` MUST equal index_function().index(addr) and
  /// `line_addr` MUST equal addr >> offset_bits for the results to match
  /// the virtual path (the planned kernel guarantees this by construction).
  AccessOutcome access_preindexed(std::uint64_t set, std::uint64_t line_addr,
                                  AccessType type);
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  const CacheGeometry& geometry() const noexcept { return geometry_; }
  const IndexFunction& index_function() const noexcept { return *index_fn_; }
  ReplacementPolicy policy() const noexcept { return victim_.policy(); }

  /// True if the line containing `addr` is currently resident (no counter
  /// updates; used by tests and by the hierarchy for inclusion checks).
  bool contains(std::uint64_t addr) const noexcept;

 private:
  /// Tag value marking an empty way. A real line address can only collide
  /// with it for addresses within one cache line of 2^64; access() rejects
  /// those instead of silently treating the way as empty.
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  // SRRIP parameters (2-bit RRPV, insert at "long" re-reference interval).
  static constexpr std::uint8_t kRrpvMax = 3;
  static constexpr std::uint8_t kRrpvInsert = 2;

  /// Policy-specific bookkeeping on a hit or fill of `way` in `set`,
  /// beyond the branchless stamp update the hot path already did (PLRU
  /// tree walk; SRRIP hit promotion).
  void touch_slow(std::uint64_t set, unsigned way, bool fill) noexcept;
  /// Choose the victim way among an all-valid set.
  unsigned pick_victim(std::uint64_t set) noexcept;

  CacheGeometry geometry_;
  IndexFunctionPtr index_fn_;
  VictimSelector victim_;
  // Structure-of-arrays line state, indexed set * ways + way.
  std::vector<std::uint64_t> tags_;    ///< line address, or kInvalidTag
  std::vector<std::uint64_t> stamps_;  ///< LRU recency / FIFO insertion order
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint8_t> rrpv_;     ///< SRRIP re-reference prediction
  std::vector<std::uint64_t> plru_bits_;  ///< per-set PLRU tree bits
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
  /// All-ones when a hit refreshes the stamp (LRU), zero otherwise: the
  /// hot path applies `stamp = (stamp & ~mask) | (clock & mask)` instead
  /// of switching on the policy.
  std::uint64_t hit_stamp_mask_ = 0;
  /// True for policies needing per-access bookkeeping beyond stamps
  /// (PLRU, SRRIP); keeps the common LRU/FIFO/Random path free of the
  /// policy switch.
  bool slow_touch_ = false;
};

}  // namespace canu
