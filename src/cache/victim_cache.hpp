// Victim cache (Jouppi, ISCA 1990 — the paper's reference [14]): a
// direct-mapped cache backed by a small fully-associative buffer holding
// recently evicted lines. The adaptive cache (paper §III.B) is described as
// "selective victim caching", so this model serves as the classic point of
// comparison in the associativity ablation.
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "indexing/index_function.hpp"

namespace canu {

class VictimCache final : public CacheModel {
 public:
  /// `victim_entries` fully-associative LRU entries behind a direct-mapped
  /// cache of `geometry` (ways must be 1).
  VictimCache(CacheGeometry geometry, unsigned victim_entries = 8,
              IndexFunctionPtr index_fn = nullptr);

  AccessOutcome access(std::uint64_t addr,
                       AccessType type = AccessType::kRead) override;
  std::uint64_t num_sets() const noexcept override { return geometry_.sets(); }
  const CacheStats& stats() const noexcept override { return stats_; }
  std::span<const SetStats> set_stats() const noexcept override {
    return set_stats_;
  }
  std::string name() const override;
  void reset_stats() override;
  void flush() override;

  // Victim-buffer hits pay a swap cycle, like a column-assoc rehash hit;
  // every miss has probed the buffer, so it pays the +1 as well.
  AmatTerms amat_terms() const noexcept override {
    AmatTerms t;
    t.formula = AmatTerms::Formula::kColumn;
    t.slow_hit_fraction =
        stats_.hits == 0 ? 0.0
                         : static_cast<double>(stats_.secondary_hits) /
                               static_cast<double>(stats_.hits);
    t.probed_miss_fraction = 1.0;
    return t;
  }

  /// Hits satisfied by the victim buffer (== stats().secondary_hits).
  std::uint64_t victim_hits() const noexcept { return stats_.secondary_hits; }

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    bool valid = false;
    bool dirty = false;
  };
  struct VictimEntry {
    std::uint64_t line_addr = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheGeometry geometry_;
  IndexFunctionPtr index_fn_;
  std::vector<Line> lines_;
  std::vector<VictimEntry> victims_;
  std::vector<SetStats> set_stats_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace canu
