// PerThreadIndex: dispatches to a different index function per hardware
// thread — the mechanism behind the paper's "multiple indexing schemes
// within a single cache system" proposal (Figure 5 / §IV.E).
//
// CacheModel::access takes only an address, so the SMT driver selects the
// active thread on this object before each access. The simulation is
// single-threaded (one reference at a time, like the hardware pipeline), so
// the mutable current-thread field is safe; it is what the thread-id wires
// into the index-generation logic would be in hardware.
#pragma once

#include <algorithm>
#include <vector>

#include "indexing/index_function.hpp"
#include "util/error.hpp"

namespace canu {

class PerThreadIndex final : public IndexFunction {
 public:
  explicit PerThreadIndex(std::vector<IndexFunctionPtr> per_thread)
      : fns_(std::move(per_thread)) {
    CANU_CHECK_MSG(!fns_.empty(), "need at least one thread index function");
    for (const auto& fn : fns_) {
      CANU_CHECK(fn != nullptr);
      // Functions may address fewer sets than the physical cache (prime
      // modulo), but none may address more than the smallest declared.
      CANU_CHECK_MSG(fn->sets() <= fns_.front()->sets() * 2 &&
                         fns_.front()->sets() <= fn->sets() * 2,
                     "per-thread index functions must target the same cache");
      max_sets_ = std::max(max_sets_, fn->sets());
    }
  }

  /// Select the thread whose function handles subsequent index() calls.
  void set_thread(std::uint32_t tid) const {
    CANU_CHECK_MSG(tid < fns_.size(), "thread id out of range: " << tid);
    current_ = tid;
  }

  std::uint64_t index(std::uint64_t addr) const noexcept override {
    return fns_[current_]->index(addr);
  }
  std::uint64_t sets() const noexcept override { return max_sets_; }
  std::string name() const override {
    std::string n = "per_thread{";
    for (std::size_t i = 0; i < fns_.size(); ++i) {
      if (i) n += ",";
      n += fns_[i]->name();
    }
    return n + "}";
  }

  std::size_t threads() const noexcept { return fns_.size(); }

 private:
  std::vector<IndexFunctionPtr> fns_;
  std::uint64_t max_sets_ = 0;
  mutable std::uint32_t current_ = 0;
};

}  // namespace canu
