#include "mt/partitioned_adaptive.hpp"

#include "cache/set_assoc_cache.hpp"
#include "util/error.hpp"

namespace canu {

PartitionIndex::PartitionIndex(std::uint64_t total_sets, unsigned offset_bits,
                               std::uint32_t threads)
    : total_sets_(total_sets),
      partition_sets_(total_sets / threads),
      offset_bits_(offset_bits),
      threads_(threads) {
  CANU_CHECK_MSG(threads >= 1 && is_pow2(threads),
                 "thread count must be a power of two: " << threads);
  CANU_CHECK_MSG(total_sets % threads == 0,
                 "set count " << total_sets << " not divisible by " << threads);
  CANU_CHECK_MSG(is_pow2(partition_sets_),
                 "partition size must be a power of two");
}

void PartitionIndex::set_thread(std::uint32_t tid) const {
  CANU_CHECK_MSG(tid < threads_, "thread id out of range: " << tid);
  current_ = tid;
}

std::string PartitionIndex::name() const {
  return "partition(x" + std::to_string(threads_) + ")";
}

PartitionedAdaptiveCache::PartitionedAdaptiveCache(CacheGeometry geometry,
                                                   std::uint32_t threads,
                                                   AdaptiveConfig config)
    : index_(std::make_shared<PartitionIndex>(geometry.sets(),
                                              geometry.offset_bits(), threads)),
      core_(std::make_unique<AdaptiveCache>(geometry, config, index_)),
      thread_stats_(threads) {}

AccessOutcome PartitionedAdaptiveCache::access(std::uint32_t tid,
                                               const MemRef& ref) {
  index_->set_thread(tid);
  const AccessOutcome out = core_->access(ref.addr, ref.type);
  ThreadStats& ts = thread_stats_.at(tid);
  ++ts.accesses;
  if (out.hit) ++ts.hits;
  else ++ts.misses;
  return out;
}

void PartitionedAdaptiveCache::run(const ThreadedTrace& stream) {
  for (const ThreadedRef& r : stream) access(r.tid, r.ref);
}

void PartitionedAdaptiveCache::flush() {
  core_->flush();
  for (ThreadStats& ts : thread_stats_) ts = ThreadStats{};
}

PartitionedDirectCache::PartitionedDirectCache(CacheGeometry geometry,
                                               std::uint32_t threads)
    : index_(std::make_shared<PartitionIndex>(geometry.sets(),
                                              geometry.offset_bits(), threads)),
      model_(std::make_unique<SetAssocCache>(geometry, index_)),
      thread_stats_(threads) {}

AccessOutcome PartitionedDirectCache::access(std::uint32_t tid,
                                             const MemRef& ref) {
  index_->set_thread(tid);
  const AccessOutcome out = model_->access(ref.addr, ref.type);
  ThreadStats& ts = thread_stats_.at(tid);
  ++ts.accesses;
  if (out.hit) ++ts.hits;
  else ++ts.misses;
  return out;
}

void PartitionedDirectCache::run(const ThreadedTrace& stream) {
  for (const ThreadedRef& r : stream) access(r.tid, r.ref);
}

const CacheStats& PartitionedDirectCache::stats() const noexcept {
  return model_->stats();
}

void PartitionedDirectCache::flush() {
  model_->flush();
  for (ThreadStats& ts : thread_stats_) ts = ThreadStats{};
}

}  // namespace canu
