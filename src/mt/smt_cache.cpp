#include "mt/smt_cache.hpp"

#include "cache/set_assoc_cache.hpp"
#include "sim/amat.hpp"

namespace canu {

SmtSharedCache::SmtSharedCache(CacheGeometry geometry,
                               std::vector<IndexFunctionPtr> per_thread_fns)
    : index_(std::make_shared<PerThreadIndex>(std::move(per_thread_fns))),
      thread_stats_(index_->threads()) {
  model_ = std::make_unique<SetAssocCache>(geometry, index_);
}

AccessOutcome SmtSharedCache::access(std::uint32_t tid, const MemRef& ref) {
  index_->set_thread(tid);
  const AccessOutcome out = model_->access(ref.addr, ref.type);
  ThreadStats& ts = thread_stats_.at(tid);
  ++ts.accesses;
  if (out.hit) ++ts.hits;
  else ++ts.misses;
  return out;
}

void SmtSharedCache::run(const ThreadedTrace& stream) {
  for (const ThreadedRef& r : stream) access(r.tid, r.ref);
}

void SmtSharedCache::flush() {
  model_->flush();
  for (ThreadStats& ts : thread_stats_) ts = ThreadStats{};
}

SmtRunResult run_smt(SmtSharedCache& cache, const ThreadedTrace& stream,
                     const CacheGeometry& l2_geometry,
                     const TimingModel& timing) {
  cache.flush();
  SetAssocCache l2(l2_geometry);
  for (const ThreadedRef& r : stream) {
    const AccessOutcome out = cache.access(r.tid, r.ref);
    if (!out.hit) l2.access(r.ref.addr, r.ref.type);
  }
  SmtRunResult result;
  result.l1 = cache.stats();
  result.l2 = l2.stats();
  result.per_thread.reserve(cache.threads());
  for (std::size_t t = 0; t < cache.threads(); ++t) {
    result.per_thread.push_back(cache.thread_stats(static_cast<std::uint32_t>(t)));
  }
  result.miss_penalty = miss_penalty_from_l2(result.l2, timing);
  result.amat = amat_conventional(result.l1.miss_rate(), result.miss_penalty,
                                  timing.l1_hit_cycles);
  return result;
}

}  // namespace canu
