// Thread-trace interleaving for SMT-style simulations (paper §IV.E).
//
// The paper's multithreaded experiments (Figures 13/14) run 2-4 concurrent
// threads through a shared L1. We reproduce that by interleaving the
// per-thread traces into one stream of (thread id, reference) pairs. The
// threads' address spaces must be disjoint (WorkloadParams::address_base),
// matching distinct processes co-scheduled on an SMT core.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace canu {

struct ThreadedRef {
  MemRef ref;
  std::uint32_t tid = 0;
};

using ThreadedTrace = std::vector<ThreadedRef>;

/// Round-robin interleave with `chunk` consecutive references per turn
/// (chunk=1 models perfectly fair fetch interleaving; larger chunks model
/// burstier SMT scheduling). Threads that run out simply drop out.
ThreadedTrace interleave_round_robin(std::span<const Trace> traces,
                                     std::size_t chunk = 1);

/// Stochastic interleave: at each step a uniformly random live thread (from
/// a deterministic RNG) issues its next reference.
ThreadedTrace interleave_random(std::span<const Trace> traces,
                                std::uint64_t seed = 7);

}  // namespace canu
