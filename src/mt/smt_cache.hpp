// SmtSharedCache: a shared L1 driven by an interleaved multi-thread stream,
// where each thread may use its own index function (paper §IV.E, Figure 13).
//
// The wrapper owns the underlying cache model and a PerThreadIndex; each
// access first selects the issuing thread's index function, then performs a
// normal lookup. Per-thread hit/miss statistics are accumulated alongside
// the model's aggregate counters.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "mt/interleave.hpp"
#include "mt/per_thread_index.hpp"

namespace canu {

struct ThreadStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class SmtSharedCache {
 public:
  /// Build a direct-mapped shared cache of `geometry` where thread t indexes
  /// through `per_thread_fns[t]`.
  SmtSharedCache(CacheGeometry geometry,
                 std::vector<IndexFunctionPtr> per_thread_fns);

  /// Simulate one reference from thread `tid`.
  AccessOutcome access(std::uint32_t tid, const MemRef& ref);

  /// Replay a whole interleaved stream.
  void run(const ThreadedTrace& stream);

  const CacheStats& stats() const noexcept { return model_->stats(); }
  std::span<const SetStats> set_stats() const noexcept {
    return model_->set_stats();
  }
  const ThreadStats& thread_stats(std::uint32_t tid) const {
    return thread_stats_.at(tid);
  }
  std::size_t threads() const noexcept { return thread_stats_.size(); }
  CacheModel& model() noexcept { return *model_; }
  void flush();

 private:
  std::shared_ptr<PerThreadIndex> index_;
  std::unique_ptr<CacheModel> model_;
  std::vector<ThreadStats> thread_stats_;
};

/// Result of a full SMT run through a two-level hierarchy.
struct SmtRunResult {
  CacheStats l1;
  CacheStats l2;
  std::vector<ThreadStats> per_thread;
  double miss_penalty = 0;
  double amat = 0;  ///< conventional AMAT over the shared stream
};

/// Drive an interleaved stream through a shared L1 (per-thread indexing)
/// plus a unified L2, mirroring sim/runner.hpp for the SMT case.
SmtRunResult run_smt(SmtSharedCache& cache, const ThreadedTrace& stream,
                     const CacheGeometry& l2_geometry,
                     const TimingModel& timing = TimingModel());

}  // namespace canu
