// Way-partitioned shared cache — the standard alternative to the paper's
// set-partitioning (Figure 14): every thread can look up the whole cache,
// but a thread may only *allocate* into its assigned ways. Hits are
// unrestricted, so read-shared lines would not be duplicated; evictions
// pick the LRU line among the issuing thread's own ways.
//
// With 2 threads on a 2-way cache this gives each thread a private
// direct-mapped half interleaved at way granularity — the same capacity
// split as set partitioning but with full index width per thread, which
// preserves each thread's intra-partition set balance.
#pragma once

#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "mt/interleave.hpp"
#include "mt/smt_cache.hpp"

namespace canu {

class WayPartitionedCache {
 public:
  /// `geometry.ways` must be divisible by `threads`.
  WayPartitionedCache(CacheGeometry geometry, std::uint32_t threads);

  AccessOutcome access(std::uint32_t tid, const MemRef& ref);
  void run(const ThreadedTrace& stream);

  const CacheStats& stats() const noexcept { return stats_; }
  const ThreadStats& thread_stats(std::uint32_t tid) const {
    return thread_stats_.at(tid);
  }
  std::uint32_t ways_per_thread() const noexcept { return ways_per_thread_; }
  void flush();

 private:
  struct Line {
    std::uint64_t line_addr = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  CacheGeometry geometry_;
  std::uint32_t threads_;
  std::uint32_t ways_per_thread_;
  std::vector<Line> lines_;  ///< set-major, ways contiguous
  std::vector<ThreadStats> thread_stats_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace canu
