// Partitioned adaptive cache for multithreaded workloads (paper §IV.E,
// Figure 14).
//
// The cache is split equally among the threads: thread t's primary index is
// confined to its own partition (partition base + modulo within the
// partition). On top of the static split sit Peir-style SHT and OUT tables
// that span the *whole* cache, so a block displaced from a hot set in one
// thread's partition can be preserved in a lightly used set of another
// partition — "combining the benefits of thread isolation with the ability
// to divert traffic away from frequently accessed sets" (paper §V).
//
// Implementation: an AdaptiveCache whose index function is a PartitionIndex
// (thread-aware decorator); the adaptive machinery (SHT/OUT/relocation) is
// reused unchanged, and its find-disposable-set scan naturally crosses
// partition boundaries.
#pragma once

#include <memory>
#include <vector>

#include "assoc/adaptive_cache.hpp"
#include "cache/config.hpp"
#include "mt/interleave.hpp"
#include "mt/smt_cache.hpp"
#include "util/bitops.hpp"

namespace canu {

/// Thread-aware index: set = tid * partition_size + (line mod partition).
class PartitionIndex final : public IndexFunction {
 public:
  PartitionIndex(std::uint64_t total_sets, unsigned offset_bits,
                 std::uint32_t threads);

  void set_thread(std::uint32_t tid) const;

  std::uint64_t index(std::uint64_t addr) const noexcept override {
    return static_cast<std::uint64_t>(current_) * partition_sets_ +
           ((addr >> offset_bits_) & (partition_sets_ - 1));
  }
  std::uint64_t sets() const noexcept override { return total_sets_; }
  std::string name() const override;

  std::uint64_t partition_sets() const noexcept { return partition_sets_; }

 private:
  std::uint64_t total_sets_;
  std::uint64_t partition_sets_;
  unsigned offset_bits_;
  std::uint32_t threads_;
  mutable std::uint32_t current_ = 0;
};

class PartitionedAdaptiveCache {
 public:
  /// `threads` must be a power of two dividing the set count.
  PartitionedAdaptiveCache(CacheGeometry geometry, std::uint32_t threads,
                           AdaptiveConfig config = AdaptiveConfig());

  AccessOutcome access(std::uint32_t tid, const MemRef& ref);
  void run(const ThreadedTrace& stream);

  const CacheStats& stats() const noexcept { return core_->stats(); }
  std::span<const SetStats> set_stats() const noexcept {
    return core_->set_stats();
  }
  const ThreadStats& thread_stats(std::uint32_t tid) const {
    return thread_stats_.at(tid);
  }
  std::size_t threads() const noexcept { return thread_stats_.size(); }
  AdaptiveCache& core() noexcept { return *core_; }
  void flush();

 private:
  std::shared_ptr<PartitionIndex> index_;
  std::unique_ptr<AdaptiveCache> core_;
  std::vector<ThreadStats> thread_stats_;
};

/// Baseline for Figure 14: the same static partitioning with no SHT/OUT
/// assistance (a plain direct-mapped cache under the partition index).
class PartitionedDirectCache {
 public:
  PartitionedDirectCache(CacheGeometry geometry, std::uint32_t threads);

  AccessOutcome access(std::uint32_t tid, const MemRef& ref);
  void run(const ThreadedTrace& stream);

  const CacheStats& stats() const noexcept;
  const ThreadStats& thread_stats(std::uint32_t tid) const {
    return thread_stats_.at(tid);
  }
  void flush();

 private:
  std::shared_ptr<PartitionIndex> index_;
  std::unique_ptr<CacheModel> model_;
  std::vector<ThreadStats> thread_stats_;
};

}  // namespace canu
