#include "mt/way_partitioned.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace canu {

WayPartitionedCache::WayPartitionedCache(CacheGeometry geometry,
                                         std::uint32_t threads)
    : geometry_(geometry),
      threads_(threads),
      ways_per_thread_(geometry.ways / threads),
      lines_(geometry.lines()),
      thread_stats_(threads) {
  geometry_.validate();
  CANU_CHECK_MSG(threads >= 1, "need at least one thread");
  CANU_CHECK_MSG(geometry_.ways % threads == 0,
                 "ways " << geometry_.ways << " not divisible by " << threads
                         << " threads");
}

AccessOutcome WayPartitionedCache::access(std::uint32_t tid,
                                          const MemRef& ref) {
  CANU_CHECK_MSG(tid < threads_, "thread id out of range: " << tid);
  const std::uint64_t line_addr = ref.addr >> geometry_.offset_bits();
  const std::uint64_t set =
      (ref.addr >> geometry_.offset_bits()) & (geometry_.sets() - 1);
  Line* ways = lines_.data() + set * geometry_.ways;
  ++clock_;
  ++stats_.accesses;
  ThreadStats& ts = thread_stats_[tid];
  ++ts.accesses;
  if (ref.type == AccessType::kWrite) ++stats_.write_accesses;

  // Lookup across ALL ways (shared read path).
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    if (ways[w].valid && ways[w].line_addr == line_addr) {
      ways[w].stamp = clock_;
      ++stats_.hits;
      ++stats_.primary_hits;
      ++ts.hits;
      stats_.lookup_cycles += 1;
      return {true, 1, 1};
    }
  }

  // Miss: allocate only within this thread's way slice.
  ++stats_.misses;
  ++ts.misses;
  const unsigned base = tid * ways_per_thread_;
  unsigned slot = base;
  bool found_invalid = false;
  for (unsigned w = base; w < base + ways_per_thread_; ++w) {
    if (!ways[w].valid) {
      slot = w;
      found_invalid = true;
      break;
    }
    if (ways[w].stamp < ways[slot].stamp) slot = w;
  }
  if (!found_invalid && ways[slot].valid) ++stats_.evictions;
  ways[slot] = Line{line_addr, clock_, true};
  stats_.lookup_cycles += 1;
  return {false, 1, 1};
}

void WayPartitionedCache::run(const ThreadedTrace& stream) {
  for (const ThreadedRef& r : stream) access(r.tid, r.ref);
}

void WayPartitionedCache::flush() {
  stats_ = CacheStats{};
  for (ThreadStats& ts : thread_stats_) ts = ThreadStats{};
  std::fill(lines_.begin(), lines_.end(), Line{});
  clock_ = 0;
}

}  // namespace canu
