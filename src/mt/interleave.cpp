#include "mt/interleave.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace canu {

ThreadedTrace interleave_round_robin(std::span<const Trace> traces,
                                     std::size_t chunk) {
  ThreadedTrace out;
  std::size_t total = 0;
  for (const Trace& t : traces) total += t.size();
  out.reserve(total);

  std::vector<std::size_t> pos(traces.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      for (std::size_t c = 0; c < chunk && pos[t] < traces[t].size(); ++c) {
        out.push_back({traces[t][pos[t]++], static_cast<std::uint32_t>(t)});
        progressed = true;
      }
    }
  }
  return out;
}

ThreadedTrace interleave_random(std::span<const Trace> traces,
                                std::uint64_t seed) {
  ThreadedTrace out;
  std::size_t total = 0;
  for (const Trace& t : traces) total += t.size();
  out.reserve(total);

  Xoshiro256 rng(seed);
  std::vector<std::size_t> pos(traces.size(), 0);
  std::vector<std::size_t> live(traces.size());
  std::iota(live.begin(), live.end(), 0);
  while (!live.empty()) {
    const std::size_t pick = rng.below(live.size());
    const std::size_t t = live[pick];
    out.push_back({traces[t][pos[t]++], static_cast<std::uint32_t>(t)});
    if (pos[t] >= traces[t].size()) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  return out;
}

}  // namespace canu
