// Crash-safe persistence for the daemon's result cache (DESIGN.md §12): an
// append-only journal of finished "ok" results, one checksummed record per
// entry, replayed at startup so a restarted daemon serves its warm state
// again. The canonical request key already embeds the build version, so a
// record written by any binary is safe to serve by construction — a new
// build simply never matches old keys.
//
// On-disk layout (little-endian):
//   header : "CANUJRNL" (8 bytes) + u32 format version (1)
//   record : u32 payload_len, u64 fnv1a64(payload), payload
//   payload: len-prefixed fields — key, exit_code (decimal), output, error
//
// Recovery contract: load() validates records in order and stops at the
// first bad one (short read, oversize length, checksum mismatch, malformed
// payload), truncating the file back to the end of the valid prefix — a
// `kill -9` mid-append costs at most the record being written, never the
// entries before it. A missing file is an empty journal; an unrecognizable
// header restarts the journal from scratch.
//
// Compaction: append() tracks live vs written records and rewrites the
// journal through a temp file + atomic rename once the dead fraction grows
// past half, bounding the file at ~2x the live set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/result_cache.hpp"

namespace canu::svc {

class ResultJournal {
 public:
  struct Record {
    std::string key;
    CachedResult result;
  };

  /// Attach to `path` without touching the disk; the file is created on the
  /// first append.
  explicit ResultJournal(std::string path);

  const std::string& path() const noexcept { return path_; }

  /// Replay the valid record prefix (oldest first) and truncate any corrupt
  /// tail so subsequent appends extend a consistent file. Never throws on
  /// corruption — a damaged journal degrades to fewer restored entries.
  std::vector<Record> load();

  /// Append one finished result. Throws canu::Error on I/O failure (the
  /// caller treats the journal as degraded; the in-memory cache is
  /// unaffected).
  void append(const std::string& key, const CachedResult& result);

  /// Rewrite the journal to exactly `live` (temp file + atomic rename).
  /// Called automatically by append() when the dead fraction grows.
  void compact(const std::vector<Record>& live);

  /// True when the record count on disk warrants compaction against a live
  /// set of `live_entries`.
  bool wants_compaction(std::size_t live_entries) const noexcept {
    return appended_records_ > 2 * live_entries + 8;
  }

  std::uint64_t restored() const noexcept { return restored_; }
  bool recovered_corrupt_tail() const noexcept { return corrupt_tail_; }

 private:
  std::string path_;
  std::uint64_t appended_records_ = 0;  ///< records in the file right now
  std::uint64_t restored_ = 0;
  bool corrupt_tail_ = false;
};

}  // namespace canu::svc
