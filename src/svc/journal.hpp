// Crash-safe persistence for the daemon's result cache (DESIGN.md §12): an
// append-only journal of finished "ok" results, one checksummed record per
// entry, replayed at startup so a restarted daemon serves its warm state
// again. The canonical request key already embeds the build version, so a
// record written by any binary is safe to serve by construction — a new
// build simply never matches old keys.
//
// On-disk layout (little-endian):
//   header : "CANUJRNL" (8 bytes) + u32 format version (1)
//   record : u32 payload_len, u64 fnv1a64(payload), payload
//   payload: len-prefixed fields — key, exit_code (decimal), output, error
//
// Recovery contract: load() validates records in order and stops at the
// first bad one (short read, oversize length, checksum mismatch, malformed
// payload), truncating the file back to the end of the valid prefix — a
// `kill -9` mid-append costs at most the record being written, never the
// entries before it. A missing file is an empty journal; an unrecognizable
// header restarts the journal from scratch.
//
// Compaction: append() tracks live vs written records and rewrites the
// journal through a temp file + atomic rename once the dead fraction grows
// past half, bounding the file at ~2x the live set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/result_cache.hpp"

namespace canu::svc {

class ResultJournal {
 public:
  struct Record {
    std::string key;
    CachedResult result;
  };

  /// Handle for an in-progress two-phase compaction (begin_compaction).
  struct CompactionToken {
    std::string temp;         ///< temp file holding the snapshot records
    std::size_t records = 0;  ///< records written so far
  };

  /// Attach to `path` without touching the disk; the file is created on the
  /// first append.
  explicit ResultJournal(std::string path);

  const std::string& path() const noexcept { return path_; }

  /// Replay the valid record prefix (oldest first) and truncate any corrupt
  /// tail so subsequent appends extend a consistent file. Never throws on
  /// corruption — a damaged journal degrades to fewer restored entries.
  std::vector<Record> load();

  /// Append one finished result. Throws canu::Error on I/O failure (the
  /// caller treats the journal as degraded; the in-memory cache is
  /// unaffected).
  void append(const std::string& key, const CachedResult& result);

  /// Rewrite the journal to exactly `live` (temp file + atomic rename) in
  /// one blocking call. The cache uses the two-phase form below so the
  /// rewrite happens off the request path; this form remains for tests and
  /// offline tools.
  void compact(const std::vector<Record>& live);

  /// Phase one of a background compaction: write `snapshot` to a temp file.
  /// Safe to run concurrently with append() — it only creates a new file.
  /// Throws canu::Error on I/O failure (temp removed; journal untouched).
  CompactionToken begin_compaction(const std::vector<Record>& snapshot);

  /// Phase two: append `delta` (records journaled since the snapshot was
  /// taken) to the temp file and atomically rename it over the journal.
  /// The caller must exclude concurrent append() for the duration — this is
  /// the only part of compaction that needs the cache lock, and it is
  /// proportional to the delta, not the live set. Throws on failure (temp
  /// removed; journal keeps its pre-compaction contents).
  void finish_compaction(const CompactionToken& token,
                         const std::vector<Record>& delta);

  /// Abandon a begun compaction, removing its temp file. Never throws.
  void abort_compaction(const CompactionToken& token) noexcept;

  /// True when the record count on disk warrants compaction against a live
  /// set of `live_entries`.
  bool wants_compaction(std::size_t live_entries) const noexcept {
    return appended_records_ > 2 * live_entries + 8;
  }

  std::uint64_t restored() const noexcept { return restored_; }
  bool recovered_corrupt_tail() const noexcept { return corrupt_tail_; }

 private:
  std::string path_;
  std::uint64_t appended_records_ = 0;  ///< records in the file right now
  std::uint64_t restored_ = 0;
  bool corrupt_tail_ = false;
};

/// Encode one journal record (header + checksum + payload) as raw bytes —
/// the unit `canu drain` ships over the wire (hex-encoded in Request.body)
/// so shard handoff reuses the journal's checksummed format end to end.
std::string encode_record_bytes(const std::string& key,
                                const CachedResult& result);

/// Decode bytes produced by encode_record_bytes, validating length and
/// checksum. Returns false on any corruption (the receiving daemon rejects
/// the `put` instead of caching a damaged entry).
bool decode_record_bytes(std::string_view bytes, ResultJournal::Record* out);

}  // namespace canu::svc
