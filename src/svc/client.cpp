#include "svc/client.hpp"

#include <algorithm>
#include <thread>

#include "svc/socket.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu::svc {

std::string Endpoint::describe() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  if (port >= 0) return "tcp:" + host + ":" + std::to_string(port);
  return "<unconfigured>";
}

Client::Client(Endpoint endpoint) : endpoint_(std::move(endpoint)) {
  CANU_CHECK_MSG(endpoint_.configured(),
                 "client needs --socket=<path> or --port=<n>");
}

Response Client::call(const Request& req) const {
  const FdHandle conn =
      endpoint_.unix_path.empty()
          ? connect_tcp(endpoint_.host,
                        static_cast<std::uint16_t>(endpoint_.port))
          : connect_unix(endpoint_.unix_path);
  write_frame(conn.get(), encode_request(req));
  std::string payload;
  if (!read_frame(conn.get(), &payload)) {
    throw Error("canud at " + endpoint_.describe() +
                " closed the connection without a response");
  }
  return decode_response(payload);
}

Response Client::call_streamed(
    const Request& req, const std::function<void(std::string_view)>& sink,
    const RetryPolicy& policy) const {
  Request streamed = req;
  streamed.accept_stream = true;

  // One attempt: open a connection, forward chunk frames to the sink until
  // the final response document arrives. `delivered` counts sink calls so
  // the retry loop knows when a replay would duplicate output.
  auto attempt_once = [&](std::uint64_t* delivered) -> Response {
    const FdHandle conn =
        endpoint_.unix_path.empty()
            ? connect_tcp(endpoint_.host,
                          static_cast<std::uint16_t>(endpoint_.port))
            : connect_unix(endpoint_.unix_path);
    write_frame(conn.get(), encode_request(streamed));
    std::string payload;
    std::string data;
    for (;;) {
      if (!read_frame(conn.get(), &payload)) {
        throw Error("canud at " + endpoint_.describe() +
                    " closed the connection mid-stream");
      }
      if (!decode_stream_chunk(payload, &data)) {
        return decode_response(payload);
      }
      sink(data);
      ++*delivered;
    }
  };

  using Clock = std::chrono::steady_clock;
  const unsigned attempts = std::max(1u, policy.attempts);
  const auto start = Clock::now();
  const bool budgeted = policy.budget.count() > 0;
  const auto deadline = start + policy.budget;

  SplitMix64 rng(policy.seed);
  auto prev_sleep = policy.base;
  std::uint64_t delivered = 0;
  for (unsigned attempt = 1;; ++attempt) {
    const bool last = attempt >= attempts ||
                      (budgeted && Clock::now() >= deadline);
    try {
      const Response resp = attempt_once(&delivered);
      if (resp.status != "overloaded" || last || delivered > 0) return resp;
    } catch (const Error&) {
      // A replayed request after chunks already reached the sink would
      // print its output twice, so streaming only retries clean failures.
      if (last || delivered > 0) throw;
    }
    const auto lo = static_cast<std::uint64_t>(policy.base.count());
    const auto hi = static_cast<std::uint64_t>(
        std::min(policy.cap, prev_sleep * 3).count());
    auto sleep = std::chrono::milliseconds(
        hi > lo ? lo + rng.next() % (hi - lo + 1) : lo);
    prev_sleep = sleep;
    if (budgeted) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      sleep = std::min(sleep, std::max(left, std::chrono::milliseconds(0)));
    }
    if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
  }
}

Response Client::call_with_retry(const Request& req,
                                 const RetryPolicy& policy,
                                 unsigned* attempts_made) const {
  using Clock = std::chrono::steady_clock;
  const unsigned attempts = std::max(1u, policy.attempts);
  const auto start = Clock::now();
  const bool budgeted = policy.budget.count() > 0;
  const auto deadline = start + policy.budget;

  SplitMix64 rng(policy.seed);
  auto prev_sleep = policy.base;
  for (unsigned attempt = 1;; ++attempt) {
    if (attempts_made != nullptr) *attempts_made = attempt;
    const bool last = attempt >= attempts ||
                      (budgeted && Clock::now() >= deadline);
    try {
      const Response resp = call(req);
      if (resp.status != "overloaded" || last) return resp;
    } catch (const Error&) {
      // Transient transport failure (daemon restarting, socket not yet
      // bound). Protocol-mismatch errors also land here; retrying those is
      // wasted sleeps but still bounded, and telling them apart would couple
      // the client to error strings.
      if (last) throw;
    }
    // Decorrelated jitter: spreads a thundering herd of retries instead of
    // synchronizing it the way plain exponential backoff does.
    const auto lo = static_cast<std::uint64_t>(policy.base.count());
    const auto hi = static_cast<std::uint64_t>(
        std::min(policy.cap, prev_sleep * 3).count());
    auto sleep = std::chrono::milliseconds(
        hi > lo ? lo + rng.next() % (hi - lo + 1) : lo);
    prev_sleep = sleep;
    if (budgeted) {
      // Never sleep past the budget; an exhausted budget makes the next
      // iteration the final attempt.
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      sleep = std::min(sleep, std::max(left, std::chrono::milliseconds(0)));
    }
    if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
  }
}

}  // namespace canu::svc
