#include "svc/client.hpp"

#include "svc/socket.hpp"
#include "util/error.hpp"

namespace canu::svc {

std::string Endpoint::describe() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  if (port >= 0) return "tcp:" + host + ":" + std::to_string(port);
  return "<unconfigured>";
}

Client::Client(Endpoint endpoint) : endpoint_(std::move(endpoint)) {
  CANU_CHECK_MSG(endpoint_.configured(),
                 "client needs --socket=<path> or --port=<n>");
}

Response Client::call(const Request& req) const {
  const FdHandle conn =
      endpoint_.unix_path.empty()
          ? connect_tcp(endpoint_.host,
                        static_cast<std::uint16_t>(endpoint_.port))
          : connect_unix(endpoint_.unix_path);
  write_frame(conn.get(), encode_request(req));
  std::string payload;
  if (!read_frame(conn.get(), &payload)) {
    throw Error("canud at " + endpoint_.describe() +
                " closed the connection without a response");
  }
  return decode_response(payload);
}

}  // namespace canu::svc
