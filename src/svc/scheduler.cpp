#include "svc/scheduler.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu::svc {

RequestScheduler::RequestScheduler(ThreadPool* pool, std::size_t capacity,
                                   std::chrono::milliseconds aging)
    : pool_(pool), capacity_(capacity), aging_(aging) {
  CANU_CHECK_MSG(capacity > 0, "scheduler capacity must be positive");
}

bool RequestScheduler::try_submit(std::function<void()> fn,
                                  Priority priority) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || in_flight_ >= capacity_) {
      ++rejected_;
      obs::count(obs::Counter::kSvcOverloadRejections);
      return false;
    }
    ++in_flight_;
    ++admitted_;
    Pending p{std::move(fn), std::chrono::steady_clock::now()};
    (priority == Priority::kInteractive ? interactive_ : batch_)
        .push_back(std::move(p));
  }
  obs::count(obs::Counter::kSvcRequests);
  if (pool_ != nullptr) {
    // Generic runner, not the request itself: by the time a worker frees
    // up, a higher-priority request may have arrived, and it should go
    // first even though this slot was enqueued for someone else.
    pool_->submit([this] { run_next(); });
  } else {
    run_next();
  }
  return true;
}

std::function<void()> RequestScheduler::pop_best() {
  std::lock_guard<std::mutex> lock(mutex_);
  // One runner per admitted request, so there is always work here.
  CANU_CHECK_MSG(!interactive_.empty() || !batch_.empty(),
                 "scheduler runner woke with no pending request");
  auto take = [](std::deque<Pending>& q) {
    std::function<void()> fn = std::move(q.front().fn);
    q.pop_front();
    return fn;
  };
  if (interactive_.empty()) return take(batch_);
  if (batch_.empty()) return take(interactive_);
  const auto now = std::chrono::steady_clock::now();
  if (now - batch_.front().enqueued > aging_) return take(batch_);
  return take(interactive_);
}

void RequestScheduler::run_next() {
  pop_best()();
  finish_one();
}

void RequestScheduler::finish_one() {
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  idle_.notify_all();
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t RequestScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::size_t RequestScheduler::queued(Priority priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return (priority == Priority::kInteractive ? interactive_ : batch_).size();
}

std::uint64_t RequestScheduler::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t RequestScheduler::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace canu::svc
