#include "svc/scheduler.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu::svc {

RequestScheduler::RequestScheduler(ThreadPool* pool, std::size_t capacity)
    : pool_(pool), capacity_(capacity) {
  CANU_CHECK_MSG(capacity > 0, "scheduler capacity must be positive");
}

bool RequestScheduler::try_submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || in_flight_ >= capacity_) {
      ++rejected_;
      obs::count(obs::Counter::kSvcOverloadRejections);
      return false;
    }
    ++in_flight_;
    ++admitted_;
  }
  obs::count(obs::Counter::kSvcRequests);
  auto task = [this, fn = std::move(fn)] {
    fn();
    finish_one();
  };
  if (pool_ != nullptr) {
    pool_->submit(std::move(task));
  } else {
    task();
  }
  return true;
}

void RequestScheduler::finish_one() {
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  idle_.notify_all();
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t RequestScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::uint64_t RequestScheduler::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t RequestScheduler::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace canu::svc
