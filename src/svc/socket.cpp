#include "svc/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace canu::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

FdHandle make_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  return FdHandle(fd);
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CANU_CHECK_MSG(path.size() < sizeof addr.sun_path,
                 "socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CANU_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "invalid IPv4 host '" << host << "'");
  return addr;
}

}  // namespace

void FdHandle::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

FdHandle listen_unix(const std::string& path) {
  // Replace a stale socket file from a previous daemon; refuse to clobber
  // anything that is not a socket.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    CANU_CHECK_MSG(S_ISSOCK(st.st_mode),
                   "refusing to replace non-socket file " << path);
    if (::unlink(path.c_str()) != 0) throw_errno("unlink(" + path + ")");
  }
  FdHandle fd = make_socket(AF_UNIX);
  const sockaddr_un addr = unix_address(path);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

FdHandle listen_tcp(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port) {
  FdHandle fd = make_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = tcp_address(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) throw_errno("listen()");
  if (bound_port != nullptr) {
    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      throw_errno("getsockname()");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

FdHandle connect_unix(const std::string& path) {
  FdHandle fd = make_socket(AF_UNIX);
  const sockaddr_un addr = unix_address(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

FdHandle connect_tcp(const std::string& host, std::uint16_t port) {
  FdHandle fd = make_socket(AF_INET);
  const sockaddr_in addr = tcp_address(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

void write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL turns a vanished peer into EPIPE instead of a
    // process-killing SIGPIPE; pipes (the server's self-pipe) fall back to
    // plain write().
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write()");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("read()");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw Error("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool wait_readable(int fd, int stop_fd) {
  pollfd fds[2] = {{fd, POLLIN, 0}, {stop_fd, POLLIN, 0}};
  const nfds_t nfds = stop_fd >= 0 ? 2 : 1;
  for (;;) {
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll()");
    }
    // The stop pipe wins over pending data: a draining server answers the
    // request it is processing but takes no new frames.
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      return false;
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return true;
  }
}

FdHandle accept_or_stop(int listen_fd, int stop_fd) {
  for (;;) {
    if (!wait_readable(listen_fd, stop_fd)) return FdHandle();
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) return FdHandle(conn);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw_errno("accept()");
  }
}

}  // namespace canu::svc
