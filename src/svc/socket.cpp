#include "svc/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace canu::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

FdHandle make_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  return FdHandle(fd);
}

}  // namespace

UnixAddress resolve_unix(const std::string& path) {
  UnixAddress out;
  out.addr.sun_family = AF_UNIX;
  CANU_CHECK_MSG(!path.empty(), "empty unix socket path");
  CANU_CHECK_MSG(path.size() < sizeof out.addr.sun_path,
                 "socket path too long: " << path);
  if (path[0] == '@') {
    // Linux abstract namespace: a leading NUL and an exact length — the
    // name is the remaining bytes, NOT NUL-terminated.
    CANU_CHECK_MSG(path.size() > 1, "empty abstract socket name '@'");
    out.abstract = true;
    out.addr.sun_path[0] = '\0';
    std::memcpy(out.addr.sun_path + 1, path.data() + 1, path.size() - 1);
    out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                     path.size());
  } else {
    std::memcpy(out.addr.sun_path, path.c_str(), path.size() + 1);
    out.len = static_cast<socklen_t>(sizeof out.addr);
  }
  return out;
}

TcpAddress resolve_tcp(const std::string& host, std::uint16_t port) {
  TcpAddress out;
  // "[::1]" → "::1": brackets are URL/flag syntax, not address bytes.
  std::string bare = host;
  if (bare.size() >= 2 && bare.front() == '[' && bare.back() == ']') {
    bare = bare.substr(1, bare.size() - 2);
  }
  auto* v4 = reinterpret_cast<sockaddr_in*>(&out.addr);
  auto* v6 = reinterpret_cast<sockaddr_in6*>(&out.addr);
  if (::inet_pton(AF_INET, bare.c_str(), &v4->sin_addr) == 1) {
    v4->sin_family = AF_INET;
    v4->sin_port = htons(port);
    out.family = AF_INET;
    out.len = sizeof(sockaddr_in);
  } else if (::inet_pton(AF_INET6, bare.c_str(), &v6->sin6_addr) == 1) {
    v6->sin6_family = AF_INET6;
    v6->sin6_port = htons(port);
    out.family = AF_INET6;
    out.len = sizeof(sockaddr_in6);
  } else {
    throw Error("invalid IPv4/IPv6 host '" + host + "'");
  }
  return out;
}

void FdHandle::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

FdHandle listen_unix(const std::string& path) {
  const UnixAddress ua = resolve_unix(path);
  if (!ua.abstract) {
    // Replace a stale socket file from a previous daemon; refuse to
    // clobber anything that is not a socket.
    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0) {
      CANU_CHECK_MSG(S_ISSOCK(st.st_mode),
                     "refusing to replace non-socket file " << path);
      if (::unlink(path.c_str()) != 0) throw_errno("unlink(" + path + ")");
    }
  }
  FdHandle fd = make_socket(AF_UNIX);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&ua.addr),
             ua.len) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

FdHandle listen_tcp(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port) {
  const TcpAddress ta = resolve_tcp(host, port);
  FdHandle fd = make_socket(ta.family);
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&ta.addr),
             ta.len) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) throw_errno("listen()");
  if (bound_port != nullptr) {
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      throw_errno("getsockname()");
    }
    *bound_port =
        ta.family == AF_INET6
            ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
            : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
  }
  return fd;
}

FdHandle connect_unix(const std::string& path) {
  fault::inject("socket.connect");
  const UnixAddress ua = resolve_unix(path);
  FdHandle fd = make_socket(AF_UNIX);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&ua.addr),
                ua.len) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

FdHandle connect_tcp(const std::string& host, std::uint16_t port) {
  fault::inject("socket.connect");
  const TcpAddress ta = resolve_tcp(host, port);
  FdHandle fd = make_socket(ta.family);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&ta.addr),
                ta.len) != 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

void write_all(int fd, const void* data, std::size_t n) {
  fault::inject("socket.write");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL turns a vanished peer into EPIPE instead of a
    // process-killing SIGPIPE; pipes (the server's self-pipe) fall back to
    // plain write().
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write()");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  fault::inject("socket.read");
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("read()");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw Error("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool wait_readable(int fd, int stop_fd) {
  pollfd fds[2] = {{fd, POLLIN, 0}, {stop_fd, POLLIN, 0}};
  const nfds_t nfds = stop_fd >= 0 ? 2 : 1;
  for (;;) {
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll()");
    }
    // The stop pipe wins over pending data: a draining server answers the
    // request it is processing but takes no new frames.
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      return false;
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return true;
  }
}

FdHandle accept_or_stop(int listen_fd, int stop_fd) {
  for (;;) {
    if (!wait_readable(listen_fd, stop_fd)) return FdHandle();
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) return FdHandle(conn);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw_errno("accept()");
  }
}

bool peer_disconnected(int fd) noexcept {
  pollfd pfd{fd, POLLIN, 0};
  if (::poll(&pfd, 1, 0) <= 0) return false;
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    // Readable can mean EOF or a pipelined request; peek to tell them
    // apart without consuming the next frame.
    char byte;
    const ssize_t r = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    return r == 0;
  }
  return false;
}

}  // namespace canu::svc
