#include "svc/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"
#include "obs/version.hpp"
#include "svc/socket.hpp"
#include "svc/verbs.hpp"
#include "util/error.hpp"

namespace canu::svc {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

void check_protocol_version(const JsonValue& doc, const char* what) {
  const JsonValue* v = doc.find("canu");
  CANU_CHECK_MSG(v != nullptr, what << " missing protocol version");
  CANU_CHECK_MSG(v->as_u64() == kProtocolVersion,
                 what << " protocol version " << v->as_u64() << " != "
                      << kProtocolVersion);
}

std::uint64_t u64_or(const JsonValue& doc, const char* key,
                     std::uint64_t fallback) {
  const JsonValue* v = doc.find(key);
  return v == nullptr ? fallback : v->as_u64();
}

double number_or(const JsonValue& doc, const char* key, double fallback) {
  const JsonValue* v = doc.find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::string string_or(const JsonValue& doc, const char* key,
                      std::string fallback) {
  const JsonValue* v = doc.find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

bool bool_or(const JsonValue& doc, const char* key, bool fallback) {
  const JsonValue* v = doc.find(key);
  return v == nullptr ? fallback : v->as_bool();
}

/// Canonical double spelling shared by encoding and key derivation.
std::string canonical_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

}  // namespace

std::string encode_request(const Request& req) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("canu", kProtocolVersion);
  w.kv("verb", req.verb);
  w.key("args");
  w.begin_array();
  for (const std::string& a : req.args) w.value(a);
  w.end_array();
  w.kv("seed", req.params.seed);
  w.kv("scale", req.params.scale);
  w.kv("address_base", req.params.address_base);
  w.kv("threads", req.threads);
  w.kv("timeout_ms", req.timeout_ms);
  // Fleet-era fields ride along only when set, so a new client speaking to
  // an old daemon is indistinguishable from an old client unless it
  // actually uses the new machinery.
  if (req.accept_stream) w.kv("accept_stream", true);
  if (req.routed) w.kv("routed", true);
  if (!req.body.empty()) w.kv("body", req.body);
  w.end_object();
  return std::move(os).str();
}

Request decode_request(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  check_protocol_version(doc, "request");
  Request req;
  req.verb = doc.at("verb").as_string();
  if (const JsonValue* args = doc.find("args")) {
    for (const JsonValue& a : args->as_array()) {
      req.args.push_back(a.as_string());
    }
  }
  const WorkloadParams defaults;
  req.params.seed = u64_or(doc, "seed", defaults.seed);
  req.params.scale = number_or(doc, "scale", defaults.scale);
  CANU_CHECK_MSG(req.params.scale > 0, "request scale must be positive");
  req.params.address_base = u64_or(doc, "address_base", defaults.address_base);
  req.threads = static_cast<unsigned>(u64_or(doc, "threads", 0));
  req.timeout_ms = u64_or(doc, "timeout_ms", 0);
  req.accept_stream = bool_or(doc, "accept_stream", false);
  req.routed = bool_or(doc, "routed", false);
  req.body = string_or(doc, "body", "");
  return req;
}

std::string encode_response(const Response& resp) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("canu", kProtocolVersion);
  w.kv("status", resp.status);
  w.kv("version", resp.version);
  w.kv("exit_code", resp.exit_code);
  w.kv("wall_s", resp.wall_s);
  w.kv("result_cache_hit", resp.result_cache_hit);
  w.kv("coalesced", resp.coalesced);
  w.kv("cache_key", resp.cache_key);
  if (resp.streamed) {
    w.kv("streamed", true);
    w.kv("stream_chunks", resp.stream_chunks);
  }
  w.key("server");
  w.begin_object();
  w.kv("admitted", resp.server.admitted);
  w.kv("rejected", resp.server.rejected);
  w.kv("result_cache_hits", resp.server.result_cache_hits);
  w.kv("result_cache_misses", resp.server.result_cache_misses);
  w.kv("coalesced", resp.server.coalesced);
  w.kv("in_flight", resp.server.in_flight);
  w.kv("capacity", resp.server.capacity);
  w.kv("timed_out", resp.server.timed_out);
  w.kv("cancelled", resp.server.cancelled);
  w.kv("restored", resp.server.restored);
  w.kv("persisted", resp.server.persisted);
  w.kv("forwarded", resp.server.forwarded);
  w.kv("drained_in", resp.server.drained_in);
  w.end_object();
  w.kv("output", resp.output);
  w.kv("error", resp.error);
  w.end_object();
  return std::move(os).str();
}

Response decode_response(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  check_protocol_version(doc, "response");
  Response resp;
  resp.status = doc.at("status").as_string();
  resp.version = string_or(doc, "version", "");
  resp.exit_code = static_cast<int>(u64_or(doc, "exit_code", 0));
  resp.wall_s = number_or(doc, "wall_s", 0);
  resp.result_cache_hit = bool_or(doc, "result_cache_hit", false);
  resp.coalesced = bool_or(doc, "coalesced", false);
  resp.cache_key = string_or(doc, "cache_key", "");
  resp.streamed = bool_or(doc, "streamed", false);
  resp.stream_chunks = u64_or(doc, "stream_chunks", 0);
  if (const JsonValue* server = doc.find("server")) {
    resp.server.admitted = u64_or(*server, "admitted", 0);
    resp.server.rejected = u64_or(*server, "rejected", 0);
    resp.server.result_cache_hits = u64_or(*server, "result_cache_hits", 0);
    resp.server.result_cache_misses =
        u64_or(*server, "result_cache_misses", 0);
    resp.server.coalesced = u64_or(*server, "coalesced", 0);
    resp.server.in_flight = u64_or(*server, "in_flight", 0);
    resp.server.capacity = u64_or(*server, "capacity", 0);
    resp.server.timed_out = u64_or(*server, "timed_out", 0);
    resp.server.cancelled = u64_or(*server, "cancelled", 0);
    resp.server.restored = u64_or(*server, "restored", 0);
    resp.server.persisted = u64_or(*server, "persisted", 0);
    resp.server.forwarded = u64_or(*server, "forwarded", 0);
    resp.server.drained_in = u64_or(*server, "drained_in", 0);
  }
  resp.output = string_or(doc, "output", "");
  resp.error = string_or(doc, "error", "");
  return resp;
}

std::string encode_stream_chunk(std::string_view data) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("canu", kProtocolVersion);
  w.kv("stream", "chunk");
  w.kv("data", std::string(data));
  w.end_object();
  return std::move(os).str();
}

bool decode_stream_chunk(std::string_view json, std::string* data) {
  const JsonValue doc = JsonValue::parse(json);
  check_protocol_version(doc, "frame");
  const JsonValue* stream = doc.find("stream");
  if (stream == nullptr) return false;
  CANU_CHECK_MSG(stream->as_string() == "chunk",
                 "unknown stream frame kind '" << stream->as_string() << "'");
  *data = doc.at("data").as_string();
  return true;
}

void write_frame(int fd, std::string_view payload) {
  CANU_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                 "frame of " << payload.size() << " bytes exceeds limit");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(n >> 24),
      static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8),
      static_cast<unsigned char>(n),
  };
  write_all(fd, header, sizeof header);
  write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string* payload) {
  unsigned char header[4];
  if (!read_exact(fd, header, sizeof header)) return false;
  const std::uint32_t n = (std::uint32_t{header[0]} << 24) |
                          (std::uint32_t{header[1]} << 16) |
                          (std::uint32_t{header[2]} << 8) |
                          std::uint32_t{header[3]};
  CANU_CHECK_MSG(n <= kMaxFrameBytes,
                 "incoming frame of " << n << " bytes exceeds limit");
  payload->resize(n);
  if (n > 0 && !read_exact(fd, payload->data(), n)) {
    throw Error("connection closed mid-frame");
  }
  return true;
}

namespace {

/// FNV-1a over `s`, continuing from `h`.
std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Append one length-prefixed field, so adjacent fields can never alias
/// ("ab"+"c" vs "a"+"bc").
void field(std::string* canon, std::string_view value) {
  *canon += std::to_string(value.size());
  *canon += ':';
  *canon += value;
  *canon += ';';
}

}  // namespace

std::string canonical_request_key(const Request& req) {
  std::string canon;
  field(&canon, "canu" + std::to_string(kProtocolVersion));
  field(&canon, req.verb);
  // Args in canonical form: permuted-but-equivalent evaluate --grid specs
  // hash to one key (svc/verbs.hpp).
  for (const std::string& a : canonical_request_args(req)) field(&canon, a);
  field(&canon, std::to_string(req.params.seed));
  field(&canon, canonical_double(req.params.scale));
  field(&canon, std::to_string(req.params.address_base));
  for (const std::string& label : scheme_set_for(req)) field(&canon, label);
  field(&canon, obs::kVersion);

  // Two independent 64-bit FNV-1a streams give a 128-bit key: collisions
  // would silently serve one request's table for another, so headroom is
  // cheap insurance.
  const std::uint64_t lo = fnv1a(0xcbf29ce484222325ULL, canon);
  const std::uint64_t hi = fnv1a(0x84222325cbf29ce4ULL, canon);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 "%016" PRIx64, hi, lo);
  return buf;
}

}  // namespace canu::svc
