#include "svc/telemetry.hpp"

#include <cstring>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace canu::svc {

namespace {

constexpr std::array<double, 4> kQuantiles = {0.50, 0.90, 0.99, 0.999};
constexpr std::array<const char*, 4> kQuantileKeys = {"p50", "p90", "p99",
                                                      "p999"};

std::string window_key(unsigned seconds) {
  return std::to_string(seconds) + "s";
}

void write_latency_ms_json(obs::JsonWriter& w, const char* key,
                           const obs::LatencySnapshot& h) {
  w.key(key);
  w.begin_object();
  for (std::size_t q = 0; q < kQuantiles.size(); ++q) {
    w.kv(kQuantileKeys[q], h.quantile(kQuantiles[q]) / 1e6);
  }
  w.kv("mean", h.mean() / 1e6);
  w.end_object();
}

}  // namespace

std::size_t telemetry_verb_slot(const std::string& verb) noexcept {
  for (std::size_t i = 0; i + 1 < kVerbSlots; ++i) {
    if (verb == kTelemetryVerbs[i]) return i;
  }
  return kVerbSlots - 1;  // "other"
}

void ServiceTelemetry::record(const RequestRecord& rec) {
#ifdef CANU_OBS_DISABLED
  (void)rec;
#else
  const std::uint64_t now = now_s();
  requests_.record(now);
  if (rec.status == "overloaded") {
    rejections_.record(now);
  } else if (rec.cache == "hit") {
    warm_hits_.record(now);
  } else {
    misses_.record(now);
  }

  VerbCell& cell = verbs_[telemetry_verb_slot(rec.verb)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  if (rec.status != "ok") cell.errors.fetch_add(1, std::memory_order_relaxed);
  cell.wait_ns.record(static_cast<std::uint64_t>(rec.wait_ms * 1e6));
  cell.run_ns.record(static_cast<std::uint64_t>(rec.run_ms * 1e6));
  cell.total_ns.record(static_cast<std::uint64_t>(rec.total_ms * 1e6));

  {
    std::lock_guard<std::mutex> lock(recent_mutex_);
    recent_.push_back(rec);
    if (recent_.size() > kRecentCapacity) recent_.pop_front();
  }
#endif
}

TelemetrySnapshot ServiceTelemetry::snapshot(const GaugeSample& gauges) const {
  TelemetrySnapshot snap;
  snap.uptime_s = uptime_s();
  snap.requests = requests_.total();
  snap.warm_hits = warm_hits_.total();
  snap.misses = misses_.total();
  snap.rejections = rejections_.total();
  const std::uint64_t now = now_s();
  for (std::size_t i = 0; i < kTelemetryWindows.size(); ++i) {
    WindowSnapshot& win = snap.windows[i];
    win.seconds = kTelemetryWindows[i];
    win.requests = requests_.sum(now, win.seconds);
    win.warm_hits = warm_hits_.sum(now, win.seconds);
    win.misses = misses_.sum(now, win.seconds);
    win.rejections = rejections_.sum(now, win.seconds);
  }
  snap.gauges = gauges;
  for (std::size_t i = 0; i < kVerbSlots; ++i) {
    const VerbCell& cell = verbs_[i];
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    VerbSnapshot v;
    v.verb = kTelemetryVerbs[i];
    v.count = count;
    v.errors = cell.errors.load(std::memory_order_relaxed);
    v.wait_ns = cell.wait_ns.snapshot();
    v.run_ns = cell.run_ns.snapshot();
    v.total_ns = cell.total_ns.snapshot();
    snap.verbs.push_back(std::move(v));
  }
  return snap;
}

std::vector<RequestRecord> ServiceTelemetry::recent(std::size_t n) const {
  std::vector<RequestRecord> out;
  std::lock_guard<std::mutex> lock(recent_mutex_);
  const std::size_t take = n < recent_.size() ? n : recent_.size();
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(recent_[recent_.size() - 1 - i]);  // newest first
  }
  return out;
}

void write_windows_json(obs::JsonWriter& w, const TelemetrySnapshot& snap) {
  w.key("windows");
  w.begin_object();
  for (const WindowSnapshot& win : snap.windows) {
    w.key(window_key(win.seconds));
    w.begin_object();
    w.kv("requests", win.requests);
    w.kv("warm_hits", win.warm_hits);
    w.kv("misses", win.misses);
    w.kv("rejections", win.rejections);
    w.kv("rps", win.rps());
    w.kv("warm_hit_ratio", win.warm_hit_ratio());
    w.kv("rejection_rate", win.rejection_rate());
    w.end_object();
  }
  w.end_object();
}

void write_verb_latency_json(obs::JsonWriter& w, const VerbSnapshot& v) {
  w.kv("count", v.count);
  w.kv("errors", v.errors);
  // Legacy rollup keys (PR 5 consumers read these), now sourced from the
  // sub-bucketed histograms.
  w.kv("p50_ms", v.total_ns.quantile(0.50) / 1e6);
  w.kv("p99_ms", v.total_ns.quantile(0.99) / 1e6);
  w.kv("mean_ms", v.total_ns.mean() / 1e6);
  write_latency_ms_json(w, "wait_ms", v.wait_ns);
  write_latency_ms_json(w, "run_ms", v.run_ns);
  write_latency_ms_json(w, "total_ms", v.total_ns);
}

void TelemetrySnapshot::write_json(std::ostream& os) const {
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("canud", version);
  if (!shard.empty()) w.kv("shard", shard);
  w.kv("uptime_s", uptime_s);
  w.key("totals");
  w.begin_object();
  w.kv("requests", requests);
  w.kv("warm_hits", warm_hits);
  w.kv("misses", misses);
  w.kv("rejections", rejections);
  w.end_object();
  write_windows_json(w, *this);
  w.key("gauges");
  w.begin_object();
  w.kv("queue_interactive", gauges.queue_interactive);
  w.kv("queue_batch", gauges.queue_batch);
  w.kv("in_flight", gauges.in_flight);
  w.kv("capacity", gauges.capacity);
  w.kv("threads", gauges.threads);
  w.kv("result_cache_entries", gauges.result_cache_entries);
  w.kv("result_cache_bytes", gauges.result_cache_bytes);
  w.kv("journal_bytes", gauges.journal_bytes);
  w.end_object();
  w.key("verbs");
  w.begin_object();
  for (const VerbSnapshot& v : verbs) {
    w.key(v.verb);
    w.begin_object();
    write_verb_latency_json(w, v);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

void TelemetrySnapshot::write_prometheus(std::ostream& os) const {
  // A sharded daemon labels every sample; `bare` decorates label-less
  // metrics and `lead` opens the label set of metrics that already have
  // labels. An empty shard leaves both empty, so unsharded output is
  // byte-identical to pre-fleet builds.
  const std::string bare =
      shard.empty() ? "" : "{shard=\"" + shard + "\"}";
  const std::string lead = shard.empty() ? "" : "shard=\"" + shard + "\",";

  os << "# HELP canud_uptime_seconds Seconds since the daemon started.\n"
     << "# TYPE canud_uptime_seconds gauge\n"
     << "canud_uptime_seconds" << bare << " " << uptime_s << "\n";

  os << "# HELP canud_requests_total Requests answered, by outcome class.\n"
     << "# TYPE canud_requests_total counter\n"
     << "canud_requests_total" << bare << " " << requests << "\n";
  os << "# TYPE canud_warm_hits_total counter\n"
     << "canud_warm_hits_total" << bare << " " << warm_hits << "\n";
  os << "# TYPE canud_misses_total counter\n"
     << "canud_misses_total" << bare << " " << misses << "\n";
  os << "# TYPE canud_rejections_total counter\n"
     << "canud_rejections_total" << bare << " " << rejections << "\n";

  os << "# HELP canud_rps Request rate over a sliding window.\n"
     << "# TYPE canud_rps gauge\n";
  for (const WindowSnapshot& win : windows) {
    os << "canud_rps{" << lead << "window=\"" << window_key(win.seconds)
       << "\"} " << win.rps() << "\n";
  }
  os << "# HELP canud_warm_hit_ratio Result-cache hit ratio over a sliding "
        "window.\n"
     << "# TYPE canud_warm_hit_ratio gauge\n";
  for (const WindowSnapshot& win : windows) {
    os << "canud_warm_hit_ratio{" << lead << "window=\""
       << window_key(win.seconds) << "\"} " << win.warm_hit_ratio() << "\n";
  }
  os << "# HELP canud_rejection_rate Overload rejection rate over a sliding "
        "window.\n"
     << "# TYPE canud_rejection_rate gauge\n";
  for (const WindowSnapshot& win : windows) {
    os << "canud_rejection_rate{" << lead << "window=\""
       << window_key(win.seconds) << "\"} " << win.rejection_rate() << "\n";
  }

  os << "# HELP canud_queue_depth Queued requests per priority class.\n"
     << "# TYPE canud_queue_depth gauge\n"
     << "canud_queue_depth{" << lead << "class=\"interactive\"} "
     << gauges.queue_interactive << "\n"
     << "canud_queue_depth{" << lead << "class=\"batch\"} "
     << gauges.queue_batch << "\n";
  os << "# TYPE canud_in_flight_requests gauge\n"
     << "canud_in_flight_requests" << bare << " " << gauges.in_flight << "\n";
  os << "# TYPE canud_result_cache_entries gauge\n"
     << "canud_result_cache_entries" << bare << " "
     << gauges.result_cache_entries << "\n";
  os << "# TYPE canud_result_cache_bytes gauge\n"
     << "canud_result_cache_bytes" << bare << " " << gauges.result_cache_bytes
     << "\n";
  os << "# TYPE canud_journal_bytes gauge\n"
     << "canud_journal_bytes" << bare << " " << gauges.journal_bytes << "\n";

  os << "# HELP canud_request_seconds Request latency (admission to "
        "response) per verb.\n"
     << "# TYPE canud_request_seconds summary\n";
  for (const VerbSnapshot& v : verbs) {
    for (std::size_t q = 0; q < kQuantiles.size(); ++q) {
      os << "canud_request_seconds{" << lead << "verb=\"" << v.verb
         << "\",quantile=\"" << kQuantiles[q] << "\"} "
         << v.total_ns.quantile(kQuantiles[q]) / 1e9 << "\n";
    }
    os << "canud_request_seconds_sum{" << lead << "verb=\"" << v.verb
       << "\"} " << static_cast<double>(v.total_ns.sum) / 1e9 << "\n";
    os << "canud_request_seconds_count{" << lead << "verb=\"" << v.verb
       << "\"} " << v.total_ns.count << "\n";
  }
}

}  // namespace canu::svc
