// Client library for the canud daemon: connect, send one framed request,
// read the framed response. Used by `canu submit` / `canu status` and by
// any program that wants simulation results without paying trace
// generation and scheme construction per invocation.
#pragma once

#include <cstdint>
#include <string>

#include "svc/protocol.hpp"

namespace canu::svc {

/// Where the daemon lives. A non-empty Unix path wins over TCP.
struct Endpoint {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;

  bool configured() const noexcept {
    return !unix_path.empty() || port >= 0;
  }
  std::string describe() const;
};

class Client {
 public:
  explicit Client(Endpoint endpoint);

  /// One request→response round trip on a fresh connection; throws
  /// canu::Error on connection or protocol failure. Server-side failures
  /// come back as Response.status "error"/"overloaded", not exceptions.
  Response call(const Request& req) const;

  const Endpoint& endpoint() const noexcept { return endpoint_; }

 private:
  Endpoint endpoint_;
};

}  // namespace canu::svc
