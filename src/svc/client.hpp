// Client library for the canud daemon: connect, send one framed request,
// read the framed response. Used by `canu submit` / `canu status` and by
// any program that wants simulation results without paying trace
// generation and scheme construction per invocation.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "svc/protocol.hpp"

namespace canu::svc {

/// Where the daemon lives. A non-empty Unix path wins over TCP.
struct Endpoint {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;

  bool configured() const noexcept {
    return !unix_path.empty() || port >= 0;
  }
  std::string describe() const;
};

/// Retry behaviour of call_with_retry: exponential backoff with
/// decorrelated jitter (each sleep drawn uniformly from [base, min(cap,
/// prev*3)]) on transient failures — `overloaded` replies (exit 75) and
/// connect/transport errors. Non-transient outcomes (verb errors,
/// deadline_exceeded, protocol mismatches) return/throw immediately.
struct RetryPolicy {
  unsigned attempts = 1;  ///< total tries, including the first (1 = none)
  std::chrono::milliseconds base{50};
  std::chrono::milliseconds cap{2000};
  /// Overall budget across attempts and sleeps; 0 = none. Wired from
  /// --timeout-ms so retries never outlive the caller's deadline.
  std::chrono::milliseconds budget{0};
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter RNG seed
};

class Client {
 public:
  explicit Client(Endpoint endpoint);

  /// One request→response round trip on a fresh connection; throws
  /// canu::Error on connection or protocol failure. Server-side failures
  /// come back as Response.status "error"/"overloaded", not exceptions.
  Response call(const Request& req) const;

  /// call(), retried per `policy`. The last attempt's outcome is returned
  /// (or its transport error rethrown) once attempts or budget run out.
  /// `attempts_made` (optional) reports how many calls were issued.
  Response call_with_retry(const Request& req, const RetryPolicy& policy,
                           unsigned* attempts_made = nullptr) const;

  /// call() with frame-per-chunk streaming (DESIGN.md §16): sets
  /// accept_stream on the wire and invokes `sink` with each chunk as it
  /// arrives, before the final response frame. The returned
  /// Response.output holds only the unstreamed tail; sink bytes + output
  /// equal the non-streamed output exactly. Retries per `policy`, but only
  /// while zero chunks have reached the sink — once output is delivered a
  /// retry would duplicate it, so later transport errors throw instead.
  Response call_streamed(const Request& req,
                         const std::function<void(std::string_view)>& sink,
                         const RetryPolicy& policy = {}) const;

  const Endpoint& endpoint() const noexcept { return endpoint_; }

 private:
  Endpoint endpoint_;
};

}  // namespace canu::svc
