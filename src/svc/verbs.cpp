#include "svc/verbs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <ostream>
#include <thread>

#include "cache/config_grid.hpp"
#include "core/advisor.hpp"
#include "core/evaluator.hpp"
#include "obs/obs.hpp"
#include "obs/version.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "stats/three_c.hpp"
#include "trace/trace_cache.hpp"
#include "util/cli_flags.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace canu::svc {

Trace env_cached_workload_trace(const std::string& name,
                                const WorkloadParams& params) {
  const std::string dir = default_trace_cache_dir();
  if (dir.empty()) return generate_workload(name, params);
  const TraceCache cache(dir);
  return cached_workload_trace(name, params, &cache);
}

namespace {

int usage_error(std::ostream& err, const std::string& verb) {
  print_verb_usage(err, verb);
  return 1;
}

int cmd_list(std::ostream& out) {
  out << "workloads:\n";
  TextTable table;
  table.set_header({"name", "suite", "description"});
  for (const WorkloadInfo& w : all_workloads()) {
    table.add_row({w.name, w.suite, w.description});
  }
  table.print(out);
  out << "\nschemes: " << scheme_spec_names() << "\n";
  return 0;
}

int cmd_run(const Request& req, std::ostream& out, std::ostream& err,
            const VerbOptions& options) {
  if (req.args.size() < 2) return usage_error(err, "run");
  const Trace trace = env_cached_workload_trace(req.args[0], req.params);
  const SchemeSpec spec = parse_scheme_spec(req.args[1]);
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  // --threads 1 (or CANU_THREADS=1) takes the exact serial run_trace path;
  // more threads — or the daemon's shared pool — replay through the
  // parallel batch engine, which is bit-for-bit identical per pipeline.
  RunResult r;
  std::optional<ThreadPool> owned;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    const unsigned threads = resolve_thread_count(req.threads);
    if (threads > 1) owned.emplace(threads);
    pool = owned ? &*owned : nullptr;
  }
  if (pool != nullptr) {
    ParallelBatchRunner runner(RunConfig(), pool);
    runner.set_cancel(options.cancel);
    runner.add(*model);
    SpanSource source(trace.name(), trace.refs());
    r = run_batch(runner, source).front();
  } else {
    r = run_trace(*model, trace);
  }

  out << req.args[0] << " under " << spec.label() << " (" << trace.size()
      << " refs)\n";
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"miss rate %", TextTable::num(100.0 * r.miss_rate(), 4)});
  table.add_row({"AMAT (cycles)", TextTable::num(r.amat, 3)});
  table.add_row({"measured AMAT", TextTable::num(r.measured_amat, 3)});
  table.add_row({"L1 misses", std::to_string(r.l1.misses)});
  table.add_row({"L2 miss rate %", TextTable::num(100.0 * r.l2.miss_rate(), 3)});
  table.add_row({"alternate hits", std::to_string(r.l1.secondary_hits)});
  table.add_row({"FMS sets", std::to_string(r.uniformity.fms)});
  table.add_row({"LAS sets", std::to_string(r.uniformity.las)});
  table.add_row({"miss skewness",
                 TextTable::num(r.uniformity.miss_moments.skewness, 2)});
  table.add_row({"miss kurtosis",
                 TextTable::num(r.uniformity.miss_moments.kurtosis, 2)});
  table.print(out);
  return 0;
}

/// Split an evaluate request's args into the grid flag, grid dimension
/// tokens, and everything else (suite/workload/group names) — the shared
/// vocabulary of cmd_evaluate, scheme_set_for and canonical_request_args.
struct EvaluateArgs {
  bool grid = false;
  std::vector<std::string> dims;
  std::vector<std::string> rest;
};

EvaluateArgs split_evaluate_args(const std::vector<std::string>& args) {
  EvaluateArgs split;
  for (const std::string& a : args) {
    if (a == "--grid") {
      split.grid = true;
    } else if (is_grid_dimension_token(a)) {
      split.dims.push_back(a);
    } else {
      split.rest.push_back(a);
    }
  }
  return split;
}

/// Strip the sampling tokens (--sample[=K], --sample-seed=S, --max-error=P)
/// out of `args` in place and return the parsed spec — shared by evaluate
/// and advise (the two sampling-capable verbs). Throws canu::Error on a
/// malformed value or a sampling tuning flag without --sample.
SampleSpec strip_sample_args(std::vector<std::string>& args) {
  SampleSpec sample;
  bool have_seed = false;
  bool have_max_error = false;
  std::vector<std::string> kept;
  std::string value;
  std::string error;
  for (const std::string& a : args) {
    if (a == "--sample") {
      sample.enabled = true;
    } else if (flag_value(a, "--sample", &value)) {
      const auto v = parse_u64(value, "--sample value", &error);
      if (!v) throw Error(error);
      sample.enabled = true;
      sample.clusters = static_cast<std::size_t>(*v);
    } else if (flag_value(a, "--sample-seed", &value)) {
      const auto v = parse_u64(value, "--sample-seed value", &error);
      if (!v) throw Error(error);
      sample.seed = *v;
      have_seed = true;
    } else if (flag_value(a, "--max-error", &value)) {
      const auto v = parse_positive_double(value, "--max-error value", &error);
      if (!v) throw Error(error);
      sample.max_error_pct = *v;
      have_max_error = true;
    } else {
      kept.push_back(a);
    }
  }
  if (!sample.enabled && (have_seed || have_max_error)) {
    throw Error(std::string(have_seed ? "--sample-seed" : "--max-error") +
                " requires --sample");
  }
  args = std::move(kept);
  return sample;
}

int cmd_evaluate(const Request& req, std::ostream& out, std::ostream& err,
                 const VerbOptions& options) {
  std::vector<std::string> args = req.args;
  const SampleSpec sample = strip_sample_args(args);
  const EvaluateArgs split = split_evaluate_args(args);
  if (!split.grid && !split.dims.empty()) {
    err << "grid dimension tokens (" << split.dims[0]
        << ", ...) require --grid\n";
    return 1;
  }
  if (split.rest.empty()) return usage_error(err, "evaluate");
  const std::string& what = split.rest[0];
  std::vector<std::string> workloads = workload_names(what);
  if (workloads.empty()) {
    if (!find_workload(what)) {
      err << "unknown suite or workload '" << what << "'\n";
      return 1;
    }
    workloads = {what};
  }

  EvalOptions opt;
  opt.params = req.params;
  opt.threads = req.threads;
  opt.pool = options.pool;
  opt.cancel = options.cancel;
  opt.trace_cache_dir = default_trace_cache_dir();
  opt.sample = sample;
  opt.request_id = options.request_id;
  if (options.progress) {
    opt.progress = obs::make_progress_printer(options.progress_force);
  }

  if (split.grid) {
    if (split.rest.size() > 1) {
      err << "evaluate --grid takes dimension tokens, not a scheme group "
             "('"
          << split.rest[1] << "')\n";
      return 1;
    }
    const ConfigGrid grid = ConfigGrid::parse(split.dims);
    // Stream each workload's section as it completes: a flush per section
    // makes a chunk boundary, so a daemon answering a streaming client
    // ships the first table after ONE workload instead of after the whole
    // sweep. sections + tail == GridReport::print() byte-for-byte.
    opt.grid_sink = [&out](const std::string& section) {
      out << section << std::flush;
    };
    const GridReport rep = Evaluator(opt).evaluate_grid(grid, workloads);
    rep.print_tail(out);
    return 0;
  }

  const std::string group = split.rest.size() > 1 ? split.rest[1] : "all";
  Evaluator ev(opt);
  if (group == "indexing" || group == "all") ev.add_paper_indexing_schemes();
  if (group == "assoc" || group == "all") ev.add_paper_assoc_schemes();
  if (group == "extensions") {
    ev.add_scheme(SchemeSpec::partner_cache());
    ev.add_scheme(SchemeSpec::skewed_assoc(2));
    ev.add_scheme(SchemeSpec::victim_cache());
  }
  if (ev.schemes().empty()) {
    err << "unknown scheme group '" << group
        << "' (indexing|assoc|extensions|all)\n";
    return 1;
  }
  const EvalReport rep = ev.evaluate(workloads);
  rep.print_miss_reduction(out);
  out << "\n";
  rep.print_amat_reduction(out);
  if (rep.any_sampled()) {
    out << "\n";
    rep.print_sampling(out);
  }
  return 0;
}

int cmd_advise(const Request& req, std::ostream& out, std::ostream& err,
               const VerbOptions& options) {
  std::vector<std::string> args = req.args;
  const SampleSpec sample = strip_sample_args(args);
  if (args.empty()) return usage_error(err, "advise");
  Advisor::Options aopt;
  aopt.threads = req.threads;
  aopt.pool = options.pool;
  aopt.cancel = options.cancel;
  aopt.sample = sample;
  aopt.request_id = options.request_id;
  const AdvisorReport rep = Advisor(aopt).advise_workload(args[0], req.params);
  const bool sampled =
      std::any_of(rep.ranked.begin(), rep.ranked.end(),
                  [](const AdvisorChoice& c) { return c.result.sample.sampled; });
  TextTable table;
  if (sampled) {
    table.set_header({"rank", "scheme", "miss rate %", "±CI95", "miss red. %"});
  } else {
    table.set_header({"rank", "scheme", "miss rate %", "miss red. %"});
  }
  int rank = 1;
  for (const AdvisorChoice& c : rep.ranked) {
    if (sampled) {
      table.add_row({std::to_string(rank++), c.scheme.label(),
                     TextTable::num(100.0 * c.result.miss_rate(), 3),
                     TextTable::num(100.0 * c.result.sample.miss_rate_ci95, 3),
                     TextTable::num(c.miss_reduction_pct, 2)});
    } else {
      table.add_row({std::to_string(rank++), c.scheme.label(),
                     TextTable::num(100.0 * c.result.miss_rate(), 3),
                     TextTable::num(c.miss_reduction_pct, 2)});
    }
  }
  table.print(out);
  if (sampled) {
    const SampleInfo& info = rep.ranked.front().result.sample;
    out << "sampled estimates: " << info.clusters << " clusters, "
        << info.intervals_measured << "/" << info.intervals_total
        << " intervals measured\n";
  } else if (sample.enabled && !rep.ranked.empty() &&
             !rep.ranked.front().result.sample.note.empty()) {
    out << "exact replay: " << rep.ranked.front().result.sample.note << "\n";
  }
  out << (rep.keep_conventional()
              ? "recommendation: keep conventional indexing\n"
              : "recommendation: " + rep.best().scheme.label() + "\n");
  return 0;
}

int cmd_threec(const Request& req, std::ostream& out, std::ostream& err,
               const VerbOptions& options) {
  if (req.args.empty()) return usage_error(err, "threec");
  const Trace trace = env_cached_workload_trace(req.args[0], req.params);
  const SchemeSpec spec = req.args.size() > 1 ? parse_scheme_spec(req.args[1])
                                              : SchemeSpec::baseline();
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  std::optional<ThreadPool> owned;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    const unsigned threads = resolve_thread_count(req.threads);
    if (threads > 1) owned.emplace(threads);
    pool = owned ? &*owned : nullptr;
  }
  const ThreeCReport r = classify_misses_paper_l1(*model, trace, pool);
  out << req.args[0] << " under " << spec.label() << ":\n"
      << "  accesses    " << r.accesses << "\n"
      << "  misses      " << r.total_misses << " ("
      << TextTable::num(100.0 * r.miss_rate(), 3) << "%)\n"
      << "  compulsory  " << r.compulsory << "\n"
      << "  capacity    " << r.capacity << "\n"
      << "  conflict    " << r.conflict << " ("
      << TextTable::num(100.0 * r.conflict_fraction(), 1)
      << "% of misses)\n";
  return 0;
}

int cmd_version(std::ostream& out) {
  out << "canu " << obs::kVersion << "\n";
  return 0;
}

/// Diagnostic round trip for health checks and the overload/drain tests:
/// optional arg = milliseconds to hold an execution slot (capped so a typo
/// cannot wedge a worker for minutes). The sleep runs in 10ms slices so a
/// deadline or disconnect cancels a parked ping promptly.
int cmd_ping(const Request& req, std::ostream& out, std::ostream& err,
             const VerbOptions& options) {
  std::uint64_t delay_ms = 0;
  if (!req.args.empty()) {
    std::string error;
    const auto v = parse_u64(req.args[0], "ping delay", &error);
    if (!v) {
      err << error << "\n";
      return 1;
    }
    delay_ms = std::min<std::uint64_t>(*v, 10'000);
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(delay_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (options.cancel != nullptr) options.cancel->check();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::uint64_t>(delay_ms, 10)));
  }
  out << "pong\n";
  return 0;
}

}  // namespace

int run_verb(const Request& req, std::ostream& out, std::ostream& err,
             const VerbOptions& options) {
  obs::Span span =
      options.request_id != 0
          ? obs::Span("svc", "verb " + req.verb, "req", options.request_id)
          : obs::Span("svc", "verb " + req.verb);
  // A request that expired while queued never starts executing.
  if (options.cancel != nullptr) options.cancel->check();
  if (req.verb == "list") return cmd_list(out);
  if (req.verb == "run") return cmd_run(req, out, err, options);
  if (req.verb == "evaluate") return cmd_evaluate(req, out, err, options);
  if (req.verb == "advise") return cmd_advise(req, out, err, options);
  if (req.verb == "threec") return cmd_threec(req, out, err, options);
  if (req.verb == "version") return cmd_version(out);
  if (req.verb == "ping") return cmd_ping(req, out, err, options);
  err << "unknown verb '" << req.verb << "'\n";
  return 1;
}

bool verb_is_servable(const std::string& verb) {
  return verb == "list" || verb == "run" || verb == "evaluate" ||
         verb == "advise" || verb == "threec" || verb == "version" ||
         verb == "ping";
}

bool verb_is_cacheable(const std::string& verb) {
  return verb_is_servable(verb) && verb != "ping";
}

std::vector<std::string> scheme_set_for(const Request& req) {
  std::vector<std::string> labels;
  const auto push_spec = [&labels](const SchemeSpec& spec) {
    labels.push_back(spec.label());
  };
  try {
    if (req.verb == "run" && req.args.size() >= 2) {
      push_spec(parse_scheme_spec(req.args[1]));
    } else if (req.verb == "evaluate") {
      std::vector<std::string> args = req.args;
      strip_sample_args(args);  // sampling doesn't change the scheme set
      const EvaluateArgs split = split_evaluate_args(args);
      if (split.grid) {
        for (const GridPoint& pt : ConfigGrid::parse(split.dims).cells()) {
          labels.push_back(pt.label());
        }
        return labels;
      }
      const std::string group = split.rest.size() > 1 ? split.rest[1] : "all";
      Evaluator ev;
      if (group == "indexing" || group == "all") {
        ev.add_paper_indexing_schemes();
      }
      if (group == "assoc" || group == "all") ev.add_paper_assoc_schemes();
      if (group == "extensions") {
        ev.add_scheme(SchemeSpec::partner_cache());
        ev.add_scheme(SchemeSpec::skewed_assoc(2));
        ev.add_scheme(SchemeSpec::victim_cache());
      }
      for (const SchemeSpec& s : ev.schemes()) push_spec(s);
    } else if (req.verb == "advise") {
      for (const SchemeSpec& s : Advisor().candidates()) push_spec(s);
    } else if (req.verb == "threec") {
      push_spec(req.args.size() > 1 ? parse_scheme_spec(req.args[1])
                                    : SchemeSpec::baseline());
    }
  } catch (const Error&) {
    // Unparseable scheme names: the request will fail during execution and
    // never be cached, so an empty set is fine.
    labels.clear();
  }
  return labels;
}

std::vector<std::string> canonical_request_args(const Request& req) {
  if (req.verb != "evaluate" && req.verb != "advise") return req.args;
  try {
    // Sampling params are request identity: two sampled requests that
    // differ only in token order or spelled-out defaults must share one
    // result-cache entry, while sampled and exact runs of the same spec
    // (estimates vs ground truth) must not. Canonical form strips the
    // tokens, then re-appends them fully expanded in a fixed order.
    std::vector<std::string> canon = req.args;
    const SampleSpec sample = strip_sample_args(canon);
    if (req.verb == "evaluate") {
      const EvaluateArgs split = split_evaluate_args(canon);
      if (split.grid) {
        const ConfigGrid grid = ConfigGrid::parse(split.dims);
        canon = split.rest;
        canon.emplace_back("--grid");
        for (std::string& token : grid.canonical_tokens()) {
          canon.push_back(std::move(token));
        }
      }
    }
    if (sample.enabled) {
      canon.push_back("--sample=" + std::to_string(sample.clusters));
      canon.push_back("--sample-seed=" + std::to_string(sample.seed));
      char buf[48];
      std::snprintf(buf, sizeof buf, "--max-error=%.17g", sample.max_error_pct);
      canon.emplace_back(buf);
    }
    return canon;
  } catch (const Error&) {
    // Malformed grid/sampling spec: execution will fail and the result is
    // never cached, so the literal args are as good a key as any.
    return req.args;
  }
}

}  // namespace canu::svc
