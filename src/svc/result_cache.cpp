#include "svc/result_cache.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace canu::svc {

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  CANU_CHECK_MSG(max_entries > 0, "result cache needs at least one entry");
}

ResultCache::Lookup ResultCache::acquire(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Lookup result;
  if (auto it = done_.find(key); it != done_.end()) {
    ++hits_;
    obs::count(obs::Counter::kSvcResultCacheHits);
    result.role = Role::kHit;
    result.hit = it->second;
    return result;
  }
  if (auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++coalesced_;
    obs::count(obs::Counter::kSvcCoalescedRequests);
    result.role = Role::kJoined;
    result.pending = it->second->future;
    return result;
  }
  ++misses_;
  obs::count(obs::Counter::kSvcResultCacheMisses);
  auto flight = std::make_shared<InFlight>();
  flight->future = flight->promise.get_future().share();
  result.role = Role::kOwner;
  result.pending = flight->future;
  in_flight_.emplace(key, std::move(flight));
  return result;
}

void ResultCache::complete(const std::string& key, ResultPtr result) {
  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(key);
    CANU_CHECK_MSG(it != in_flight_.end(),
                   "complete() for key with no in-flight owner: " << key);
    flight = std::move(it->second);
    in_flight_.erase(it);
    if (result->status == "ok") {
      done_.emplace(key, result);
      order_.push_back(key);
      while (order_.size() > max_entries_) {
        done_.erase(order_.front());
        order_.pop_front();
      }
    }
  }
  // Resolve waiters outside the lock: their continuations run on their own
  // threads and must not serialize against new acquires.
  flight->promise.set_value(std::move(result));
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

}  // namespace canu::svc
