#include "svc/result_cache.hpp"

#include <iostream>

#include "obs/obs.hpp"
#include "svc/journal.hpp"
#include "util/error.hpp"

namespace canu::svc {

ResultCache::ResultCache(std::size_t max_entries,
                         const std::string& journal_path)
    : max_entries_(max_entries) {
  CANU_CHECK_MSG(max_entries > 0, "result cache needs at least one entry");
  if (journal_path.empty()) return;
  journal_ = std::make_unique<ResultJournal>(journal_path);
  for (ResultJournal::Record& rec : journal_->load()) {
    if (done_.emplace(rec.key, std::make_shared<const CachedResult>(
                                   std::move(rec.result)))
            .second) {
      order_.push_back(std::move(rec.key));
      while (order_.size() > max_entries_) {
        done_.erase(order_.front());
        order_.pop_front();
      }
    }
  }
  restored_ = done_.size();
  obs::count(obs::Counter::kSvcJournalRestored,
             static_cast<std::uint64_t>(done_.size()));
  if (journal_->recovered_corrupt_tail()) {
    obs::count(obs::Counter::kSvcJournalRecoveries);
    std::cerr << "[canud] result journal '" << journal_path
              << "': corrupt tail truncated, " << done_.size()
              << " entries restored\n";
  }
  compactor_ = std::thread([this] { compactor_loop(); });
}

ResultCache::~ResultCache() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    compaction_cv_.notify_all();
    compactor_.join();
  }
}

void ResultCache::journal_append_locked(const std::string& key,
                                        const CachedResult& result) {
  if (!journal_ || journal_degraded_) return;
  try {
    journal_->append(key, result);
    ++persisted_;
  } catch (const Error& e) {
    // Persistence is an optimization: never fail the request over it, but
    // stop writing — a half-broken disk must not burn time per request.
    journal_degraded_ = true;
    std::cerr << "[canud] result journal degraded to memory-only: "
              << e.what() << "\n";
    return;
  }
  if (compaction_queued_ || compaction_running_) {
    // The file this record just landed in is about to be replaced; record
    // it in the delta so finish_compaction() carries it across the rename.
    compaction_delta_.push_back({key, result});
    return;
  }
  if (journal_->wants_compaction(done_.size())) {
    // The append path used to pay the full rewrite here; now it only
    // snapshots the live set (already in memory) and wakes the worker.
    compaction_snapshot_ = snapshot_live_locked();
    compaction_delta_.clear();
    compaction_queued_ = true;
    compaction_cv_.notify_all();
  }
}

std::vector<ResultCache::JournalEntry> ResultCache::snapshot_live_locked()
    const {
  std::vector<JournalEntry> live;
  live.reserve(order_.size());
  for (const std::string& k : order_) {
    if (auto it = done_.find(k); it != done_.end()) {
      live.push_back({k, *it->second});
    }
  }
  return live;
}

void ResultCache::compactor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    compaction_cv_.wait(lock,
                        [this] { return stopping_ || compaction_queued_; });
    if (stopping_ && !compaction_queued_) return;
    compaction_queued_ = false;
    compaction_running_ = true;
    std::vector<JournalEntry> snapshot = std::move(compaction_snapshot_);
    compaction_snapshot_.clear();
    lock.unlock();

    // Phase one — the bulk of the work — runs without the cache lock:
    // requests keep appending to the old file while we write the new one.
    std::vector<ResultJournal::Record> records;
    records.reserve(snapshot.size());
    for (JournalEntry& e : snapshot) {
      records.push_back({std::move(e.key), std::move(e.result)});
    }
    ResultJournal::CompactionToken token;
    bool begun = false;
    try {
      token = journal_->begin_compaction(records);
      begun = true;
    } catch (const Error& e) {
      std::cerr << "[canud] journal compaction failed (will retry): "
                << e.what() << "\n";
    }

    lock.lock();
    if (begun) {
      // Phase two under the lock: splice in whatever arrived mid-rewrite
      // and rename. Cost is proportional to the delta, not the live set.
      std::vector<ResultJournal::Record> delta;
      delta.reserve(compaction_delta_.size());
      for (JournalEntry& e : compaction_delta_) {
        delta.push_back({std::move(e.key), std::move(e.result)});
      }
      try {
        journal_->finish_compaction(token, delta);
        ++compactions_;
        obs::count(obs::Counter::kSvcJournalCompactions);
      } catch (const Error& e) {
        // The pre-compaction journal still holds every record (appends
        // never stopped); the next wants_compaction() tries again.
        std::cerr << "[canud] journal compaction failed (will retry): "
                  << e.what() << "\n";
      }
    }
    compaction_delta_.clear();
    compaction_running_ = false;
    compaction_cv_.notify_all();
  }
}

void ResultCache::wait_compaction_idle() {
  if (!compactor_.joinable()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  compaction_cv_.wait(lock, [this] {
    return !compaction_queued_ && !compaction_running_;
  });
}

ResultCache::Lookup ResultCache::acquire(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Lookup result;
  if (auto it = done_.find(key); it != done_.end()) {
    ++hits_;
    obs::count(obs::Counter::kSvcResultCacheHits);
    result.role = Role::kHit;
    result.hit = it->second;
    return result;
  }
  if (auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++coalesced_;
    obs::count(obs::Counter::kSvcCoalescedRequests);
    result.role = Role::kJoined;
    result.pending = it->second->future;
    return result;
  }
  ++misses_;
  obs::count(obs::Counter::kSvcResultCacheMisses);
  auto flight = std::make_shared<InFlight>();
  flight->future = flight->promise.get_future().share();
  result.role = Role::kOwner;
  result.pending = flight->future;
  in_flight_.emplace(key, std::move(flight));
  return result;
}

void ResultCache::complete(const std::string& key, ResultPtr result) {
  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(key);
    CANU_CHECK_MSG(it != in_flight_.end(),
                   "complete() for key with no in-flight owner: " << key);
    flight = std::move(it->second);
    in_flight_.erase(it);
    if (result->status == "ok") {
      insert_done_locked(key, result);
    }
  }
  // Resolve waiters outside the lock: their continuations run on their own
  // threads and must not serialize against new acquires.
  flight->promise.set_value(std::move(result));
}

void ResultCache::insert_done_locked(const std::string& key,
                                     ResultPtr result) {
  const CachedResult& value = *result;
  if (!done_.emplace(key, std::move(result)).second) return;
  order_.push_back(key);
  while (order_.size() > max_entries_) {
    done_.erase(order_.front());
    order_.pop_front();
  }
  journal_append_locked(key, value);
}

bool ResultCache::put(const std::string& key, const CachedResult& result) {
  CANU_CHECK_MSG(result.status == "ok",
                 "only ok results may be injected into the cache");
  std::lock_guard<std::mutex> lock(mutex_);
  if (done_.count(key) != 0) return false;
  insert_done_locked(key, std::make_shared<const CachedResult>(result));
  return true;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

std::uint64_t ResultCache::bytes() const {
  // Walked on demand (status/metrics snapshots), never per request: the
  // FIFO bound keeps this a few hundred entries at most.
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, result] : done_) {
    total += key.size() + result->output.size() + result->error.size();
  }
  return total;
}

}  // namespace canu::svc
