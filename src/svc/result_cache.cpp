#include "svc/result_cache.hpp"

#include <iostream>

#include "obs/obs.hpp"
#include "svc/journal.hpp"
#include "util/error.hpp"

namespace canu::svc {

ResultCache::ResultCache(std::size_t max_entries,
                         const std::string& journal_path)
    : max_entries_(max_entries) {
  CANU_CHECK_MSG(max_entries > 0, "result cache needs at least one entry");
  if (journal_path.empty()) return;
  journal_ = std::make_unique<ResultJournal>(journal_path);
  for (ResultJournal::Record& rec : journal_->load()) {
    if (done_.emplace(rec.key, std::make_shared<const CachedResult>(
                                   std::move(rec.result)))
            .second) {
      order_.push_back(std::move(rec.key));
      while (order_.size() > max_entries_) {
        done_.erase(order_.front());
        order_.pop_front();
      }
    }
  }
  restored_ = done_.size();
  obs::count(obs::Counter::kSvcJournalRestored,
             static_cast<std::uint64_t>(done_.size()));
  if (journal_->recovered_corrupt_tail()) {
    obs::count(obs::Counter::kSvcJournalRecoveries);
    std::cerr << "[canud] result journal '" << journal_path
              << "': corrupt tail truncated, " << done_.size()
              << " entries restored\n";
  }
}

ResultCache::~ResultCache() = default;

void ResultCache::journal_append_locked(const std::string& key,
                                        const CachedResult& result) {
  if (!journal_ || journal_degraded_) return;
  try {
    if (journal_->wants_compaction(done_.size())) {
      std::vector<ResultJournal::Record> live;
      live.reserve(order_.size());
      for (const std::string& k : order_) {
        if (auto it = done_.find(k); it != done_.end()) {
          live.push_back({k, *it->second});
        }
      }
      journal_->compact(live);
      obs::count(obs::Counter::kSvcJournalCompactions);
    }
    journal_->append(key, result);
    ++persisted_;
  } catch (const Error& e) {
    // Persistence is an optimization: never fail the request over it, but
    // stop writing — a half-broken disk must not burn time per request.
    journal_degraded_ = true;
    std::cerr << "[canud] result journal degraded to memory-only: "
              << e.what() << "\n";
  }
}

ResultCache::Lookup ResultCache::acquire(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Lookup result;
  if (auto it = done_.find(key); it != done_.end()) {
    ++hits_;
    obs::count(obs::Counter::kSvcResultCacheHits);
    result.role = Role::kHit;
    result.hit = it->second;
    return result;
  }
  if (auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++coalesced_;
    obs::count(obs::Counter::kSvcCoalescedRequests);
    result.role = Role::kJoined;
    result.pending = it->second->future;
    return result;
  }
  ++misses_;
  obs::count(obs::Counter::kSvcResultCacheMisses);
  auto flight = std::make_shared<InFlight>();
  flight->future = flight->promise.get_future().share();
  result.role = Role::kOwner;
  result.pending = flight->future;
  in_flight_.emplace(key, std::move(flight));
  return result;
}

void ResultCache::complete(const std::string& key, ResultPtr result) {
  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(key);
    CANU_CHECK_MSG(it != in_flight_.end(),
                   "complete() for key with no in-flight owner: " << key);
    flight = std::move(it->second);
    in_flight_.erase(it);
    if (result->status == "ok") {
      done_.emplace(key, result);
      order_.push_back(key);
      while (order_.size() > max_entries_) {
        done_.erase(order_.front());
        order_.pop_front();
      }
      journal_append_locked(key, *result);
    }
  }
  // Resolve waiters outside the lock: their continuations run on their own
  // threads and must not serialize against new acquires.
  flight->promise.set_value(std::move(result));
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

std::uint64_t ResultCache::bytes() const {
  // Walked on demand (status/metrics snapshots), never per request: the
  // FIFO bound keeps this a few hundred entries at most.
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, result] : done_) {
    total += key.size() + result->output.size() + result->error.size();
  }
  return total;
}

}  // namespace canu::svc
