#include "svc/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/version.hpp"
#include "svc/journal.hpp"
#include "svc/verbs.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

namespace canu::svc {

namespace {

CachedResult overloaded_result(const RequestScheduler& scheduler) {
  CachedResult r;
  r.status = "overloaded";
  r.exit_code = 75;  // EX_TEMPFAIL: retry later
  r.error = "canud overloaded: " + std::to_string(scheduler.capacity()) +
            " requests already queued or running\n";
  return r;
}

CachedResult deadline_result(std::uint64_t timeout_ms) {
  CachedResult r;
  r.status = "deadline_exceeded";
  r.exit_code = 124;  // timeout(1) convention
  r.error = "canud: request exceeded its " + std::to_string(timeout_ms) +
            "ms deadline\n";
  return r;
}

CachedResult cancelled_result() {
  CachedResult r;
  r.status = "cancelled";
  r.exit_code = 130;
  r.error = "canud: request cancelled\n";
  return r;
}

/// Cheap control-plane verbs class as interactive and jump queued batch
/// work; anything that simulates is batch. (`status` never reaches the
/// scheduler at all, and result-cache hits answer inline.)
Priority priority_for(const std::string& verb) {
  return verb == "version" || verb == "list" ? Priority::kInteractive
                                             : Priority::kBatch;
}

bool cancelled_status(const std::string& status) {
  return status == "deadline_exceeded" || status == "cancelled";
}

/// Steady-clock nanoseconds, the shared base for the wait/run stamps.
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-request execution stamps, shared between the connection thread and
/// the worker lambda (which may outlive an early deadline return).
struct ExecStamps {
  std::atomic<std::uint64_t> start_ns{0};  ///< worker picked the request up
  std::atomic<std::uint64_t> end_ns{0};    ///< worker finished the verb
};

/// Cache disposition label for request records ("hit" | "coalesced" |
/// "miss" | "uncached" | "none").
const char* cache_disposition(const std::string& status, bool cache_hit,
                              bool coalesced, const std::string& key) {
  if (status == "overloaded") return "none";
  if (cache_hit) return "hit";
  if (coalesced) return "coalesced";
  if (key.empty()) return "uncached";
  return "miss";
}

/// Decode the lowercase-hex encoding `canu drain` uses for journal record
/// bytes in Request.body (hex keeps binary out of the JSON layer).
bool hex_decode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.result_cache_entries, options_.cache_file) {
  const unsigned threads = resolve_thread_count(options_.threads);
  if (threads > 1) {
    pool_storage_.emplace(threads);
    pool_ = &*pool_storage_;
  }
  scheduler_ = std::make_unique<RequestScheduler>(
      pool_, options_.queue_capacity, options_.aging);
  if (options_.slow_log_ms >= 0 && !options_.slow_log_path.empty()) {
    auto file = std::make_unique<std::ofstream>(options_.slow_log_path,
                                                std::ios::app);
    CANU_CHECK_MSG(file->is_open(),
                   "cannot open slow log " << options_.slow_log_path);
    slow_log_file_ = std::move(file);
  }
}

Server::~Server() {
  try {
    stop();
  } catch (...) {
    // Destruction must not throw; stop() failures leave joined threads at
    // worst.
  }
}

void Server::start() {
  CANU_CHECK_MSG(!options_.unix_socket.empty() || options_.tcp_port >= 0,
                 "canud needs a Unix socket path or a TCP port");
  CANU_CHECK_MSG(!started_, "server already started");

  int pipe_fds[2];
  CANU_CHECK_MSG(::pipe(pipe_fds) == 0, "pipe() failed");
  stop_read_ = FdHandle(pipe_fds[0]);
  stop_write_ = FdHandle(pipe_fds[1]);

  if (!options_.unix_socket.empty()) {
    unix_listener_ = listen_unix(options_.unix_socket);
  }
  if (options_.tcp_port >= 0) {
    tcp_listener_ = listen_tcp(
        options_.tcp_host, static_cast<std::uint16_t>(options_.tcp_port),
        &tcp_port_);
  }
  start_time_ = std::chrono::steady_clock::now();
  started_ = true;
  if (unix_listener_) {
    accept_threads_.emplace_back(
        [this, fd = unix_listener_.get()] { accept_loop(fd); });
  }
  if (tcp_listener_) {
    accept_threads_.emplace_back(
        [this, fd = tcp_listener_.get()] { accept_loop(fd); });
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // Wake every accept loop and every connection waiting between frames; a
  // handler that is mid-request finishes and answers before it sees the
  // stop (wait_readable checks the pipe only between frames).
  const char byte = 'x';
  write_all(stop_write_.get(), &byte, 1);

  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();

  for (;;) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (auto& [id, thread] : connections_) {
        to_join.push_back(std::move(thread));
      }
      connections_.clear();
      finished_.clear();
    }
    if (to_join.empty()) break;
    for (std::thread& t : to_join) t.join();
  }

  // Every admitted request has answered by now; drain() asserts that and
  // refuses any late stragglers.
  scheduler_->drain();

  unix_listener_.reset();
  tcp_listener_.reset();
  if (!options_.unix_socket.empty() && options_.unix_socket[0] != '@') {
    std::remove(options_.unix_socket.c_str());
  }
}

std::string Server::endpoints() const {
  std::string s;
  if (unix_listener_) s += "unix:" + options_.unix_socket;
  if (tcp_listener_) {
    if (!s.empty()) s += " ";
    s += "tcp:" + options_.tcp_host + ":" + std::to_string(tcp_port_);
  }
  return s;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.admitted = scheduler_->admitted();
  c.rejected = scheduler_->rejected();
  c.result_cache_hits = cache_.hits();
  c.result_cache_misses = cache_.misses();
  c.coalesced = cache_.coalesced();
  c.in_flight = scheduler_->in_flight();
  c.capacity = scheduler_->capacity();
  c.timed_out = timed_out_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.restored = cache_.restored();
  c.persisted = cache_.persisted();
  c.forwarded = forwarded_.load(std::memory_order_relaxed);
  c.drained_in = drained_in_.load(std::memory_order_relaxed);
  return c;
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    FdHandle conn = accept_or_stop(listen_fd, stop_read_.get());
    if (!conn) return;
    std::vector<std::thread> reaped;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (stopped_) return;  // raced with stop(): drop the connection
      const std::uint64_t id = next_conn_id_++;
      std::thread t(&Server::handle_connection, this, std::move(conn), id);
      connections_.emplace(id, std::move(t));
      reap_finished_locked(&reaped);
    }
    for (std::thread& t : reaped) t.join();
  }
}

void Server::reap_finished_locked(std::vector<std::thread>* out) {
  for (const std::uint64_t id : finished_) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // already claimed by stop()
    out->push_back(std::move(it->second));
    connections_.erase(it);
  }
  finished_.clear();
}

void Server::handle_connection(FdHandle conn, std::uint64_t id) {
  try {
    std::string payload;
    while (wait_readable(conn.get(), stop_read_.get()) &&
           read_frame(conn.get(), &payload)) {
      Response resp;
      try {
        resp = execute(decode_request(payload), conn.get());
      } catch (const Error& e) {
        resp.status = "error";
        resp.version = obs::kVersion;
        resp.exit_code = 1;
        resp.error = std::string("bad request: ") + e.what() + "\n";
        resp.server = counters();
      }
      write_frame(conn.get(), encode_response(resp));
    }
  } catch (const Error&) {
    // Peer vanished or spoke garbage mid-frame; drop the connection. The
    // daemon itself must outlive any single client.
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  finished_.push_back(id);
}

Response Server::respond(const Request& req, const CachedResult& result,
                         bool cache_hit, bool coalesced,
                         const std::string& cache_key, double wall_s,
                         const RequestTiming& timing) {
  // Count typed outcomes here, once per answered request: the wait loop and
  // the worker's own chunk-boundary check race to notice a dead deadline,
  // and both paths converge on this respond().
  if (result.status == "deadline_exceeded") {
    obs::count(obs::Counter::kSvcDeadlineExceeded);
    timed_out_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status == "cancelled") {
    obs::count(obs::Counter::kSvcCancelled);
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  RequestRecord rec;
  rec.id = timing.id;
  rec.verb = req.verb.empty() ? "status" : req.verb;
  rec.key = cache_key;
  rec.status = result.status;
  rec.cache = cache_disposition(result.status, cache_hit, coalesced, cache_key);
  rec.wait_ms = timing.wait_s * 1e3;
  rec.run_ms = timing.run_s * 1e3;
  rec.total_ms = wall_s * 1e3;
  rec.uptime_s = telemetry_.uptime_s();
  telemetry_.record(rec);
  maybe_slow_log(rec);
  Response resp;
  resp.status = result.status;
  resp.version = obs::kVersion;
  resp.exit_code = result.exit_code;
  resp.output = result.output;
  resp.error = result.error;
  resp.wall_s = wall_s;
  resp.result_cache_hit = cache_hit;
  resp.coalesced = coalesced;
  resp.cache_key = cache_key;
  resp.server = counters();
  return resp;
}

void Server::maybe_slow_log(const RequestRecord& rec) {
  if (options_.slow_log_ms < 0) return;
  if (rec.total_ms < static_cast<double>(options_.slow_log_ms)) return;
  // One JSON object per line, so the log tails and greps cleanly.
  std::ostringstream os;
  os << "{\"id\":" << rec.id << ",\"verb\":" << obs::json_quote(rec.verb)
     << ",\"key\":" << obs::json_quote(rec.key)
     << ",\"status\":" << obs::json_quote(rec.status)
     << ",\"cache\":" << obs::json_quote(rec.cache)
     << ",\"wait_ms\":" << rec.wait_ms << ",\"run_ms\":" << rec.run_ms
     << ",\"total_ms\":" << rec.total_ms << ",\"uptime_s\":" << rec.uptime_s
     << "}";
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  std::ostream& sink = slow_log_file_ ? *slow_log_file_ : std::cerr;
  sink << os.str() << "\n" << std::flush;
}

GaugeSample Server::sample_gauges() const {
  GaugeSample g;
  g.queue_interactive = scheduler_->queued(Priority::kInteractive);
  g.queue_batch = scheduler_->queued(Priority::kBatch);
  g.in_flight = scheduler_->in_flight();
  g.capacity = scheduler_->capacity();
  g.result_cache_entries = cache_.size();
  g.result_cache_bytes = cache_.bytes();
  if (!options_.cache_file.empty()) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(options_.cache_file, ec);
    if (!ec) g.journal_bytes = size;
  }
  g.threads = threads();
  return g;
}

Response Server::status_response(const Request& req,
                                 std::uint64_t request_id) {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  // `--recent[=N]`: append the request-trace ring to the counter table.
  bool want_recent = false;
  std::size_t recent_n = 20;
  for (const std::string& arg : req.args) {
    if (arg == "--recent") {
      want_recent = true;
    } else if (arg.rfind("--recent=", 0) == 0) {
      want_recent = true;
      try {
        recent_n = std::stoull(arg.substr(9));
      } catch (...) {
        CachedResult r;
        r.status = "error";
        r.exit_code = 1;
        r.error = "status: bad --recent value '" + arg.substr(9) + "'\n";
        return respond(req, r, false, false, "", 0.0,
                       RequestTiming{request_id, 0.0, 0.0});
      }
    } else {
      CachedResult r;
      r.status = "error";
      r.exit_code = 1;
      r.error = "status: unknown argument '" + arg + "'\n";
      return respond(req, r, false, false, "", 0.0,
                     RequestTiming{request_id, 0.0, 0.0});
    }
  }

  const ServerCounters c = counters();
  const GaugeSample g = sample_gauges();
  std::ostringstream os;
  os << "canud " << obs::kVersion << "\n";
  TextTable table;
  table.set_header({"counter", "value"});
  table.add_row({"version", obs::kVersion});
  if (!options_.shard_id.empty()) {
    table.add_row({"shard", options_.shard_id});
  }
  table.add_row({"uptime_s", TextTable::num(uptime_s, 3)});
  table.add_row({"threads", std::to_string(threads())});
  table.add_row({"in_flight", std::to_string(c.in_flight) + "/" +
                                  std::to_string(c.capacity)});
  table.add_row({"queue_interactive", std::to_string(g.queue_interactive)});
  table.add_row({"queue_batch", std::to_string(g.queue_batch)});
  table.add_row({"admitted", std::to_string(c.admitted)});
  table.add_row({"rejected", std::to_string(c.rejected)});
  table.add_row({"result_cache_hits", std::to_string(c.result_cache_hits)});
  table.add_row(
      {"result_cache_misses", std::to_string(c.result_cache_misses)});
  table.add_row({"coalesced", std::to_string(c.coalesced)});
  table.add_row({"result_cache_size", std::to_string(g.result_cache_entries)});
  table.add_row({"result_cache_bytes", std::to_string(g.result_cache_bytes)});
  table.add_row({"timed_out", std::to_string(c.timed_out)});
  table.add_row({"cancelled", std::to_string(c.cancelled)});
  if (!options_.shard_id.empty() || options_.route_owner) {
    // Fleet-only rows: a standalone daemon's status stays byte-identical.
    table.add_row({"forwarded", std::to_string(c.forwarded)});
    table.add_row({"drained_in", std::to_string(c.drained_in)});
  }
  if (!options_.cache_file.empty()) {
    table.add_row({"journal_restored", std::to_string(c.restored)});
    table.add_row({"journal_persisted", std::to_string(c.persisted)});
    table.add_row({"journal_bytes", std::to_string(g.journal_bytes)});
  }
  table.print(os);

  if (want_recent) {
    const std::vector<RequestRecord> recent = telemetry_.recent(recent_n);
    os << "\nrecent requests (newest first):\n";
    if (recent.empty()) {
      os << "(none)\n";
    } else {
      TextTable rt;
      rt.set_header({"id", "verb", "status", "cache", "wait_ms", "run_ms",
                     "total_ms", "key"});
      for (const RequestRecord& r : recent) {
        rt.add_row({std::to_string(r.id), r.verb, r.status, r.cache,
                    TextTable::num(r.wait_ms, 3), TextTable::num(r.run_ms, 3),
                    TextTable::num(r.total_ms, 3),
                    r.key.empty() ? "-" : r.key});
      }
      rt.print(os);
    }
  }

  CachedResult result;
  result.output = std::move(os).str();
  return respond(req, result, false, false, "", 0.0,
                 RequestTiming{request_id, 0.0, 0.0});
}

Response Server::metrics_response(const Request& req,
                                  std::uint64_t request_id, double wall_s) {
  std::string format = "json";
  for (const std::string& arg : req.args) {
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else {
      CachedResult r;
      r.status = "error";
      r.exit_code = 1;
      r.error = "metrics: unknown argument '" + arg + "'\n";
      return respond(req, r, false, false, "", wall_s,
                     RequestTiming{request_id, 0.0, 0.0});
    }
  }
  if (format != "json" && format != "prometheus") {
    CachedResult r;
    r.status = "error";
    r.exit_code = 1;
    r.error = "metrics: unknown --format '" + format +
              "' (json|prometheus)\n";
    return respond(req, r, false, false, "", wall_s,
                   RequestTiming{request_id, 0.0, 0.0});
  }
  TelemetrySnapshot snap = telemetry_.snapshot(sample_gauges());
  snap.version = obs::kVersion;
  snap.shard = options_.shard_id;
  std::ostringstream os;
  if (format == "json") {
    snap.write_json(os);
  } else {
    snap.write_prometheus(os);
  }
  CachedResult result;
  result.output = std::move(os).str();
  return respond(req, result, false, false, "", wall_s,
                 RequestTiming{request_id, 0.0, 0.0});
}

Response Server::put_response(const Request& req, std::uint64_t request_id,
                              double wall_s) {
  CachedResult r;
  std::string bytes;
  ResultJournal::Record rec;
  if (!hex_decode(req.body, &bytes) || !decode_record_bytes(bytes, &rec)) {
    // Checksum or framing failure: refuse rather than cache damaged bytes.
    r.status = "error";
    r.exit_code = 1;
    r.error = "put: malformed or corrupt journal record\n";
    return respond(req, r, false, false, "", wall_s,
                   RequestTiming{request_id, 0.0, 0.0});
  }
  if (cache_.put(rec.key, rec.result)) {
    drained_in_.fetch_add(1, std::memory_order_relaxed);
    r.output = "stored " + rec.key + "\n";
  } else {
    r.output = "duplicate " + rec.key + "\n";
  }
  return respond(req, r, false, false, "", wall_s,
                 RequestTiming{request_id, 0.0, 0.0});
}

std::optional<Response> Server::forward_to_owner(
    const Request& req, const Endpoint& owner, std::uint64_t request_id,
    const std::function<double()>& wall) {
  Request fwd = req;
  fwd.routed = true;          // the owner must answer, never re-forward
  fwd.accept_stream = false;  // relayed replies are single-frame
  Response resp;
  try {
    resp = Client(owner).call(fwd);
  } catch (const Error&) {
    return std::nullopt;  // owner unreachable: caller executes locally
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  // The request was answered by the owner, but this daemon held the
  // connection: record it here with its own disposition so per-shard
  // telemetry adds up (classified as a miss — the result was not local).
  RequestRecord rec;
  rec.id = request_id;
  rec.verb = req.verb;
  rec.key = resp.cache_key;
  rec.status = resp.status;
  rec.cache = "routed";
  rec.total_ms = wall() * 1e3;
  rec.uptime_s = telemetry_.uptime_s();
  telemetry_.record(rec);
  maybe_slow_log(rec);
  // Relay the owner's payload, but report this daemon's counters — the
  // client is talking to us, and `forwarded` is where the hop shows up.
  resp.server = counters();
  return resp;
}

ResultPtr Server::wait_for_result(const std::shared_future<ResultPtr>& future,
                                  CancelToken* token, int peer_fd,
                                  bool* timed_out, bool* peer_gone,
                                  StreamQueue* stream,
                                  StreamProgress* shipped) {
  *timed_out = false;
  *peer_gone = false;
  std::deque<std::string> pending;
  const auto ship_pending = [&]() -> bool {
    stream->drain(&pending);
    while (!pending.empty()) {
      try {
        write_frame(peer_fd, encode_stream_chunk(pending.front()));
      } catch (const Error&) {
        // The peer vanished mid-stream; cancel the worker like any other
        // disconnect so it unwinds at its next chunk boundary.
        token->cancel();
        *peer_gone = true;
        return false;
      }
      shipped->bytes += pending.front().size();
      ++shipped->chunks;
      pending.pop_front();
    }
    return true;
  };
  for (;;) {
    if (future.wait_for(std::chrono::milliseconds(10)) ==
        std::future_status::ready) {
      // Chunks still queued ride in the final response's output tail
      // instead — shipped->bytes stays the exact count of streamed bytes.
      return future.get();
    }
    if (stream != nullptr && !ship_pending()) return nullptr;
    if (token->expired()) {
      // The worker sees the same deadline at its next chunk boundary and
      // frees its slot; the client gets its typed answer now.
      *timed_out = true;
      return nullptr;
    }
    if (peer_fd >= 0 && peer_disconnected(peer_fd)) {
      token->cancel();
      *peer_gone = true;
      return nullptr;
    }
  }
}

Response Server::execute(const Request& req, int peer_fd) {
  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  obs::Span span("svc", "request " + req.verb, "req", request_id);
  const auto start = std::chrono::steady_clock::now();
  const auto wall = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const auto observe_request = [&] {
    obs::observe(obs::Hist::kSvcRequestNs,
                 static_cast<std::uint64_t>(wall() * 1e9));
  };

  // `status` and `metrics` answer inline, outside admission control — an
  // overloaded daemon must still be observable. `put` (cache injection
  // from `canu drain`) is inline too: it costs one map insert + journal
  // append, and a drain must land even on a busy daemon.
  if (req.verb == "status") return status_response(req, request_id);
  if (req.verb == "metrics") return metrics_response(req, request_id, wall());
  if (req.verb == "put") return put_response(req, request_id, wall());

  if (!verb_is_servable(req.verb)) {
    CachedResult r;
    r.status = "error";
    r.exit_code = 1;
    r.error = "verb '" + req.verb +
              "' is not servable by canud; run it with the canu CLI\n";
    return respond(req, r, false, false, "", wall(),
                   RequestTiming{request_id, 0.0, 0.0});
  }

  // Fleet routing: a cacheable request whose canonical key hashes to a
  // ring peer is forwarded there (routed=true), so any shard answers any
  // request while each key's cache entry lives on exactly one shard. A
  // routed request is already at its owner by definition, and transport
  // failure degrades to local execution — extra computation, not an error.
  if (options_.route_owner && !req.routed && verb_is_cacheable(req.verb)) {
    if (const auto owner = options_.route_owner(canonical_request_key(req))) {
      if (auto resp = forward_to_owner(req, *owner, request_id, wall)) {
        return *resp;
      }
    }
  }

  // Wait/run stamps, written by the worker around run_to_result and read by
  // this thread when it answers. Shared because the worker may outlive an
  // early (deadline) return of this thread.
  auto stamps = std::make_shared<ExecStamps>();
  const std::uint64_t admit_ns = steady_ns();
  // Wait = admission → worker pickup; run = worker execution. Both zero
  // until the worker stamps them (inline answers, joiners, cache hits).
  const auto timing = [request_id, admit_ns, stamps] {
    RequestTiming t;
    t.id = request_id;
    const std::uint64_t s = stamps->start_ns.load(std::memory_order_acquire);
    const std::uint64_t e = stamps->end_ns.load(std::memory_order_acquire);
    if (s >= admit_ns) t.wait_s = static_cast<double>(s - admit_ns) / 1e9;
    if (e >= s && s != 0) t.run_s = static_cast<double>(e - s) / 1e9;
    return t;
  };

  // Per-request cancellation state, shared with the worker executing the
  // verb: the token outlives an early (deadline) return of this thread.
  auto token = std::make_shared<CancelToken>();
  token->set_timeout_ms(req.timeout_ms);

  // The daemon's pool is the execution budget: request-supplied --threads
  // never spawns extra workers. A serial daemon (--threads=1) runs the
  // exact serial engine per request.
  Request exec_req = req;
  if (pool_ == nullptr) exec_req.threads = 1;
  VerbOptions verb_options;
  verb_options.pool = pool_;
  verb_options.cancel = token.get();
  verb_options.request_id = request_id;

  // Streamed replies (DESIGN.md §16): when the client opted in over a real
  // connection, the worker writes through a StreamTee whose flushed chunks
  // the wait loop below ships as frames. Only the owner path streams —
  // cache hits and joiners answer from the (full) cached output.
  std::shared_ptr<StreamQueue> stream_queue;
  if (req.accept_stream && peer_fd >= 0 && verb_is_cacheable(req.verb)) {
    stream_queue = std::make_shared<StreamQueue>();
  }

  const auto run_to_result = [exec_req, verb_options, token, stream_queue] {
    auto result = std::make_shared<CachedResult>();
    StreamTee tee(stream_queue.get());
    std::ostream out(&tee);
    std::ostringstream err;
    try {
      result->exit_code = run_verb(exec_req, out, err, verb_options);
      result->status = result->exit_code == 0 ? "ok" : "error";
    } catch (const Cancelled& c) {
      // Typed unwind: a timed-out or abandoned request frees its slot here,
      // within one chunk of the deadline.
      *result = c.deadline_exceeded() ? deadline_result(exec_req.timeout_ms)
                                      : cancelled_result();
    } catch (const Error& e) {
      result->status = "error";
      result->exit_code = 1;
      err << "error: " << e.what() << "\n";
    }
    if (result->output.empty()) result->output = tee.str();
    if (result->error.empty()) result->error = std::move(err).str();
    return result;
  };

  const Priority priority = priority_for(req.verb);

  if (!verb_is_cacheable(req.verb)) {
    // shared_ptr promise: this thread may answer `deadline_exceeded` and
    // move on while the worker is still running toward set_value().
    auto promise = std::make_shared<std::promise<ResultPtr>>();
    std::shared_future<ResultPtr> future = promise->get_future().share();
    const bool admitted = scheduler_->try_submit(
        [promise, run_to_result, stamps] {
          stamps->start_ns.store(steady_ns(), std::memory_order_release);
          ResultPtr r = run_to_result();
          stamps->end_ns.store(steady_ns(), std::memory_order_release);
          promise->set_value(std::move(r));
        },
        priority);
    if (!admitted) {
      return respond(req, overloaded_result(*scheduler_), false, false, "",
                     wall(), RequestTiming{request_id, 0.0, 0.0});
    }
    bool timed_out = false;
    bool peer_gone = false;
    const ResultPtr result =
        wait_for_result(future, token.get(), peer_fd, &timed_out, &peer_gone);
    observe_request();
    if (result == nullptr) {
      return respond(req,
                     timed_out ? deadline_result(req.timeout_ms)
                               : cancelled_result(),
                     false, false, "", wall(), timing());
    }
    return respond(req, *result, false, false, "", wall(), timing());
  }

  const std::string key = canonical_request_key(req);
  // A joiner whose owner got cancelled re-acquires: its own budget is
  // intact, so it should compute (or join a fresh owner), not inherit the
  // other client's timeout. Bounded to keep a pathological churn finite.
  for (int attempt = 0; attempt < 3; ++attempt) {
    ResultCache::Lookup lookup = cache_.acquire(key);
    switch (lookup.role) {
      case ResultCache::Role::kHit:
        observe_request();
        return respond(req, *lookup.hit, true, false, key, wall(),
                       RequestTiming{request_id, 0.0, 0.0});
      case ResultCache::Role::kJoined: {
        bool timed_out = false;
        bool peer_gone = false;
        const ResultPtr result = wait_for_result(
            lookup.pending, token.get(), peer_fd, &timed_out, &peer_gone);
        if (result == nullptr) {
          observe_request();
          return respond(req,
                         timed_out ? deadline_result(req.timeout_ms)
                                   : cancelled_result(),
                         false, true, key, wall(),
                         RequestTiming{request_id, 0.0, 0.0});
        }
        if (cancelled_status(result->status)) continue;  // owner died; retry
        observe_request();
        return respond(req, *result, false, true, key, wall(),
                       RequestTiming{request_id, 0.0, 0.0});
      }
      case ResultCache::Role::kOwner: {
        StreamProgress shipped;
        if (stream_queue != nullptr && pool_ == nullptr) {
          // Serial daemon: try_submit below runs the verb inline on THIS
          // thread, so the wait loop's drain never overlaps execution.
          // Ship each chunk directly from the flush that produced it; a
          // dead peer cancels the worker at its next chunk boundary, the
          // same unwind the drain path uses.
          stream_queue->set_sink(
              [peer_fd, token, &shipped](const std::string& chunk) {
                if (shipped.peer_gone) return;
                try {
                  write_frame(peer_fd, encode_stream_chunk(chunk));
                  shipped.bytes += chunk.size();
                  ++shipped.chunks;
                } catch (const Error&) {
                  token->cancel();
                  shipped.peer_gone = true;
                }
              });
        }
        const bool admitted = scheduler_->try_submit(
            [this, key, run_to_result, stamps] {
              stamps->start_ns.store(steady_ns(), std::memory_order_release);
              ResultPtr r = run_to_result();
              stamps->end_ns.store(steady_ns(), std::memory_order_release);
              cache_.complete(key, std::move(r));
            },
            priority);
        if (!admitted) {
          // Joiners are already waiting on this key; resolve them with the
          // same explicit overload signal rather than leaving them hanging.
          auto overloaded = std::make_shared<CachedResult>(
              overloaded_result(*scheduler_));
          cache_.complete(key, overloaded);
          return respond(req, *overloaded, false, false, key, wall(),
                         RequestTiming{request_id, 0.0, 0.0});
        }
        bool timed_out = false;
        bool peer_gone = false;
        const ResultPtr result = wait_for_result(
            lookup.pending, token.get(), peer_fd, &timed_out, &peer_gone,
            stream_queue.get(), &shipped);
        observe_request();
        Response resp =
            result == nullptr
                ? respond(req,
                          timed_out ? deadline_result(req.timeout_ms)
                                    : cancelled_result(),
                          false, false, key, wall(), timing())
                : respond(req, *result, false, false, key, wall(), timing());
        if (stream_queue != nullptr) {
          // The final frame carries only the tail: shipped chunks + tail
          // reassemble to the byte-exact non-streamed output.
          resp.streamed = true;
          resp.stream_chunks = shipped.chunks;
          resp.output = resp.output.substr(
              std::min<std::size_t>(shipped.bytes, resp.output.size()));
        }
        return resp;
      }
    }
  }
  // Three consecutive owners cancelled under this key; give this client the
  // same typed answer instead of spinning.
  observe_request();
  return respond(req, cancelled_result(), false, false, key, wall(),
                 RequestTiming{request_id, 0.0, 0.0});
}

void Server::write_rollup(const std::string& path) const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const ServerCounters c = counters();
  // One TelemetrySnapshot feeds both this rollup and the live `metrics`
  // verb, so the two never disagree about quantiles or window rates.
  TelemetrySnapshot snap = telemetry_.snapshot(sample_gauges());
  snap.version = obs::kVersion;
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("canud", obs::kVersion);
    w.kv("uptime_s", uptime_s);
    w.kv("threads", static_cast<std::uint64_t>(threads()));
    w.kv("admitted", c.admitted);
    w.kv("rejected", c.rejected);
    w.kv("timed_out", c.timed_out);
    w.kv("cancelled", c.cancelled);
    w.kv("result_cache_hits", c.result_cache_hits);
    w.kv("result_cache_misses", c.result_cache_misses);
    w.kv("coalesced", c.coalesced);
    const std::uint64_t classified =
        c.result_cache_hits + c.result_cache_misses;
    w.kv("cache_hit_ratio",
         classified == 0 ? 0.0
                         : static_cast<double>(c.result_cache_hits) /
                               static_cast<double>(classified));
    w.kv("journal_restored", c.restored);
    w.kv("journal_persisted", c.persisted);
    w.key("totals");
    w.begin_object();
    w.kv("requests", snap.requests);
    w.kv("warm_hits", snap.warm_hits);
    w.kv("misses", snap.misses);
    w.kv("rejections", snap.rejections);
    w.end_object();
    write_windows_json(w, snap);
    w.key("verbs");
    w.begin_object();
    for (const VerbSnapshot& v : snap.verbs) {
      w.key(v.verb);
      w.begin_object();
      write_verb_latency_json(w, v);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  std::ofstream out(path, std::ios::trunc);
  CANU_CHECK_MSG(out.is_open(), "cannot write rollup manifest " << path);
  out << os.str() << "\n";
  out.flush();
  CANU_CHECK_MSG(out.good(), "failed writing rollup manifest " << path);
}

}  // namespace canu::svc
