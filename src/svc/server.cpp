#include "svc/server.hpp"

#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/version.hpp"
#include "svc/verbs.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace canu::svc {

namespace {

CachedResult overloaded_result(const RequestScheduler& scheduler) {
  CachedResult r;
  r.status = "overloaded";
  r.exit_code = 75;  // EX_TEMPFAIL: retry later
  r.error = "canud overloaded: " + std::to_string(scheduler.capacity()) +
            " requests already queued or running\n";
  return r;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.result_cache_entries) {
  const unsigned threads = resolve_thread_count(options_.threads);
  if (threads > 1) {
    pool_storage_.emplace(threads);
    pool_ = &*pool_storage_;
  }
  scheduler_ =
      std::make_unique<RequestScheduler>(pool_, options_.queue_capacity);
}

Server::~Server() {
  try {
    stop();
  } catch (...) {
    // Destruction must not throw; stop() failures leave joined threads at
    // worst.
  }
}

void Server::start() {
  CANU_CHECK_MSG(!options_.unix_socket.empty() || options_.tcp_port >= 0,
                 "canud needs a Unix socket path or a TCP port");
  CANU_CHECK_MSG(!started_, "server already started");

  int pipe_fds[2];
  CANU_CHECK_MSG(::pipe(pipe_fds) == 0, "pipe() failed");
  stop_read_ = FdHandle(pipe_fds[0]);
  stop_write_ = FdHandle(pipe_fds[1]);

  if (!options_.unix_socket.empty()) {
    unix_listener_ = listen_unix(options_.unix_socket);
  }
  if (options_.tcp_port >= 0) {
    tcp_listener_ = listen_tcp(
        options_.tcp_host, static_cast<std::uint16_t>(options_.tcp_port),
        &tcp_port_);
  }
  start_time_ = std::chrono::steady_clock::now();
  started_ = true;
  if (unix_listener_) {
    accept_threads_.emplace_back(
        [this, fd = unix_listener_.get()] { accept_loop(fd); });
  }
  if (tcp_listener_) {
    accept_threads_.emplace_back(
        [this, fd = tcp_listener_.get()] { accept_loop(fd); });
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // Wake every accept loop and every connection waiting between frames; a
  // handler that is mid-request finishes and answers before it sees the
  // stop (wait_readable checks the pipe only between frames).
  const char byte = 'x';
  write_all(stop_write_.get(), &byte, 1);

  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();

  for (;;) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (auto& [id, thread] : connections_) {
        to_join.push_back(std::move(thread));
      }
      connections_.clear();
      finished_.clear();
    }
    if (to_join.empty()) break;
    for (std::thread& t : to_join) t.join();
  }

  // Every admitted request has answered by now; drain() asserts that and
  // refuses any late stragglers.
  scheduler_->drain();

  unix_listener_.reset();
  tcp_listener_.reset();
  if (!options_.unix_socket.empty()) {
    std::remove(options_.unix_socket.c_str());
  }
}

std::string Server::endpoints() const {
  std::string s;
  if (unix_listener_) s += "unix:" + options_.unix_socket;
  if (tcp_listener_) {
    if (!s.empty()) s += " ";
    s += "tcp:" + options_.tcp_host + ":" + std::to_string(tcp_port_);
  }
  return s;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.admitted = scheduler_->admitted();
  c.rejected = scheduler_->rejected();
  c.result_cache_hits = cache_.hits();
  c.result_cache_misses = cache_.misses();
  c.coalesced = cache_.coalesced();
  c.in_flight = scheduler_->in_flight();
  c.capacity = scheduler_->capacity();
  return c;
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    FdHandle conn = accept_or_stop(listen_fd, stop_read_.get());
    if (!conn) return;
    std::vector<std::thread> reaped;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (stopped_) return;  // raced with stop(): drop the connection
      const std::uint64_t id = next_conn_id_++;
      std::thread t(&Server::handle_connection, this, std::move(conn), id);
      connections_.emplace(id, std::move(t));
      reap_finished_locked(&reaped);
    }
    for (std::thread& t : reaped) t.join();
  }
}

void Server::reap_finished_locked(std::vector<std::thread>* out) {
  for (const std::uint64_t id : finished_) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // already claimed by stop()
    out->push_back(std::move(it->second));
    connections_.erase(it);
  }
  finished_.clear();
}

void Server::handle_connection(FdHandle conn, std::uint64_t id) {
  try {
    std::string payload;
    while (wait_readable(conn.get(), stop_read_.get()) &&
           read_frame(conn.get(), &payload)) {
      Response resp;
      try {
        resp = execute(decode_request(payload));
      } catch (const Error& e) {
        resp.status = "error";
        resp.version = obs::kVersion;
        resp.exit_code = 1;
        resp.error = std::string("bad request: ") + e.what() + "\n";
        resp.server = counters();
      }
      write_frame(conn.get(), encode_response(resp));
    }
  } catch (const Error&) {
    // Peer vanished or spoke garbage mid-frame; drop the connection. The
    // daemon itself must outlive any single client.
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  finished_.push_back(id);
}

Response Server::respond(const Request& req, const CachedResult& result,
                         bool cache_hit, bool coalesced,
                         const std::string& cache_key, double wall_s) const {
  (void)req;
  Response resp;
  resp.status = result.status;
  resp.version = obs::kVersion;
  resp.exit_code = result.exit_code;
  resp.output = result.output;
  resp.error = result.error;
  resp.wall_s = wall_s;
  resp.result_cache_hit = cache_hit;
  resp.coalesced = coalesced;
  resp.cache_key = cache_key;
  resp.server = counters();
  return resp;
}

Response Server::status_response() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const ServerCounters c = counters();
  std::ostringstream os;
  os << "canud " << obs::kVersion << "\n";
  TextTable table;
  table.set_header({"counter", "value"});
  table.add_row({"uptime_s", TextTable::num(uptime_s, 3)});
  table.add_row({"threads", std::to_string(threads())});
  table.add_row({"in_flight", std::to_string(c.in_flight) + "/" +
                                  std::to_string(c.capacity)});
  table.add_row({"admitted", std::to_string(c.admitted)});
  table.add_row({"rejected", std::to_string(c.rejected)});
  table.add_row({"result_cache_hits", std::to_string(c.result_cache_hits)});
  table.add_row(
      {"result_cache_misses", std::to_string(c.result_cache_misses)});
  table.add_row({"coalesced", std::to_string(c.coalesced)});
  table.add_row({"result_cache_size", std::to_string(cache_.size())});
  table.print(os);

  CachedResult result;
  result.output = std::move(os).str();
  return respond(Request{}, result, false, false, "", 0.0);
}

Response Server::execute(const Request& req) {
  obs::Span span("svc", "request " + req.verb);
  const auto start = std::chrono::steady_clock::now();
  const auto wall = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const auto observe_request = [&] {
    obs::observe(obs::Hist::kSvcRequestNs,
                 static_cast<std::uint64_t>(wall() * 1e9));
  };

  // `status` answers inline, outside admission control — an overloaded
  // daemon must still be observable.
  if (req.verb == "status") return status_response();

  if (!verb_is_servable(req.verb)) {
    CachedResult r;
    r.status = "error";
    r.exit_code = 1;
    r.error = "verb '" + req.verb +
              "' is not servable by canud; run it with the canu CLI\n";
    return respond(req, r, false, false, "", wall());
  }

  // The daemon's pool is the execution budget: request-supplied --threads
  // never spawns extra workers. A serial daemon (--threads=1) runs the
  // exact serial engine per request.
  Request exec_req = req;
  if (pool_ == nullptr) exec_req.threads = 1;
  VerbOptions verb_options;
  verb_options.pool = pool_;

  const auto run_to_result = [this, exec_req, verb_options] {
    auto result = std::make_shared<CachedResult>();
    std::ostringstream out;
    std::ostringstream err;
    try {
      result->exit_code = run_verb(exec_req, out, err, verb_options);
      result->status = result->exit_code == 0 ? "ok" : "error";
    } catch (const Error& e) {
      result->status = "error";
      result->exit_code = 1;
      err << "error: " << e.what() << "\n";
    }
    result->output = std::move(out).str();
    result->error = std::move(err).str();
    return result;
  };

  if (!verb_is_cacheable(req.verb)) {
    std::promise<ResultPtr> promise;
    std::future<ResultPtr> future = promise.get_future();
    const bool admitted = scheduler_->try_submit(
        [&promise, &run_to_result] { promise.set_value(run_to_result()); });
    if (!admitted) {
      return respond(req, overloaded_result(*scheduler_), false, false, "",
                     wall());
    }
    const ResultPtr result = future.get();
    observe_request();
    return respond(req, *result, false, false, "", wall());
  }

  const std::string key = canonical_request_key(req);
  ResultCache::Lookup lookup = cache_.acquire(key);
  switch (lookup.role) {
    case ResultCache::Role::kHit:
      observe_request();
      return respond(req, *lookup.hit, true, false, key, wall());
    case ResultCache::Role::kJoined: {
      const ResultPtr result = lookup.pending.get();
      observe_request();
      return respond(req, *result, false, true, key, wall());
    }
    case ResultCache::Role::kOwner:
      break;
  }

  const bool admitted = scheduler_->try_submit([this, key, run_to_result] {
    cache_.complete(key, run_to_result());
  });
  if (!admitted) {
    // Joiners are already waiting on this key; resolve them with the same
    // explicit overload signal rather than leaving them hanging.
    auto overloaded = std::make_shared<CachedResult>(
        overloaded_result(*scheduler_));
    cache_.complete(key, overloaded);
    return respond(req, *overloaded, false, false, key, wall());
  }
  const ResultPtr result = lookup.pending.get();
  observe_request();
  return respond(req, *result, false, false, key, wall());
}

}  // namespace canu::svc
