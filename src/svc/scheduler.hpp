// RequestScheduler: the admission-controlled front end between connection
// handlers and the shared help-while-waiting ThreadPool (DESIGN.md §11).
//
// Admission is a hard bound on queued+running requests: at capacity,
// try_submit refuses immediately and the server answers `overloaded` —
// clients always get an explicit signal, never an unbounded queue or a
// hang. Requests fan their inner work (workload tasks, pipeline shards)
// onto the same pool; TaskGroup waiters help, so nested parallelism cannot
// deadlock the fixed worker set.
//
// drain() is the graceful-shutdown path: stop admitting, then wait for
// every admitted request to finish so in-flight clients get their replies
// before the process exits.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace canu {
class ThreadPool;
}  // namespace canu

namespace canu::svc {

class RequestScheduler {
 public:
  /// `pool` is shared, not owned (null = execute inline on the caller,
  /// the --threads=1 serial configuration).
  RequestScheduler(ThreadPool* pool, std::size_t capacity);

  /// Dispatch `fn` to the pool, or refuse: false when at capacity or
  /// draining (the caller answers `overloaded`). `fn` must not throw —
  /// request execution converts failures into error responses.
  bool try_submit(std::function<void()> fn);

  /// Stop admitting and block until every admitted request has finished.
  /// Idempotent; safe to call from any thread.
  void drain();

  ThreadPool* pool() const noexcept { return pool_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_flight() const;
  std::uint64_t admitted() const;
  std::uint64_t rejected() const;

 private:
  void finish_one();

  ThreadPool* pool_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  bool draining_ = false;
};

}  // namespace canu::svc
