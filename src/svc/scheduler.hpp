// RequestScheduler: the admission-controlled front end between connection
// handlers and the shared help-while-waiting ThreadPool (DESIGN.md §11).
//
// Admission is a hard bound on queued+running requests: at capacity,
// try_submit refuses immediately and the server answers `overloaded` —
// clients always get an explicit signal, never an unbounded queue or a
// hang. Requests fan their inner work (workload tasks, pipeline shards)
// onto the same pool; TaskGroup waiters help, so nested parallelism cannot
// deadlock the fixed worker set.
//
// Scheduling is two-class (DESIGN.md §12): `kInteractive` requests
// (status/version/cache hits — cheap by construction) jump ahead of
// `kBatch` work (evaluate and friends), so a stream of long simulations
// never blocks a health probe behind them. The pool itself stays FIFO;
// instead each admitted request enqueues a generic "runner" task that pops
// the highest-priority pending request when it actually reaches a worker.
// Starvation is bounded by aging: a batch request older than `aging` beats
// fresh interactive arrivals.
//
// drain() is the graceful-shutdown path: stop admitting, then wait for
// every admitted request to finish so in-flight clients get their replies
// before the process exits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

namespace canu {
class ThreadPool;
}  // namespace canu

namespace canu::svc {

enum class Priority {
  kInteractive,  ///< cheap control-plane verbs; served ahead of batch
  kBatch,        ///< simulation work; yields to interactive until aged
};

class RequestScheduler {
 public:
  /// Batch requests older than this beat fresh interactive ones.
  static constexpr std::chrono::milliseconds kDefaultAging{2000};

  /// `pool` is shared, not owned (null = execute inline on the caller,
  /// the --threads=1 serial configuration).
  RequestScheduler(ThreadPool* pool, std::size_t capacity,
                   std::chrono::milliseconds aging = kDefaultAging);

  /// Dispatch `fn` to the pool, or refuse: false when at capacity or
  /// draining (the caller answers `overloaded`). `fn` must not throw —
  /// request execution converts failures into error responses.
  bool try_submit(std::function<void()> fn,
                  Priority priority = Priority::kBatch);

  /// Stop admitting and block until every admitted request has finished.
  /// Idempotent; safe to call from any thread.
  void drain();

  ThreadPool* pool() const noexcept { return pool_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_flight() const;
  /// Requests queued (not yet running) in one priority class — the
  /// queue-depth gauge behind the `metrics` verb.
  std::size_t queued(Priority priority) const;
  std::uint64_t admitted() const;
  std::uint64_t rejected() const;

 private:
  struct Pending {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Pool-worker entry: pop and run the best pending request (interactive
  /// first unless the oldest batch request has aged past the bound).
  void run_next();
  std::function<void()> pop_best();
  void finish_one();

  ThreadPool* pool_;
  const std::size_t capacity_;
  const std::chrono::milliseconds aging_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::deque<Pending> interactive_;
  std::deque<Pending> batch_;
  std::size_t in_flight_ = 0;  ///< pending + running
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  bool draining_ = false;
};

}  // namespace canu::svc
