// Cross-request result cache with single-flight deduplication
// (DESIGN.md §11): verb executions are pure functions of the canonical
// request key (canonical_request_key), so the daemon stores each finished
// result once and N identical concurrent requests run ONE simulation — the
// first caller becomes the owner, later callers join its in-flight future.
//
// Only successful ("ok") results are retained across requests; failures
// still resolve every joined waiter but are never served to a later
// request, so a transient error cannot poison the cache. Capacity is
// bounded with FIFO eviction — entries are deterministic to recompute, so
// sophistication buys nothing here.
//
// Persistence (optional): when constructed with a journal path, finished
// "ok" results are appended to a crash-safe on-disk journal (ResultJournal,
// DESIGN.md §12) and replayed on construction, so a restarted daemon serves
// its previous results as warm hits. Journal I/O failures degrade the cache
// to memory-only — they never fail the request being served.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace canu::svc {

class ResultJournal;

/// One finished verb execution, shared between the cache, in-flight
/// waiters, and response assembly.
struct CachedResult {
  std::string status = "ok";  ///< "ok" | "error" | "overloaded"
  int exit_code = 0;
  std::string output;  ///< verb stdout, byte-exact
  std::string error;   ///< verb stderr
};

using ResultPtr = std::shared_ptr<const CachedResult>;

class ResultCache {
 public:
  /// `journal_path` empty → memory-only cache. Otherwise the journal at
  /// that path is replayed into the cache (newest entries win under the
  /// FIFO bound) and every later "ok" completion is appended to it.
  explicit ResultCache(std::size_t max_entries,
                       const std::string& journal_path = {});
  ~ResultCache();

  enum class Role {
    kHit,    ///< completed result available immediately
    kJoined, ///< an identical request is in flight; wait on `pending`
    kOwner,  ///< caller must execute and then complete() the key
  };

  struct Lookup {
    Role role = Role::kOwner;
    ResultPtr hit;  ///< kHit only
    /// Resolved by the owner's complete(); valid for kJoined and kOwner
    /// (owners wait on their own future after scheduling the work).
    std::shared_future<ResultPtr> pending;
  };

  /// Classify this request against the cache, atomically registering the
  /// caller as owner when the key is neither cached nor in flight.
  Lookup acquire(const std::string& key);

  /// Owner-only: publish the result, waking every joined waiter. Caches it
  /// for later requests iff status == "ok".
  void complete(const std::string& key, ResultPtr result);

  /// Inject an externally produced "ok" result (the `put` verb behind
  /// `canu drain`, DESIGN.md §16). Returns false without touching anything
  /// when the key is already cached — replays are idempotent. Journaled
  /// like any local completion so a drained-in entry survives restart.
  bool put(const std::string& key, const CachedResult& result);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t coalesced() const noexcept { return coalesced_; }
  std::size_t size() const;
  /// Approximate retained payload (keys + outputs + errors) in bytes — the
  /// result-cache size gauge behind `canu status` and the `metrics` verb.
  std::uint64_t bytes() const;

  /// Entries replayed from the journal at construction (0 without one).
  std::uint64_t restored() const noexcept { return restored_; }
  /// Entries appended to the journal since construction.
  std::uint64_t persisted() const noexcept { return persisted_; }
  /// True once a journal write failed and persistence was switched off.
  bool journal_degraded() const noexcept { return journal_degraded_; }

  /// Journal rewrites completed by the background compaction thread.
  std::uint64_t compactions() const noexcept { return compactions_; }

  /// Block until no compaction is queued or running (test hook; also used
  /// by the destructor so a rewrite never outlives the cache).
  void wait_compaction_idle();

 private:
  struct InFlight {
    std::promise<ResultPtr> promise;
    std::shared_future<ResultPtr> future;
  };

  /// Holding mutex_: append to the journal (compaction-aware — records
  /// also land in the pending delta while a rewrite is in flight, and a
  /// grown dead fraction queues a background rewrite instead of paying for
  /// it inline); one failure disables persistence for good.
  void journal_append_locked(const std::string& key,
                             const CachedResult& result);

  /// Holding mutex_: cache an "ok" result (FIFO-evicting) and journal it.
  /// Shared tail of complete() and put().
  void insert_done_locked(const std::string& key, ResultPtr result);

  /// Mirror of ResultJournal::Record, local so this header does not need
  /// journal.hpp (which includes us for CachedResult).
  struct JournalEntry {
    std::string key;
    CachedResult result;
  };

  /// Holding mutex_: snapshot the live set in FIFO order.
  std::vector<JournalEntry> snapshot_live_locked() const;

  /// Background thread: waits for queued snapshots, writes each to a temp
  /// file without the lock, then publishes it under the lock (appending
  /// only the records that arrived mid-rewrite).
  void compactor_loop();

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<std::string, ResultPtr> done_;
  std::deque<std::string> order_;  ///< insertion order for FIFO eviction
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_;
  std::unique_ptr<ResultJournal> journal_;  ///< null → memory-only
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::uint64_t> persisted_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<bool> journal_degraded_{false};

  // Background compaction (guarded by mutex_; cv shares the same mutex).
  std::thread compactor_;
  std::condition_variable compaction_cv_;
  bool compaction_queued_ = false;    ///< a snapshot awaits the worker
  bool compaction_running_ = false;   ///< worker is writing the temp file
  bool stopping_ = false;             ///< destructor has asked the worker out
  std::vector<JournalEntry> compaction_snapshot_;
  /// Records appended to the (doomed) journal file while a rewrite is in
  /// flight; finish_compaction() replays them into the temp file so the
  /// rename loses nothing.
  std::vector<JournalEntry> compaction_delta_;
};

}  // namespace canu::svc
