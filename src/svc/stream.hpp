// Streamed-response plumbing (DESIGN.md §16): the worker executing a verb
// writes into a StreamTee — an ostream buffer that accumulates the verb's
// full stdout (the bytes cached and sent to joiners) while handing flushed
// prefixes to a StreamQueue as chunks. The connection thread drains the
// queue between its deadline polls and ships each chunk as its own wire
// frame, so a multi-workload `evaluate --grid` delivers its first section
// as soon as the first workload finishes instead of after the whole sweep.
//
// Chunk boundaries are the verb's explicit flushes (the grid path flushes
// per workload section) plus a size backstop: once the unshipped suffix
// exceeds kStreamChunkBytes it is emitted even without a flush, bounding
// per-chunk frames for verbs that produce huge output without flushing.
// A StreamTee with no queue is a plain accumulator — the non-streaming
// request path uses the same code with chunking compiled down to nothing.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <streambuf>
#include <string>

namespace canu::svc {

/// Chunks larger than this are emitted eagerly even without a flush.
inline constexpr std::size_t kStreamChunkBytes = 64u << 10;

/// Thread-safe chunk hand-off between the worker (producer) and the
/// connection thread (consumer). Unbounded but naturally limited by the
/// verb's total output, which the frame limit already bounds.
///
/// On a serial daemon (no thread pool) the worker IS the connection
/// thread, so nothing would drain the queue until the verb finishes and
/// every chunk would ride in the final response — streaming silently
/// degraded to buffered. set_sink() fixes that mode: with a sink
/// installed, push() delivers the chunk to it immediately on the calling
/// thread instead of queueing, so the flush that produced it also ships
/// the wire frame.
class StreamQueue {
 public:
  using Sink = std::function<void(const std::string&)>;

  /// Deliver future chunks synchronously to `sink` instead of queueing.
  /// Install before the worker starts writing; serial-daemon mode only.
  void set_sink(Sink sink) {
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = std::move(sink);
  }

  void push(std::string chunk) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_) {
      sink_(chunk);
      return;
    }
    chunks_.push_back(std::move(chunk));
  }

  /// Move all pending chunks into `out` (appended); returns the count.
  std::size_t drain(std::deque<std::string>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = chunks_.size();
    while (!chunks_.empty()) {
      out->push_back(std::move(chunks_.front()));
      chunks_.pop_front();
    }
    return n;
  }

 private:
  std::mutex mutex_;
  std::deque<std::string> chunks_;
  Sink sink_;
};

class StreamTee : public std::streambuf {
 public:
  /// `queue` may be null: accumulate only, never emit chunks.
  explicit StreamTee(StreamQueue* queue) : queue_(queue) {}

  /// Everything written so far — the verb's byte-exact stdout.
  const std::string& str() const noexcept { return full_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) {
      full_.push_back(static_cast<char>(ch));
      maybe_emit_backstop();
    }
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    full_.append(s, static_cast<std::size_t>(n));
    maybe_emit_backstop();
    return n;
  }

  /// A flush is a chunk boundary: hand the unshipped suffix to the queue.
  int sync() override {
    emit();
    return 0;
  }

 private:
  void emit() {
    if (queue_ == nullptr || emitted_ == full_.size()) return;
    queue_->push(full_.substr(emitted_));
    emitted_ = full_.size();
  }

  void maybe_emit_backstop() {
    if (queue_ != nullptr && full_.size() - emitted_ >= kStreamChunkBytes) {
      emit();
    }
  }

  StreamQueue* queue_;
  std::string full_;
  std::size_t emitted_ = 0;  ///< bytes already handed to the queue
};

}  // namespace canu::svc
