// Shared verb implementations: the single execution path behind BOTH the
// `canu` CLI and the canud daemon. The CLI calls run_verb with std::cout;
// the daemon calls it with a string stream and ships the bytes back — so
// `canu submit evaluate ...` output is byte-identical to
// `canu evaluate ...` by construction, not by parallel maintenance.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "svc/protocol.hpp"
#include "util/cancel.hpp"

namespace canu {
class ThreadPool;
}  // namespace canu

namespace canu::svc {

/// Caller-side execution knobs that are not part of the request identity.
struct VerbOptions {
  /// Shared worker pool (daemon mode; not owned). Null resolves
  /// req.threads exactly like the standalone CLI.
  ThreadPool* pool = nullptr;
  /// stderr heartbeat during evaluate (CLI-only; never set by the daemon).
  bool progress = false;
  bool progress_force = false;
  /// Cooperative cancellation token (borrowed; null = none): checked on
  /// entry and at chunk boundaries of the simulation engines, so a
  /// timed-out or abandoned request unwinds with canu::Cancelled within
  /// one chunk of work.
  const CancelToken* cancel = nullptr;
  /// Daemon request ID (0 = standalone CLI): threaded into the verb and
  /// evaluator spans as a "req" arg, so one request's work is traceable
  /// across scheduler → run_verb → Evaluator in a trace-event file.
  std::uint64_t request_id = 0;
};

/// Execute one verb, writing its stdout to `out` and usage/diagnostics to
/// `err`; returns the process exit code. Throws canu::Error exactly where
/// the CLI would (callers render the message). Handles every servable verb
/// plus "trace" (CLI-only, see verb_is_servable).
int run_verb(const Request& req, std::ostream& out, std::ostream& err,
             const VerbOptions& options = {});

/// True if the daemon executes this verb remotely. "trace" is CLI-only (it
/// writes caller-side files); "serve"/"submit"/"status" are the service
/// plumbing itself.
bool verb_is_servable(const std::string& verb);

/// True if results of this verb may be stored in the cross-request result
/// cache (deterministic output; excludes the "ping" diagnostic).
bool verb_is_cacheable(const std::string& verb);

/// Scheme labels the request resolves to — a component of the canonical
/// result-cache key, so two spellings of the same scheme set share one
/// cache entry. For evaluate --grid requests these are the expanded grid
/// cell labels. Empty for requests that would fail to parse (those are
/// never cached anyway).
std::vector<std::string> scheme_set_for(const Request& req);

/// Request args in the normal form hashed into the result-cache key: for
/// evaluate --grid requests the dimension tokens are re-serialized
/// canonically (lists sorted and deduplicated, dimensions in fixed order),
/// so permuted-but-equivalent grid specs share one cache entry. Any other
/// request — including a grid spec that fails to parse, which can never be
/// cached — passes through unchanged.
std::vector<std::string> canonical_request_args(const Request& req);

/// Workload trace through the environment-selected trace cache (identical
/// stream to plain generation; CANU_TRACE_CACHE=0 opts out). Shared by the
/// run/threec/trace verbs.
Trace env_cached_workload_trace(const std::string& name,
                                const WorkloadParams& params);

}  // namespace canu::svc
