#include "svc/journal.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace canu::svc {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'C', 'A', 'N', 'U', 'J', 'R', 'N', 'L'};
constexpr std::uint32_t kFormatVersion = 1;
/// A record larger than this cannot be legitimate (responses are bounded by
/// the wire-frame limit); treat it as corruption instead of allocating.
constexpr std::uint32_t kMaxRecordBytes = 80u << 20;

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
void put_le(std::string* out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

template <typename T>
bool get_le(std::string_view s, std::size_t* pos, T* value) {
  if (s.size() - *pos < sizeof(T)) return false;
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(s[*pos + i])) << (8 * i);
  }
  *pos += sizeof(T);
  *value = v;
  return true;
}

void put_field(std::string* out, std::string_view value) {
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(value.size()));
  out->append(value);
}

bool get_field(std::string_view s, std::size_t* pos, std::string* value) {
  std::uint32_t len = 0;
  if (!get_le(s, pos, &len)) return false;
  if (s.size() - *pos < len) return false;
  value->assign(s.substr(*pos, len));
  *pos += len;
  return true;
}

std::string encode_record(const std::string& key, const CachedResult& r) {
  std::string payload;
  put_field(&payload, key);
  put_field(&payload, std::to_string(r.exit_code));
  put_field(&payload, r.output);
  put_field(&payload, r.error);
  std::string record;
  put_le<std::uint32_t>(&record, static_cast<std::uint32_t>(payload.size()));
  put_le<std::uint64_t>(&record, fnv1a64(payload));
  record += payload;
  return record;
}

bool decode_payload(std::string_view payload, ResultJournal::Record* out) {
  std::size_t pos = 0;
  std::string exit_code;
  if (!get_field(payload, &pos, &out->key)) return false;
  if (!get_field(payload, &pos, &exit_code)) return false;
  if (!get_field(payload, &pos, &out->result.output)) return false;
  if (!get_field(payload, &pos, &out->result.error)) return false;
  if (pos != payload.size()) return false;
  char* end = nullptr;
  out->result.exit_code =
      static_cast<int>(std::strtol(exit_code.c_str(), &end, 10));
  if (end == exit_code.c_str() || *end != '\0') return false;
  out->result.status = "ok";  // only successful results are journaled
  return true;
}

}  // namespace

ResultJournal::ResultJournal(std::string path) : path_(std::move(path)) {
  CANU_CHECK_MSG(!path_.empty(), "result journal requires a file path");
}

std::vector<ResultJournal::Record> ResultJournal::load() {
  std::vector<Record> records;
  restored_ = 0;
  corrupt_tail_ = false;
  appended_records_ = 0;

  std::ifstream is(path_, std::ios::binary);
  if (!is.is_open()) return records;  // no journal yet

  char magic[8] = {};
  std::uint32_t version = 0;
  is.read(magic, sizeof magic);
  {
    char vbuf[4] = {};
    is.read(vbuf, sizeof vbuf);
    for (std::size_t i = 0; i < 4; ++i) {
      version |= static_cast<std::uint32_t>(static_cast<unsigned char>(vbuf[i]))
                 << (8 * i);
    }
  }
  if (!is.good() || std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
      version != kFormatVersion) {
    // Not a journal we understand: start over rather than guessing.
    is.close();
    corrupt_tail_ = true;
    std::error_code ec;
    fs::remove(path_, ec);
    return records;
  }

  std::uint64_t good_end = sizeof kMagic + 4;
  for (;;) {
    char header[12];
    is.read(header, sizeof header);
    if (is.gcount() == 0 && is.eof()) break;  // clean end of journal
    if (is.gcount() < static_cast<std::streamsize>(sizeof header)) {
      corrupt_tail_ = true;
      break;
    }
    std::uint32_t len = 0;
    std::uint64_t checksum = 0;
    std::size_t pos = 0;
    get_le(std::string_view(header, sizeof header), &pos, &len);
    get_le(std::string_view(header, sizeof header), &pos, &checksum);
    if (len > kMaxRecordBytes) {
      corrupt_tail_ = true;
      break;
    }
    std::string payload(len, '\0');
    is.read(payload.data(), len);
    if (is.gcount() < static_cast<std::streamsize>(len)) {
      corrupt_tail_ = true;
      break;
    }
    Record rec;
    if (fnv1a64(payload) != checksum || !decode_payload(payload, &rec)) {
      corrupt_tail_ = true;
      break;
    }
    records.push_back(std::move(rec));
    good_end += sizeof header + len;
  }
  is.close();

  if (corrupt_tail_) {
    // Keep the valid prefix: future appends must extend consistent state,
    // never interleave with half-written garbage.
    std::error_code ec;
    fs::resize_file(path_, good_end, ec);
    CANU_CHECK_MSG(!ec, "cannot truncate corrupt journal tail of '"
                            << path_ << "': " << ec.message());
  }
  restored_ = records.size();
  appended_records_ = records.size();
  return records;
}

void ResultJournal::append(const std::string& key, const CachedResult& r) {
  fault::inject("journal.write");
  const std::string record = encode_record(key, r);

  std::ofstream os(path_, std::ios::binary | std::ios::app);
  CANU_CHECK_MSG(os.is_open(),
                 "cannot open result journal '" << path_ << "'");
  if (os.tellp() == std::streampos(0)) {
    os.write(kMagic, sizeof kMagic);
    char vbuf[4];
    for (std::size_t i = 0; i < 4; ++i) {
      vbuf[i] = static_cast<char>((kFormatVersion >> (8 * i)) & 0xff);
    }
    os.write(vbuf, sizeof vbuf);
  }

  if (fault::armed() && fault::should_fail("journal.mid_write")) {
    // Simulate dying mid-append: push half the record to the kernel, then
    // die as `kill -9` would. (Reached only under a `throw`-action arming;
    // a `kill` action raises inside should_fail with nothing yet written.)
    os.write(record.data(),
             static_cast<std::streamsize>(record.size() / 2));
    os.flush();
    throw Error("injected fault at journal.mid_write");
  }

  os.write(record.data(), static_cast<std::streamsize>(record.size()));
  os.flush();
  CANU_CHECK_MSG(os.good(),
                 "failed appending to result journal '" << path_ << "'");
  ++appended_records_;
}

void ResultJournal::compact(const std::vector<Record>& live) {
  // The blocking form is the two-phase protocol with an empty delta.
  finish_compaction(begin_compaction(live), {});
}

ResultJournal::CompactionToken ResultJournal::begin_compaction(
    const std::vector<Record>& snapshot) {
  // A per-call counter keeps a background begin from colliding with a
  // concurrent blocking compact() in the same process.
  static std::atomic<std::uint64_t> seq{0};
  CompactionToken token;
  token.temp = path_ + ".tmp." + std::to_string(::getpid()) + "." +
               std::to_string(seq.fetch_add(1));
  token.records = snapshot.size();

  std::ofstream os(token.temp, std::ios::binary | std::ios::trunc);
  CANU_CHECK_MSG(os.is_open(),
                 "cannot open journal temp file '" << token.temp << "'");
  os.write(kMagic, sizeof kMagic);
  char vbuf[4];
  for (std::size_t i = 0; i < 4; ++i) {
    vbuf[i] = static_cast<char>((kFormatVersion >> (8 * i)) & 0xff);
  }
  os.write(vbuf, sizeof vbuf);
  for (const Record& rec : snapshot) {
    const std::string record = encode_record(rec.key, rec.result);
    os.write(record.data(), static_cast<std::streamsize>(record.size()));
  }
  os.flush();
  if (!os.good()) {
    os.close();
    abort_compaction(token);
    throw Error("failed writing compacted journal '" + token.temp + "'");
  }
  return token;
}

void ResultJournal::finish_compaction(const CompactionToken& token,
                                      const std::vector<Record>& delta) {
  if (!delta.empty()) {
    std::ofstream os(token.temp, std::ios::binary | std::ios::app);
    if (!os.is_open()) {
      abort_compaction(token);
      throw Error("cannot reopen journal temp file '" + token.temp + "'");
    }
    for (const Record& rec : delta) {
      const std::string record = encode_record(rec.key, rec.result);
      os.write(record.data(), static_cast<std::streamsize>(record.size()));
    }
    os.flush();
    if (!os.good()) {
      os.close();
      abort_compaction(token);
      throw Error("failed appending delta to compacted journal '" +
                  token.temp + "'");
    }
  }
  std::error_code ec;
  fs::rename(token.temp, path_, ec);
  if (ec) {
    abort_compaction(token);
    throw Error("cannot publish compacted journal '" + path_ +
                "': " + ec.message());
  }
  appended_records_ = token.records + delta.size();
}

void ResultJournal::abort_compaction(const CompactionToken& token) noexcept {
  std::error_code ec;
  fs::remove(token.temp, ec);
}

std::string encode_record_bytes(const std::string& key,
                                const CachedResult& result) {
  return encode_record(key, result);
}

bool decode_record_bytes(std::string_view bytes, ResultJournal::Record* out) {
  std::size_t pos = 0;
  std::uint32_t len = 0;
  std::uint64_t checksum = 0;
  if (!get_le(bytes, &pos, &len)) return false;
  if (!get_le(bytes, &pos, &checksum)) return false;
  if (len > kMaxRecordBytes || bytes.size() - pos != len) return false;
  const std::string_view payload = bytes.substr(pos, len);
  if (fnv1a64(payload) != checksum) return false;
  return decode_payload(payload, out);
}

}  // namespace canu::svc
