// canud wire protocol (DESIGN.md §11): length-prefixed JSON frames over a
// stream socket. Each frame is a 4-byte big-endian payload length followed
// by one JSON document; a connection carries any number of
// request→response exchanges in order.
//
// The JSON layer reuses the dependency-free obs writer/parser, so the
// daemon adds no third-party code. Requests mirror the CLI surface (verb +
// positional args + the --scale/--seed/--threads knobs); responses carry
// the verb's exact stdout/stderr bytes plus a metadata fragment (build
// version, result-cache disposition, server counters) that clients can
// surface without ever touching the payload — `canu submit` output stays
// byte-identical to the direct CLI path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/workload.hpp"

namespace canu::svc {

/// Frames larger than this are a protocol violation (read_frame throws
/// before allocating), bounding memory a malformed or hostile peer can pin.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Bumped on incompatible wire changes; carried in every document.
inline constexpr unsigned kProtocolVersion = 1;

struct Request {
  std::string verb;               ///< "evaluate", "advise", "status", ...
  std::vector<std::string> args;  ///< positional args after the verb
  WorkloadParams params;          ///< seed + scale (+ address base)
  unsigned threads = 0;           ///< 0 = server default (shared pool)
  /// Server-enforced deadline in milliseconds; 0 = no deadline. Excluded
  /// from the canonical key (the result does not depend on it).
  std::uint64_t timeout_ms = 0;
  /// Client opts into frame-per-chunk streamed responses (DESIGN.md §16):
  /// the server may send any number of stream-chunk frames carrying output
  /// prefixes before the final response frame, whose `output` then holds
  /// only the remaining tail. Excluded from the canonical key (transport
  /// shape, not result identity).
  bool accept_stream = false;
  /// Set by a daemon forwarding a misrouted request to its ring owner; the
  /// receiver must answer locally, never re-forward (no routing loops).
  /// Excluded from the canonical key.
  bool routed = false;
  /// Opaque payload for the internal `put` verb (hex-encoded CANUJRNL
  /// record, svc/journal.hpp) used by `canu drain` to replay cache entries
  /// onto the ring. Empty for every other verb; excluded from the
  /// canonical key (put responses are never cached).
  std::string body;
};

/// Monotonic server counters, snapshotted into every response and rendered
/// by the `status` verb. Mirrors (and, when a session is active, feeds) the
/// svc_* counters of the obs metrics registry.
struct ServerCounters {
  std::uint64_t admitted = 0;            ///< requests the scheduler accepted
  std::uint64_t rejected = 0;            ///< explicit `overloaded` responses
  std::uint64_t result_cache_hits = 0;   ///< answered from the result cache
  std::uint64_t result_cache_misses = 0; ///< had to simulate
  std::uint64_t coalesced = 0;           ///< joined an identical in-flight run
  std::uint64_t in_flight = 0;           ///< queued+running at snapshot time
  std::uint64_t capacity = 0;            ///< admission bound
  std::uint64_t timed_out = 0;           ///< `deadline_exceeded` responses
  std::uint64_t cancelled = 0;           ///< cancelled (peer gone / shutdown)
  std::uint64_t restored = 0;            ///< cache entries replayed from disk
  std::uint64_t persisted = 0;           ///< cache entries journaled to disk
  std::uint64_t forwarded = 0;           ///< requests routed to a ring peer
  std::uint64_t drained_in = 0;          ///< cache entries accepted via `put`
};

struct Response {
  /// "ok" | "error" | "overloaded" | "deadline_exceeded" | "cancelled"
  std::string status;
  std::string version;      ///< server build version (obs::kVersion)
  int exit_code = 0;        ///< process exit code of the verb
  std::string output;       ///< verb stdout, byte-exact
  std::string error;        ///< verb stderr / failure message
  double wall_s = 0;        ///< server-side service time
  bool result_cache_hit = false;
  bool coalesced = false;   ///< deduplicated onto an in-flight identical run
  std::string cache_key;    ///< canonical key ("" for uncacheable verbs)
  /// True when stream-chunk frames preceded this response; `output` then
  /// carries only the tail after `stream_chunks` chunks.
  bool streamed = false;
  std::uint64_t stream_chunks = 0;
  ServerCounters server;

  bool ok() const noexcept { return status == "ok"; }
};

std::string encode_request(const Request& req);
std::string encode_response(const Response& resp);

/// Parse a document; throws canu::Error on malformed input or a protocol
/// version mismatch.
Request decode_request(std::string_view json);
Response decode_response(std::string_view json);

/// Write one frame to `fd`; throws canu::Error on I/O failure or oversize
/// payload.
void write_frame(int fd, std::string_view payload);

/// Read one frame. Returns false on clean EOF before a header byte; throws
/// canu::Error on truncated frames, I/O errors, or oversize lengths.
bool read_frame(int fd, std::string* payload);

/// Encode one stream-chunk frame body: a document distinguishable from a
/// response by its "stream" field, carrying a verbatim output slice. Sent
/// only to clients that set Request.accept_stream; any number of chunks
/// precede the final (end-of-stream) response frame.
std::string encode_stream_chunk(std::string_view data);

/// True when `json` is a stream-chunk document, storing its data slice;
/// false for anything else (the caller then decodes a response). Throws
/// canu::Error on malformed JSON or a protocol version mismatch.
bool decode_stream_chunk(std::string_view json, std::string* data);

/// Canonical result-cache key: a 128-bit FNV-1a hash (hex) over the
/// protocol version, verb, args, seed, scale, address base, the scheme set
/// the request resolves to, and the build version. The thread count is
/// deliberately excluded — results are bit-for-bit identical at any thread
/// count (pinned by the parallel-parity suites), so requests differing
/// only in --threads deduplicate onto one simulation.
std::string canonical_request_key(const Request& req);

}  // namespace canu::svc
