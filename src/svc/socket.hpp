// Thin POSIX socket layer for the canud daemon and its client: RAII fd
// ownership, Unix-domain + TCP listeners/connectors, and EINTR-safe
// exact-length I/O. Everything throws canu::Error with the errno text so
// callers never check int returns.
//
// Address forms:
//  * TCP hosts may be IPv4 ("127.0.0.1") or IPv6, bare ("::1") or bracketed
//    ("[::1]") — brackets are how ports disambiguate in URLs and flags.
//  * Unix paths starting with '@' name the Linux abstract namespace
//    ("@canud" → leading NUL in sun_path): no filesystem entry, no stale
//    socket files, automatic cleanup when the last fd closes.
//
// Deliberately minimal otherwise: blocking sockets, poll()-based readiness
// with a stop descriptor (the server's self-pipe) so accept loops and
// in-frame reads wake promptly on shutdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include <netinet/in.h>
#include <sys/un.h>

namespace canu::svc {

/// Move-only owner of a file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const noexcept { return fd_; }
  explicit operator bool() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A parsed Unix-domain address: filesystem or abstract ('@'-prefixed).
/// Exposed for tests; produced by resolve_unix().
struct UnixAddress {
  sockaddr_un addr{};
  socklen_t len = 0;      ///< exact bind/connect length (abstract ≠ sizeof)
  bool abstract = false;  ///< no filesystem entry; never unlink
};

/// Parse `path` into a bindable address. '@name' selects the abstract
/// namespace (sun_path[0] = NUL). Throws canu::Error on empty or oversize
/// paths.
UnixAddress resolve_unix(const std::string& path);

/// A parsed TCP host: IPv4 or IPv6 (brackets stripped). Exposed for tests;
/// produced by resolve_tcp().
struct TcpAddress {
  sockaddr_storage addr{};
  socklen_t len = 0;
  int family = 0;  ///< AF_INET or AF_INET6
};

/// Parse host + port, accepting "127.0.0.1", "::1" and "[::1]". Throws
/// canu::Error when `host` is neither a valid IPv4 nor IPv6 literal.
TcpAddress resolve_tcp(const std::string& host, std::uint16_t port);

/// Bind + listen on a Unix-domain socket, replacing a stale socket file at
/// `path` (plain files are never unlinked; abstract '@' addresses have no
/// file at all). Throws canu::Error on failure, including paths longer
/// than sockaddr_un allows.
FdHandle listen_unix(const std::string& path);

/// Bind + listen on host:port (IPv4 or IPv6 literal; port 0 =
/// kernel-assigned). The actually bound port is stored through
/// `bound_port` when non-null.
FdHandle listen_tcp(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port);

FdHandle connect_unix(const std::string& path);
FdHandle connect_tcp(const std::string& host, std::uint16_t port);

/// Write all n bytes (EINTR-safe); throws canu::Error on error.
void write_all(int fd, const void* data, std::size_t n);

/// Read exactly n bytes. Returns false on EOF before the first byte;
/// throws canu::Error on mid-buffer EOF or error.
bool read_exact(int fd, void* data, std::size_t n);

/// Block until `fd` is readable or `stop_fd` becomes readable (stop wins);
/// returns true when `fd` has data, false when the stop fired. A negative
/// stop_fd waits on `fd` alone.
bool wait_readable(int fd, int stop_fd);

/// accept(2) wrapper: nullopt-like invalid handle when the stop fired or
/// the listener was closed; throws on real errors.
FdHandle accept_or_stop(int listen_fd, int stop_fd);

/// Non-blocking probe: true when the peer has closed its end (EOF or error
/// pending). Used by the server's deadline wait loop to cancel work whose
/// client has already hung up.
bool peer_disconnected(int fd) noexcept;

}  // namespace canu::svc
