// Thin POSIX socket layer for the canud daemon and its client: RAII fd
// ownership, Unix-domain + TCP listeners/connectors, and EINTR-safe
// exact-length I/O. Everything throws canu::Error with the errno text so
// callers never check int returns.
//
// Deliberately minimal: IPv4 only, blocking sockets, poll()-based readiness
// with a stop descriptor (the server's self-pipe) so accept loops and
// in-frame reads wake promptly on shutdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace canu::svc {

/// Move-only owner of a file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const noexcept { return fd_; }
  explicit operator bool() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on a Unix-domain socket, replacing a stale socket file at
/// `path` (plain files are never unlinked). Throws canu::Error on failure,
/// including paths longer than sockaddr_un allows.
FdHandle listen_unix(const std::string& path);

/// Bind + listen on host:port (IPv4 dotted quad; port 0 = kernel-assigned).
/// The actually bound port is stored through `bound_port` when non-null.
FdHandle listen_tcp(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port);

FdHandle connect_unix(const std::string& path);
FdHandle connect_tcp(const std::string& host, std::uint16_t port);

/// Write all n bytes (EINTR-safe); throws canu::Error on error.
void write_all(int fd, const void* data, std::size_t n);

/// Read exactly n bytes. Returns false on EOF before the first byte;
/// throws canu::Error on mid-buffer EOF or error.
bool read_exact(int fd, void* data, std::size_t n);

/// Block until `fd` is readable or `stop_fd` becomes readable (stop wins);
/// returns true when `fd` has data, false when the stop fired. A negative
/// stop_fd waits on `fd` alone.
bool wait_readable(int fd, int stop_fd);

/// accept(2) wrapper: nullopt-like invalid handle when the stop fired or
/// the listener was closed; throws on real errors.
FdHandle accept_or_stop(int listen_fd, int stop_fd);

}  // namespace canu::svc
