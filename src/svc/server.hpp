// canud: the resident request-serving daemon (DESIGN.md §11). Listens on a
// Unix-domain socket and/or a TCP socket, speaks the length-prefixed JSON
// protocol (svc/protocol.hpp), and serves the CLI verbs as typed requests.
//
// Execution path per request:
//   connection thread → ResultCache (hit / join in-flight / own)
//                     → RequestScheduler admission (own only; at capacity
//                       the client gets an explicit `overloaded` response)
//                     → run_verb on the shared help-while-waiting pool
//                     → response frame with the verb's exact bytes + a
//                       metadata fragment (version, cache disposition,
//                       server counters)
//
// stop() is the graceful-drain path used by the SIGTERM/SIGINT handler of
// `canu serve`: close the listeners, wake idle connections, let in-flight
// requests finish and answer, then join every thread. The amortized state
// PRs 1–3 built — the on-disk trace cache, the shared ThreadPool, the obs
// registry — lives for the daemon's whole life instead of one CLI process.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/result_cache.hpp"
#include "svc/scheduler.hpp"
#include "svc/socket.hpp"
#include "util/thread_pool.hpp"

namespace canu::svc {

struct ServerOptions {
  std::string unix_socket;  ///< listener path; empty = no Unix listener
  int tcp_port = -1;        ///< >= 0 = TCP listener (0 = kernel-assigned)
  std::string tcp_host = "127.0.0.1";
  unsigned threads = 0;     ///< worker pool size (resolve_thread_count)
  std::size_t queue_capacity = 64;       ///< admission bound
  std::size_t result_cache_entries = 256;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the configured listeners and start accepting. Throws canu::Error
  /// when no endpoint is configured or a bind fails.
  void start();

  /// Graceful shutdown: stop accepting, answer in-flight requests, join
  /// all threads. Idempotent; callable from any thread.
  void stop();

  /// Human-readable endpoint list, e.g. "unix:/run/canud.sock tcp:127.0.0.1:7070".
  std::string endpoints() const;

  std::uint16_t bound_tcp_port() const noexcept { return tcp_port_; }
  const ServerOptions& options() const noexcept { return options_; }
  unsigned threads() const noexcept { return pool_ ? pool_->size() : 1; }

  ServerCounters counters() const;

  /// Execute one request exactly as a connection would (admission, result
  /// cache, dedup) without any socket — the in-process loopback used by
  /// tests and by future embedded deployments.
  Response execute(const Request& req);

 private:
  void accept_loop(int listen_fd);
  void handle_connection(FdHandle conn, std::uint64_t id);
  void reap_finished_locked(std::vector<std::thread>* out);
  Response respond(const Request& req, const CachedResult& result,
                   bool cache_hit, bool coalesced,
                   const std::string& cache_key, double wall_s) const;
  Response status_response() const;

  ServerOptions options_;
  std::optional<ThreadPool> pool_storage_;
  ThreadPool* pool_ = nullptr;  ///< null in the serial (--threads=1) config
  ResultCache cache_;
  std::unique_ptr<RequestScheduler> scheduler_;

  FdHandle unix_listener_;
  FdHandle tcp_listener_;
  std::uint16_t tcp_port_ = 0;
  FdHandle stop_read_;   ///< self-pipe: readable once stop() begins
  FdHandle stop_write_;
  std::chrono::steady_clock::time_point start_time_;

  std::vector<std::thread> accept_threads_;
  mutable std::mutex conn_mutex_;
  std::map<std::uint64_t, std::thread> connections_;
  std::vector<std::uint64_t> finished_;  ///< connection ids ready to join
  std::uint64_t next_conn_id_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace canu::svc
