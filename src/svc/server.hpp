// canud: the resident request-serving daemon (DESIGN.md §11, §12). Listens
// on a Unix-domain socket and/or a TCP socket, speaks the length-prefixed
// JSON protocol (svc/protocol.hpp), and serves the CLI verbs as typed
// requests.
//
// Execution path per request:
//   connection thread → ResultCache (hit / join in-flight / own)
//                     → RequestScheduler admission (own only; at capacity
//                       the client gets an explicit `overloaded` response);
//                       control-plane verbs class as interactive and jump
//                       queued batch work (with aging, so batch never
//                       starves)
//                     → run_verb on the shared help-while-waiting pool,
//                       under a per-request CancelToken: the connection
//                       thread waits with the request's --timeout-ms
//                       deadline and polls for client disconnect, answering
//                       `deadline_exceeded` / `cancelled` while the worker
//                       unwinds at its next chunk boundary
//                     → response frame with the verb's exact bytes + a
//                       metadata fragment (version, cache disposition,
//                       server counters)
//
// stop() is the graceful-drain path used by the SIGTERM/SIGINT handler of
// `canu serve`: close the listeners, wake idle connections, let in-flight
// requests finish and answer, then join every thread. With a cache_file
// configured, finished results also persist across restarts via the
// crash-safe ResultJournal.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/result_cache.hpp"
#include "svc/scheduler.hpp"
#include "svc/socket.hpp"
#include "svc/stream.hpp"
#include "svc/telemetry.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace canu::svc {

struct ServerOptions {
  std::string unix_socket;  ///< listener path; empty = no Unix listener
  int tcp_port = -1;        ///< >= 0 = TCP listener (0 = kernel-assigned)
  std::string tcp_host = "127.0.0.1";
  unsigned threads = 0;     ///< worker pool size (resolve_thread_count)
  std::size_t queue_capacity = 64;       ///< admission bound
  std::size_t result_cache_entries = 256;
  /// Crash-safe result-cache journal (svc/journal.hpp); empty = memory-only.
  std::string cache_file;
  /// Batch requests older than this beat queued interactive ones.
  std::chrono::milliseconds aging = RequestScheduler::kDefaultAging;
  /// Slow-request log threshold: requests whose total time is >= this many
  /// milliseconds are logged as one JSON line each (0 logs every request;
  /// < 0 disables the log).
  long long slow_log_ms = -1;
  /// Slow-log destination file (appended); empty = stderr.
  std::string slow_log_path;
  /// Fleet shard name (serve --shard-id): labels the `metrics` verb output
  /// (Prometheus `shard` label / JSON "shard" field) and the status table.
  /// Empty = unsharded; output stays byte-identical to pre-fleet builds.
  std::string shard_id;
  /// Fleet routing hook (DESIGN.md §16), wired by `canu serve --peers` via
  /// fleet::make_router so svc stays ignorant of ring mechanics: given a
  /// canonical request key, return the owning peer's endpoint when that
  /// owner is NOT this daemon, or nullopt when the key is local. Null
  /// function = standalone daemon, no forwarding.
  std::function<std::optional<Endpoint>(const std::string&)> route_owner;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the configured listeners and start accepting. Throws canu::Error
  /// when no endpoint is configured or a bind fails.
  void start();

  /// Graceful shutdown: stop accepting, answer in-flight requests, join
  /// all threads. Idempotent; callable from any thread.
  void stop();

  /// Human-readable endpoint list, e.g. "unix:/run/canud.sock tcp:127.0.0.1:7070".
  std::string endpoints() const;

  std::uint16_t bound_tcp_port() const noexcept { return tcp_port_; }
  const ServerOptions& options() const noexcept { return options_; }
  unsigned threads() const noexcept { return pool_ ? pool_->size() : 1; }

  ServerCounters counters() const;

  /// Execute one request exactly as a connection would (admission, result
  /// cache, dedup, deadline) without any socket — the in-process loopback
  /// used by tests and by future embedded deployments. `peer_fd` (>= 0)
  /// lets the deadline wait loop detect a vanished client and cancel the
  /// request's work.
  Response execute(const Request& req, int peer_fd = -1);

  /// Write the whole-process rollup manifest (per-verb counts, the full
  /// p50/p90/p99/p999 wait/run/total quantiles, sliding-window rates, cache
  /// hit ratio, rejected/timed-out/cancelled counts) as JSON — the same
  /// TelemetrySnapshot fields the live `metrics` verb serves. Used by
  /// `canu serve --metrics-out` on shutdown and SIGHUP. Throws canu::Error
  /// when the file cannot be written.
  void write_rollup(const std::string& path) const;

  /// The live telemetry registry (per-verb latency histograms, window
  /// rates, recent-request ring); always on.
  const ServiceTelemetry& telemetry() const noexcept { return telemetry_; }
  /// Point-in-time gauges (queue depths, in-flight, cache entries/bytes,
  /// journal size) paired with telemetry().snapshot().
  GaugeSample sample_gauges() const;

 private:
  /// Wait/run split of one answered request, threaded from the scheduler
  /// lambda back into respond(): wait = admission → worker pickup, run =
  /// worker execution. Zero for inline answers, cache hits and joiners.
  struct RequestTiming {
    std::uint64_t id = 0;
    double wait_s = 0;
    double run_s = 0;
  };

  void accept_loop(int listen_fd);
  void handle_connection(FdHandle conn, std::uint64_t id);
  void reap_finished_locked(std::vector<std::thread>* out);
  Response respond(const Request& req, const CachedResult& result,
                   bool cache_hit, bool coalesced,
                   const std::string& cache_key, double wall_s,
                   const RequestTiming& timing);
  Response status_response(const Request& req, std::uint64_t request_id);
  Response metrics_response(const Request& req, std::uint64_t request_id,
                            double wall_s);
  /// The internal `put` verb behind `canu drain`: decode the hex-encoded,
  /// checksummed journal record in req.body and inject it into the cache.
  Response put_response(const Request& req, std::uint64_t request_id,
                        double wall_s);
  /// Forward a misrouted request to `owner` with routed=true set. Returns
  /// nullopt on transport failure (caller executes locally instead — a
  /// dead owner degrades to extra computation, never to an error).
  std::optional<Response> forward_to_owner(
      const Request& req, const Endpoint& owner, std::uint64_t request_id,
      const std::function<double()>& wall);
  void maybe_slow_log(const RequestRecord& rec);

  /// Progress of this connection's streamed reply, updated by
  /// wait_for_result as it ships chunk frames (or, on a serial daemon, by
  /// the direct StreamQueue sink running on the worker thread itself).
  struct StreamProgress {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    bool peer_gone = false;  ///< a direct-sink frame write hit a dead peer
  };

  /// Wait for `future` under the request's deadline, polling `peer_fd` for
  /// client disconnect. Returns the result, or null with exactly one of
  /// *timed_out / *peer_gone set (cancelling `token` so the worker unwinds
  /// at its next chunk boundary). When `stream` is non-null, drains it each
  /// poll and ships each chunk as its own frame on `peer_fd`, recording
  /// progress in *shipped; a failed chunk write counts as a vanished peer.
  ResultPtr wait_for_result(const std::shared_future<ResultPtr>& future,
                            CancelToken* token, int peer_fd,
                            bool* timed_out, bool* peer_gone,
                            StreamQueue* stream = nullptr,
                            StreamProgress* shipped = nullptr);

  ServerOptions options_;
  std::optional<ThreadPool> pool_storage_;
  ThreadPool* pool_ = nullptr;  ///< null in the serial (--threads=1) config
  ResultCache cache_;
  std::unique_ptr<RequestScheduler> scheduler_;

  FdHandle unix_listener_;
  FdHandle tcp_listener_;
  std::uint16_t tcp_port_ = 0;
  FdHandle stop_read_;   ///< self-pipe: readable once stop() begins
  FdHandle stop_write_;
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> forwarded_{0};   ///< routed to their ring owner
  std::atomic<std::uint64_t> drained_in_{0};  ///< accepted via `put`
  ServiceTelemetry telemetry_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::mutex slow_log_mutex_;
  std::unique_ptr<std::ostream> slow_log_file_;  ///< null → stderr

  std::vector<std::thread> accept_threads_;
  mutable std::mutex conn_mutex_;
  std::map<std::uint64_t, std::thread> connections_;
  std::vector<std::uint64_t> finished_;  ///< connection ids ready to join
  std::uint64_t next_conn_id_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace canu::svc
