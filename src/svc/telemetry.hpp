// Always-on daemon telemetry (DESIGN.md §15): the registry behind the
// `metrics` verb, `canu top`, the `--metrics-out` rollup and the
// slow-request log.
//
// Unlike the session-scoped obs registry (off by default, installed by the
// CLI), a ServiceTelemetry is owned by the Server and records every
// answered request unconditionally: per-verb wait/run/total latency
// histograms (obs::LatencyHistogram — relaxed atomics, no locks),
// sliding-window rate estimators for rps / warm-hit ratio / rejection rate
// (10 s, 1 min, 5 min), monotonic outcome totals, and a mutex-protected
// ring of the last kRecentCapacity completed requests for
// `canu status --recent`. The recording cost is a few dozen relaxed atomic
// adds plus one short critical section per *request* — never per simulated
// access — so the simulation hot path keeps its off-by-default contract.
//
// Everything the wire renders (JSON metrics verb, Prometheus exposition,
// rollup fragment) is derived from one TelemetrySnapshot, so the batch
// artifact and the live verb agree by construction (pinned by svc_test).
//
// CANU_OBS_DISABLED compiles record() to a no-op (the histograms and
// windows already no-op their writes), so the telemetry-overhead bench can
// compare a live daemon against an instrumentation-free build.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace canu::obs {
class JsonWriter;
}  // namespace canu::obs

namespace canu::svc {

/// Verbs tracked with dedicated latency histograms; anything else (a future
/// verb, a malformed name) lands in the trailing "other" slot so recording
/// never allocates or fails.
inline constexpr std::array<const char*, 10> kTelemetryVerbs = {
    "evaluate", "advise", "run",    "threec",  "list",
    "ping",     "version", "status", "metrics", "other",
};
inline constexpr std::size_t kVerbSlots = kTelemetryVerbs.size();

/// Slot index for `verb` (the "other" slot for unknown names).
std::size_t telemetry_verb_slot(const std::string& verb) noexcept;

/// One completed request as traced by the server: identity, outcome, and
/// the wait (admission → worker pickup) / run (worker execution) / total
/// (admission → response) split. `cache` is the cache disposition:
/// "hit" | "miss" | "coalesced" | "uncached" | "none" (rejected/inline).
struct RequestRecord {
  std::uint64_t id = 0;
  std::string verb;
  std::string key;     ///< canonical cache key (empty for uncached verbs)
  std::string status;  ///< "ok" | "error" | "overloaded" | ...
  std::string cache;
  double wait_ms = 0;
  double run_ms = 0;
  double total_ms = 0;
  double uptime_s = 0;  ///< completion time, seconds since daemon start
};

/// Point-in-time gauge values sampled by the Server when a snapshot is
/// taken (the registry does not own the scheduler or cache).
struct GaugeSample {
  std::uint64_t queue_interactive = 0;
  std::uint64_t queue_batch = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t capacity = 0;
  std::uint64_t result_cache_entries = 0;
  std::uint64_t result_cache_bytes = 0;
  std::uint64_t journal_bytes = 0;
  unsigned threads = 0;
};

struct VerbSnapshot {
  std::string verb;
  std::uint64_t count = 0;
  std::uint64_t errors = 0;  ///< responses with status != "ok"
  obs::LatencySnapshot wait_ns;
  obs::LatencySnapshot run_ns;
  obs::LatencySnapshot total_ns;
};

struct WindowSnapshot {
  unsigned seconds = 0;  ///< window length (10 / 60 / 300)
  std::uint64_t requests = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t rejections = 0;

  double rps() const noexcept {
    return seconds == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(seconds);
  }
  /// Warm-hit ratio over answered, non-rejected requests.
  double warm_hit_ratio() const noexcept {
    const std::uint64_t classified = warm_hits + misses;
    return classified == 0 ? 0.0
                           : static_cast<double>(warm_hits) /
                                 static_cast<double>(classified);
  }
  double rejection_rate() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(rejections) /
                               static_cast<double>(requests);
  }
};

/// The windows every snapshot reports, shortest first.
inline constexpr std::array<unsigned, 3> kTelemetryWindows = {10, 60, 300};

struct TelemetrySnapshot {
  std::string version;
  /// Fleet shard name (serve --shard-id). Non-empty adds a `shard` label
  /// to every Prometheus sample and a "shard" field to the JSON snapshot;
  /// empty keeps both outputs byte-identical to an unsharded daemon.
  std::string shard;
  double uptime_s = 0;
  // Monotonic totals; every answered request is exactly one of
  // warm_hit / miss / rejection, so warm_hits + misses ==
  // requests - rejections always holds (asserted by the soak script).
  std::uint64_t requests = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t rejections = 0;
  std::array<WindowSnapshot, kTelemetryWindows.size()> windows{};
  GaugeSample gauges;
  std::vector<VerbSnapshot> verbs;  ///< verbs with count > 0, slot order

  /// JSON body of the `metrics` verb (and of `canu top`'s poll).
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition (`canu submit metrics --format=prometheus`).
  void write_prometheus(std::ostream& os) const;
};

/// Shared JSON fragments, used by both the `metrics` verb and the
/// `--metrics-out` rollup so the two artifacts agree field-for-field.
/// Both emit with the writer's current nesting.
void write_windows_json(obs::JsonWriter& w, const TelemetrySnapshot& snap);
void write_verb_latency_json(obs::JsonWriter& w, const VerbSnapshot& v);

class ServiceTelemetry {
 public:
  static constexpr std::size_t kRecentCapacity = 256;

  ServiceTelemetry() : start_(std::chrono::steady_clock::now()) {}

  /// Record one answered request. Wait-free except for the recent-ring
  /// push (one short mutex).
  void record(const RequestRecord& rec);

  /// Seconds since daemon start (the windows' clock).
  std::uint64_t now_s() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double uptime_s() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Aggregate everything into one consistent-enough snapshot; `gauges` is
  /// sampled by the caller (Server) at the same moment.
  TelemetrySnapshot snapshot(const GaugeSample& gauges) const;

  /// Newest-first copy of up to `n` recent request records.
  std::vector<RequestRecord> recent(std::size_t n) const;

 private:
  struct VerbCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> errors{0};
    obs::LatencyHistogram wait_ns;
    obs::LatencyHistogram run_ns;
    obs::LatencyHistogram total_ns;
  };

  std::chrono::steady_clock::time_point start_;
  std::array<VerbCell, kVerbSlots> verbs_;
  obs::RateWindow requests_;
  obs::RateWindow warm_hits_;
  obs::RateWindow misses_;
  obs::RateWindow rejections_;
  mutable std::mutex recent_mutex_;
  std::deque<RequestRecord> recent_;  ///< newest at the back
};

}  // namespace canu::svc
