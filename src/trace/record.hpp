// The fundamental unit of a memory trace: one reference.
#pragma once

#include <cstdint>

namespace canu {

/// Kind of memory reference. Fetch models instruction-stream references
/// (used when driving the L1 instruction cache of the hierarchy).
enum class AccessType : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kFetch = 2,
};

/// One memory reference. Addresses are byte addresses in a deterministic
/// per-workload virtual address space (see trace/address_space.hpp).
struct MemRef {
  std::uint64_t addr = 0;
  AccessType type = AccessType::kRead;

  friend bool operator==(const MemRef&, const MemRef&) = default;
};

/// Short human-readable name for an access type ("R", "W", "F").
constexpr const char* access_type_name(AccessType t) noexcept {
  switch (t) {
    case AccessType::kRead: return "R";
    case AccessType::kWrite: return "W";
    case AccessType::kFetch: return "F";
  }
  return "?";
}

}  // namespace canu
