// Trace serialization: a raw binary format, a delta-compressed binary
// format, and a readable text format.
//
// Raw binary layout (little-endian):
//   magic   : 8 bytes  "CANUTRC1"
//   nameLen : u32
//   name    : nameLen bytes
//   count   : u64
//   records : count × { addr: u64, type: u8 }
//
// Compressed layout ("CANUTRC2"): the same header, then per record one
// byte combining the access type (bits 0-1) and the byte length of the
// zigzag-encoded address delta (bits 2-5, 0..8), followed by that many
// little-endian delta bytes. Memory traces are dominated by small strides,
// so 1-2 delta bytes replace 9-byte raw records (typically 3-6x smaller).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace canu {

/// Serialize `trace` to `os` in the binary format. Throws canu::Error on
/// stream failure.
void write_trace_binary(const Trace& trace, std::ostream& os);

/// Deserialize a trace from `is`. Throws canu::Error on malformed input.
Trace read_trace_binary(std::istream& is);

/// Write a human-readable text form: one "<type> <hex addr>" line per record.
void write_trace_text(const Trace& trace, std::ostream& os);

/// Parse the text form produced by write_trace_text.
Trace read_trace_text(std::istream& is);

/// Serialize with delta compression ("CANUTRC2").
void write_trace_compressed(const Trace& trace, std::ostream& os);

/// Deserialize either format by magic ("CANUTRC1" raw or "CANUTRC2"
/// compressed). Throws canu::Error on malformed input.
Trace read_trace_any(std::istream& is);

/// File-path convenience wrappers (save_trace writes the raw format;
/// save_trace_compressed the delta format; load_trace accepts both).
void save_trace(const Trace& trace, const std::string& path);
void save_trace_compressed(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

}  // namespace canu
