// Trace serialization: a raw binary format, a delta-compressed binary
// format, and a readable text format.
//
// Raw binary layout (little-endian):
//   magic   : 8 bytes  "CANUTRC1"
//   nameLen : u32
//   name    : nameLen bytes
//   count   : u64
//   records : count × { addr: u64, type: u8 }
//
// Compressed layout ("CANUTRC2"): the same header, then per record one
// byte combining the access type (bits 0-1) and the byte length of the
// zigzag-encoded address delta (bits 2-5, 0..8), followed by that many
// little-endian delta bytes. Memory traces are dominated by small strides,
// so 1-2 delta bytes replace 9-byte raw records (typically 3-6x smaller).
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace canu {

/// Serialize `trace` to `os` in the binary format. Throws canu::Error on
/// stream failure.
void write_trace_binary(const Trace& trace, std::ostream& os);

/// Deserialize a trace from `is`. Throws canu::Error on malformed input.
Trace read_trace_binary(std::istream& is);

/// Write a human-readable text form: one "<type> <hex addr>" line per record.
void write_trace_text(const Trace& trace, std::ostream& os);

/// Parse the text form produced by write_trace_text.
Trace read_trace_text(std::istream& is);

/// Serialize with delta compression ("CANUTRC2").
void write_trace_compressed(const Trace& trace, std::ostream& os);

/// Deserialize either format by magic ("CANUTRC1" raw or "CANUTRC2"
/// compressed). Throws canu::Error on malformed input.
Trace read_trace_any(std::istream& is);

/// File-path convenience wrappers (save_trace writes the raw format;
/// save_trace_compressed the delta format; load_trace accepts both).
void save_trace(const Trace& trace, const std::string& path);
void save_trace_compressed(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

/// Cheap completeness check without decoding records: parse the header,
/// then verify the file holds at least `count` records of the format's
/// minimum encoded size (9 bytes raw, 1 byte compressed). Catches the
/// truncated/partial files a crashed writer or interrupted copy leaves
/// behind. Throws canu::Error when the file is malformed or too short.
void validate_trace_file(const std::string& path);

/// Decode/seek state at a record boundary of a serialized trace. The
/// compressed format is delta-encoded, so resuming mid-file needs the file
/// offset, the running previous address, and how many records precede the
/// point. Captured by TraceFileWriter (every anchor interval) or by
/// TraceFileSource::tell(); consumed by TraceFileSource::seek_to() — the
/// primitive that lets sampled replay (DESIGN.md §14) skip unselected
/// intervals without decoding them.
struct TraceAnchor {
  std::uint64_t file_offset = 0;  ///< absolute offset of the record
  std::uint64_t prev_addr = 0;    ///< delta-decoding state entering it
  std::uint64_t ref_index = 0;    ///< records preceding this point
};

/// Streaming writer: serializes references to a file in the compressed
/// ("CANUTRC2") format as they arrive, without holding the trace in memory.
/// The record count is patched into the header on close(), so the producer
/// does not need to know the stream length up front.
class TraceFileWriter final : public TraceSink {
 public:
  /// Opens `path` for writing and emits the header. Throws canu::Error if
  /// the file cannot be created.
  TraceFileWriter(const std::string& path, std::string name);
  /// Closes the file if still open; errors are swallowed here — call
  /// close() to observe them.
  ~TraceFileWriter() override;

  void write(std::span<const MemRef> refs) override;

  /// Patch the record count and close the file. Throws canu::Error on
  /// stream failure. Idempotent.
  void close();

  std::size_t written() const noexcept { return written_; }

  /// Capture a TraceAnchor every `refs` records (at indices 0, refs,
  /// 2*refs, ...) while writing. Must be called before the first write().
  void set_anchor_interval(std::size_t refs);

  /// Anchors captured so far, in record order (empty unless an anchor
  /// interval was set).
  const std::vector<TraceAnchor>& anchors() const noexcept {
    return anchors_;
  }

 private:
  std::ofstream os_;
  std::string trace_name_;
  std::uint64_t count_pos_ = 0;  ///< header offset of the record count
  std::uint64_t byte_pos_ = 0;   ///< bytes emitted so far (anchor capture)
  std::uint64_t prev_addr_ = 0;  ///< delta-encoding state
  std::size_t written_ = 0;
  std::size_t anchor_interval_ = 0;  ///< 0 = anchor capture off
  std::vector<TraceAnchor> anchors_;
  bool open_ = false;
};

/// Streaming reader over a serialized trace (either binary format),
/// decoding fixed-size chunks on demand; rewind() seeks back to the first
/// record, so one open file can serve multiple passes.
class TraceFileSource final : public TraceSource {
 public:
  explicit TraceFileSource(const std::string& path,
                           std::size_t chunk_refs = kDefaultChunkRefs);

  std::span<const MemRef> next_chunk() override;
  void rewind() override;
  const std::string& name() const noexcept override { return name_; }
  std::size_t size_hint() const noexcept override { return count_; }

  /// The decode position of the NEXT record (valid as a seek_to target).
  TraceAnchor tell();

  /// Jump to a previously captured record boundary. The anchor must come
  /// from this file (same serialization) — tell(), the writer that produced
  /// it, or its feature sidecar; a wrong anchor yields garbage references
  /// or a decode error, never memory unsafety.
  void seek_to(const TraceAnchor& anchor);

 private:
  std::ifstream is_;
  std::string path_;
  std::string name_;
  bool compressed_ = false;
  std::uint64_t count_ = 0;
  std::uint64_t data_pos_ = 0;   ///< file offset of the first record
  std::uint64_t remaining_ = 0;
  std::uint64_t prev_addr_ = 0;  ///< delta-decoding state
  std::size_t chunk_refs_ = 0;
  std::vector<MemRef> buffer_;
};

}  // namespace canu
