// Instrumented containers used by workload kernels.
//
// A TracedArray<T> pairs real backing storage with a synthetic base address
// from an AddressSpace; every load()/store() both performs the operation on
// the backing store and appends the corresponding MemRef to the recorder's
// trace. Kernels are therefore real algorithms whose data-access pattern is
// captured exactly — the substitution for hardware-collected MiBench traces
// (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/address_space.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace canu {

/// Recorder that instrumented containers report references through. Writes
/// into any TraceSink — an in-memory Trace (tests), or a streaming chunker
/// feeding the batch simulation engine directly (workload generation).
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceSink& sink) : sink_(&sink) {}

  void record(std::uint64_t addr, AccessType type) {
    if (enabled_) sink_->push(addr, type);
  }

  /// Temporarily pause recording (e.g. while building input data whose
  /// initialization is not part of the benchmark's measured phase).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

 private:
  TraceSink* sink_;
  bool enabled_ = true;
};

/// RAII guard that disables recording for a scope.
class RecordingPause {
 public:
  explicit RecordingPause(TraceRecorder& rec)
      : rec_(&rec), prev_(rec.enabled()) {
    rec_->set_enabled(false);
  }
  ~RecordingPause() { rec_->set_enabled(prev_); }
  RecordingPause(const RecordingPause&) = delete;
  RecordingPause& operator=(const RecordingPause&) = delete;

 private:
  TraceRecorder* rec_;
  bool prev_;
};

/// Fixed-size instrumented array of trivially-copyable elements.
template <typename T>
class TracedArray {
 public:
  TracedArray(TraceRecorder& rec, AddressSpace& space, std::size_t n,
              const std::string& label = "array")
      : rec_(&rec),
        base_(space.allocate(n * sizeof(T), label)),
        data_(n) {}

  TracedArray(TraceRecorder& rec, AddressSpace& space, std::vector<T> init,
              const std::string& label = "array")
      : rec_(&rec),
        base_(space.allocate(init.size() * sizeof(T), label)),
        data_(std::move(init)) {}

  std::size_t size() const noexcept { return data_.size(); }
  std::uint64_t base() const noexcept { return base_; }

  /// Address of element i in the synthetic address space.
  std::uint64_t addr_of(std::size_t i) const noexcept {
    return base_ + i * sizeof(T);
  }

  /// Recorded read of element i.
  T load(std::size_t i) const {
    CANU_CHECK_MSG(i < data_.size(), "load out of range: " << i);
    rec_->record(addr_of(i), AccessType::kRead);
    return data_[i];
  }

  /// Recorded write of element i.
  void store(std::size_t i, T value) {
    CANU_CHECK_MSG(i < data_.size(), "store out of range: " << i);
    rec_->record(addr_of(i), AccessType::kWrite);
    data_[i] = value;
  }

  /// Unrecorded access to the backing store (setup/verification only).
  T& raw(std::size_t i) { return data_[i]; }
  const T& raw(std::size_t i) const { return data_[i]; }

  std::vector<T>& backing() noexcept { return data_; }
  const std::vector<T>& backing() const noexcept { return data_; }

 private:
  TraceRecorder* rec_;
  std::uint64_t base_;
  std::vector<T> data_;
};

/// A single instrumented variable (e.g. an accumulator kept in memory).
template <typename T>
class TracedScalar {
 public:
  TracedScalar(TraceRecorder& rec, AddressSpace& space, T init = T{},
               const std::string& label = "scalar")
      : rec_(&rec), addr_(space.allocate(sizeof(T), label)), value_(init) {}

  T load() const {
    rec_->record(addr_, AccessType::kRead);
    return value_;
  }
  void store(T v) {
    rec_->record(addr_, AccessType::kWrite);
    value_ = v;
  }
  std::uint64_t addr() const noexcept { return addr_; }

 private:
  TraceRecorder* rec_;
  std::uint64_t addr_;
  T value_;
};

}  // namespace canu
