// Streaming trace plumbing: the chunked producer/consumer interfaces that
// decouple workload generation from simulation.
//
// A workload pushes references into a TraceSink; a simulation engine pulls
// fixed-size chunks from a TraceSource (or is fed chunks directly via
// ChunkingSink). Chunks are sized to stay cache-resident while several
// scheme pipelines replay them (sim/batch_runner.hpp), so one generation
// pass can drive N consumers without ever materializing the full stream.
//
// Trace (trace/trace.hpp) implements TraceSink, so any existing in-memory
// trace doubles as a sink adapter for tests and for the profiling paths
// that genuinely need the whole stream.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/record.hpp"

namespace canu {

/// References per streamed chunk (512 K of MemRefs): large enough to
/// amortize per-chunk dispatch, small enough that a chunk plus the hot
/// state of several cache-model pipelines stays resident in the host cache.
inline constexpr std::size_t kDefaultChunkRefs = std::size_t{1} << 15;

/// Consumer of an ordered reference stream.
class TraceSink {
 public:
  virtual ~TraceSink();

  /// Consume a block of references. Blocks arrive in stream order and may
  /// be any size (workload recorders push single references; chunked
  /// replay pushes kDefaultChunkRefs at a time).
  virtual void write(std::span<const MemRef> refs) = 0;

  /// Convenience single-reference push.
  void push(MemRef ref) { write({&ref, 1}); }
  void push(std::uint64_t addr, AccessType type) {
    push(MemRef{addr, type});
  }
};

/// Producer of an ordered reference stream, pulled in chunks.
class TraceSource {
 public:
  virtual ~TraceSource();

  /// The next chunk, or an empty span at end of stream. The returned span
  /// is valid until the next call on this source.
  virtual std::span<const MemRef> next_chunk() = 0;

  /// Restart the stream from the beginning. Every source in the framework
  /// is deterministic, so a rewound source replays identical references
  /// (this is what lets trained index functions profile the same stream
  /// the simulation replays).
  virtual void rewind() = 0;

  /// Workload name carried with the stream (RunResult::workload).
  virtual const std::string& name() const noexcept = 0;

  /// Total references if known up front (files, in-memory traces), or 0
  /// for unbounded/unknown producers.
  virtual std::size_t size_hint() const noexcept { return 0; }
};

/// Buffers single-reference pushes into fixed-size chunks and hands each
/// full chunk to a callback — the adapter between a workload's push-style
/// generation and a chunk-consuming engine. Call flush() after the
/// producer finishes to deliver the final partial chunk.
class ChunkingSink final : public TraceSink {
 public:
  using ChunkFn = std::function<void(std::span<const MemRef>)>;

  explicit ChunkingSink(ChunkFn on_chunk,
                        std::size_t chunk_refs = kDefaultChunkRefs);

  void write(std::span<const MemRef> refs) override;

  /// Deliver any buffered tail; the sink is reusable afterwards.
  void flush();

 private:
  ChunkFn on_chunk_;
  std::size_t chunk_refs_;
  std::vector<MemRef> buffer_;
};

/// Forwards every block to each of a set of downstream sinks, in order —
/// e.g. the trace-cache file writer and the simulation engine at once.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks);
  TeeSink(TraceSink& a, TraceSink& b) : TeeSink({&a, &b}) {}

  void write(std::span<const MemRef> refs) override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Chunked view over an in-memory reference array (borrowed, not owned).
/// The adapter that lets materialized traces drive the streaming engine.
class SpanSource final : public TraceSource {
 public:
  SpanSource(std::string name, std::span<const MemRef> refs,
             std::size_t chunk_refs = kDefaultChunkRefs);

  std::span<const MemRef> next_chunk() override;
  void rewind() override { pos_ = 0; }
  const std::string& name() const noexcept override { return name_; }
  std::size_t size_hint() const noexcept override { return refs_.size(); }

 private:
  std::string name_;
  std::span<const MemRef> refs_;
  std::size_t chunk_refs_;
  std::size_t pos_ = 0;
};

/// Drain `source` into `sink` chunk by chunk; returns references moved.
std::size_t pump(TraceSource& source, TraceSink& sink);

}  // namespace canu
