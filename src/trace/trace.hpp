// Trace: an in-memory sequence of memory references produced by a workload.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/stream.hpp"

namespace canu {

/// A named, ordered sequence of memory references.
///
/// Traces are value types; workloads produce them, cache models consume them.
/// The reference stream is the complete interface between the two halves of
/// the framework — nothing about a workload other than its trace influences
/// simulation results.
///
/// Trace implements TraceSink, so it serves as the materializing adapter
/// wherever a streaming producer needs to be captured whole (tests, trained
/// index profiling, trace serialization).
class Trace final : public TraceSink {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void append(MemRef ref) { refs_.push_back(ref); }
  void append(std::uint64_t addr, AccessType type) {
    refs_.push_back(MemRef{addr, type});
  }

  /// TraceSink: append a block of references.
  void write(std::span<const MemRef> refs) override {
    refs_.insert(refs_.end(), refs.begin(), refs.end());
  }

  /// Append all references of another trace (used to build phase traces).
  void extend(const Trace& other) {
    refs_.insert(refs_.end(), other.refs_.begin(), other.refs_.end());
  }

  void reserve(std::size_t n) { refs_.reserve(n); }
  void clear() noexcept { refs_.clear(); }

  std::size_t size() const noexcept { return refs_.size(); }
  bool empty() const noexcept { return refs_.empty(); }

  const MemRef& operator[](std::size_t i) const noexcept { return refs_[i]; }

  const std::vector<MemRef>& refs() const noexcept { return refs_; }

  auto begin() const noexcept { return refs_.begin(); }
  auto end() const noexcept { return refs_.end(); }

  friend bool operator==(const Trace& a, const Trace& b) {
    return a.refs_ == b.refs_;  // name is metadata, not identity
  }

 private:
  std::string name_;
  std::vector<MemRef> refs_;
};

}  // namespace canu
