// Synthetic instruction-fetch stream generator.
//
// The paper's simulated configuration includes a 32 KB direct-mapped L1
// instruction cache (§IV), although its measurements are data-cache only.
// To let CANU drive a split L1I/L1D hierarchy (cache/split_hierarchy.hpp),
// this module synthesizes instruction-fetch traces from a compact static
// program model:
//
//   * a code image of `functions` functions laid out sequentially, each a
//     chain of basic blocks (uniform 4-byte instructions);
//   * inner loops: a block ends with a backward branch with a geometric
//     trip count;
//   * calls: blocks may call another function (locality-biased towards a
//     small hot call set) and return;
//   * fetches proceed linearly inside a block — the defining property of
//     instruction streams that makes I-caches far more uniform than
//     D-caches.
//
// Everything is deterministic in FetchParams.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace canu {

struct FetchParams {
  std::uint64_t seed = 1;
  std::size_t length = 500'000;       ///< fetches to generate
  std::uint32_t functions = 96;       ///< functions in the code image
  std::uint32_t hot_functions = 8;    ///< the locality-biased call set
  std::uint32_t blocks_per_function = 12;
  std::uint32_t max_block_insns = 12;  ///< 4..max instructions per block
  double loop_probability = 0.35;     ///< block ends in a backward branch
  double call_probability = 0.15;     ///< block performs a call
  std::uint64_t code_base = 0x0040'0000;  ///< text-segment base address
};

/// Generate an instruction-fetch trace (AccessType::kFetch records).
Trace generate_fetch_trace(const FetchParams& params = FetchParams());

}  // namespace canu
