// Per-interval feature vectors for sampled-interval replay (DESIGN.md §14).
//
// The trace is divided into fixed-size intervals (finer than the replay
// chunk size: paper workloads at scale 1.0 are only 0.4M–3.5M references,
// so sampling needs more grains than the 32 K-ref replay chunks provide).
// Each interval is summarized by a small feature vector — stride histogram,
// unique-line footprint, reuse-distance sketch, and set-pressure skew —
// computed in one streaming pass during trace generation (or one decode
// pass over a cached trace file). The sampler (src/sample) clusters these
// vectors and replays only one representative interval per cluster.
//
// Feature sets persist as a checksummed, versioned sidecar next to the
// trace-cache entry (`<key>.feat` beside `<key>.ctrc`), bound to the trace
// file's size and record count so a regenerated or truncated trace file
// invalidates its sidecar — the same validate/regenerate contract the trace
// cache applies to chunk files. Each persisted interval carries the
// TraceAnchor of its first record, so sampled replay seeks straight to the
// selected intervals without decoding the rest of the file.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/stream.hpp"
#include "trace/trace_io.hpp"

namespace canu {

class TraceCache;

/// References per sampling interval. Deliberately fine-grained: paper
/// workloads at scale 1.0 are only 0.4M–3.5M references, and phased traces
/// (FFT's 26 butterfly stages) need intervals several times shorter than a
/// phase so clusters align with phases instead of straddling them.
inline constexpr std::size_t kSampleIntervalRefs = std::size_t{1} << 11;

/// Dimensions of the per-interval feature vector:
///   [0]      zero-stride fraction
///   [1..24]  log2-|stride| histogram, one bucket per power of two
///            (fractions of refs; strides >= 2^23 share the last bucket).
///            Full log2 resolution matters: strided phases (e.g. FFT
///            butterfly stages) differ by exactly one power of two per
///            stage, and coarser buckets make distinct stages — with very
///            different conflict behavior — indistinguishable to the
///            sampler's clustering.
///   [25]     write fraction
///   [26]     fetch fraction
///   [27]     unique-line fraction (distinct lines / refs)
///   [28]     hot-line concentration (most-touched line's refs / refs)
///   [29..34] reuse-distance sketch: fraction of re-references whose
///            distance (refs since last touch of the line) falls in
///            [0,16), [16,64), [64,256), [256,1024), [1024,4096), [4096,∞)
///   [35]     set-pressure spread: coefficient of variation of a 64-bucket
///            fold of per-line touches (proxy for per-set skew)
///   [36]     set-pressure peak: hottest fold bucket's refs / refs
///   [37..43] probe-bank miss fractions: misses of seven inline-simulated
///            32 KB probe caches at the paper's L1 geometry (state
///            persisting across intervals). Four are direct-mapped, one per
///            untrained paper index function — modulo, XOR,
///            odd-multiplier(21), prime-modulo; the other three mirror the
///            associativity extensions: a modulo probe backed by an
///            8-entry victim buffer (victim cache / adaptive surrogate),
///            an 8-way LRU bank replicating the default B-cache exactly,
///            and a modulo-indexed rehash pair replicating the
///            column-associative cache exactly.
///            These are direct per-interval conflict ground truth: sampled
///            replay uses each scheme's matching probe both to cancel
///            cold-start distortion and as the auxiliary variable of a
///            difference estimator that removes clustering drift bias.
inline constexpr std::size_t kFeatureDim = 44;

/// Probes simulated by the ProbeBank, in feature-dimension order.
enum class ProbeKind : std::size_t {
  kModulo = 0,
  kXor = 1,
  kOddMultiplier = 2,
  kPrimeModulo = 3,
  kVictim = 4,
  kBCache = 5,
  kColumnAssoc = 6,
};
inline constexpr std::size_t kProbeCount = 7;

/// First probe miss-fraction dimension; probe p lives at
/// kProbeMissDim + static_cast<std::size_t>(p).
inline constexpr std::size_t kProbeMissDim = 37;

/// Probe-cache sets: the paper L1's 32 KB / 32 B direct-mapped layout.
inline constexpr std::size_t kProbeSets = 1024;

/// Victim-probe buffer entries (mirrors VictimCache's default).
inline constexpr std::size_t kProbeVictimEntries = 8;

/// B-cache probe ways (the default BAS); sets = kProbeSets / ways.
inline constexpr std::size_t kProbeBCacheWays = 8;

/// Current sidecar format version ("CANUFEA" family; bumped whenever the
/// feature layout changes so stale sidecars regenerate).
inline constexpr std::uint32_t kFeatureSidecarVersion = 4;

/// Bank of seven tiny probe caches at the paper's L1 geometry, fed one line
/// address per reference. Four are direct-mapped, one per untrained index
/// function (the index math mirrors src/indexing exactly, at line
/// granularity); the fifth is modulo-indexed with a small fully-associative
/// LRU victim buffer and swap-on-hit, mirroring cache/victim_cache.cpp; the
/// sixth replicates assoc/bcache.cpp's hit/miss behavior exactly (an 8-way
/// LRU bank — the PI machinery affects only lookup latency); the seventh
/// replicates assoc/column_associative.cpp with modulo indexing (rehash to
/// the MSB-complemented set, swap-on-secondary-hit, displaced-block
/// relocation). Shared between feature extraction (warm, state persisting
/// across intervals) and sampled replay (re-run cold per segment to price
/// the flush's cold-start distortion).
class ProbeBank {
 public:
  ProbeBank();

  /// Feed one line address (addr >> offset_bits) to every probe.
  void access(std::uint64_t line) noexcept;

  /// Misses per probe accumulated since the last take(); resets the
  /// counters but keeps the cache state (a running, warm bank).
  std::array<std::uint64_t, kProbeCount> take() noexcept;

  /// Invalidate all probe state and counters (cold bank).
  void reset() noexcept;

 private:
  // Per-slot resident line (~0 = empty); full line compare, no tag split.
  std::array<std::vector<std::uint64_t>, 4> direct_;
  std::vector<std::uint64_t> victim_primary_;
  struct VictimEntry {
    std::uint64_t line = ~std::uint64_t{0};
    std::uint64_t stamp = 0;
  };
  std::array<VictimEntry, kProbeVictimEntries> victims_{};
  // B-cache probe: kProbeSets lines as (kProbeSets / ways) LRU sets.
  struct BCacheEntry {
    std::uint64_t line = ~std::uint64_t{0};
    std::uint64_t stamp = 0;
  };
  std::vector<BCacheEntry> bcache_;
  // Column-associative probe: per-set resident line + rehash flag.
  struct ColumnEntry {
    std::uint64_t line = ~std::uint64_t{0};
    bool rehash = false;
  };
  std::vector<ColumnEntry> column_;
  std::uint64_t clock_ = 0;
  std::array<std::uint64_t, kProbeCount> misses_{};
};

struct IntervalFeatures {
  /// Decode position of the interval's first record in the trace file
  /// (file_offset 0 on intervals > 0 means "no anchor": in-memory set).
  TraceAnchor anchor;
  std::uint64_t refs = 0;  ///< references in this interval (last may be short)
  std::array<double, kFeatureDim> values{};
};

struct FeatureSet {
  std::uint64_t interval_refs = kSampleIntervalRefs;
  std::uint64_t total_refs = 0;
  /// Size in bytes of the trace file this set was computed from; 0 when the
  /// set was computed from an in-memory stream (no seek anchors).
  std::uint64_t trace_file_size = 0;
  unsigned offset_bits = 5;  ///< line granularity used (2^5 = 32 B)
  std::vector<IntervalFeatures> intervals;

  bool has_anchors() const noexcept { return trace_file_size != 0; }
};

/// Streaming feature extraction: a TraceSink accumulating one feature
/// vector per interval. Tee the generator into this alongside the trace-
/// cache writer and the features come for free with generation. finish()
/// flushes the trailing partial interval and returns the set (anchors
/// unset — the caller binds them from the TraceFileWriter or a source).
class FeatureExtractor final : public TraceSink {
 public:
  explicit FeatureExtractor(std::size_t interval_refs = kSampleIntervalRefs,
                            unsigned offset_bits = 5);
  ~FeatureExtractor() override;

  void write(std::span<const MemRef> refs) override;

  /// Flush the partial tail interval and take the accumulated set. The
  /// extractor is spent afterwards.
  FeatureSet finish();

 private:
  struct LineState;
  void note_ref(const MemRef& ref);
  void finish_interval();

  std::size_t interval_refs_;
  unsigned offset_bits_;
  FeatureSet set_;
  // Running state of the current interval.
  std::uint64_t refs_in_interval_ = 0;
  std::uint64_t zero_strides_ = 0;
  std::array<std::uint64_t, 24> stride_hist_{};
  std::uint64_t writes_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t max_line_count_ = 0;
  std::array<std::uint64_t, 6> reuse_hist_{};
  std::array<std::uint64_t, 64> fold_counts_{};
  /// Probe bank (state persists across intervals: a running warm cache).
  ProbeBank probes_;
  std::uint64_t prev_addr_ = 0;
  bool have_prev_ = false;
  std::uint64_t ref_counter_ = 0;  ///< global ref index (reuse distances)
  std::unique_ptr<LineState> lines_;
};

/// One-shot extraction over an in-memory reference stream (no anchors).
FeatureSet compute_features(std::span<const MemRef> refs,
                            std::size_t interval_refs = kSampleIntervalRefs,
                            unsigned offset_bits = 5);

/// Extraction over an open trace file, capturing a seek anchor per interval
/// and binding the set to the file (size + record count). Rewinds first.
FeatureSet compute_features_from_file(TraceFileSource& source,
                                      std::uint64_t file_size,
                                      std::size_t interval_refs = kSampleIntervalRefs,
                                      unsigned offset_bits = 5);

/// Sidecar path for a trace-cache key: `<dir>/<key>.feat`.
std::string feature_sidecar_path(const TraceCache& cache,
                                 const std::string& key);

/// Atomically persist a feature set (temp file + rename, FNV-1a checksum).
void write_feature_sidecar(const FeatureSet& set, const std::string& path);

/// Load a sidecar. Returns nullopt on a missing file; a corrupt or
/// version-mismatched file is removed (regenerate-on-stale contract) and
/// also reported as nullopt.
std::optional<FeatureSet> read_feature_sidecar(const std::string& path);

/// Load-or-regenerate flow for a cached trace: returns the sidecar when it
/// is present and bound to the current `.ctrc` file (matching size and
/// record count); otherwise scans the trace file once, writes a fresh
/// sidecar, and returns it. The trace entry must exist.
FeatureSet features_for_cached_trace(const TraceCache& cache,
                                     const std::string& key,
                                     std::size_t interval_refs = kSampleIntervalRefs,
                                     unsigned offset_bits = 5);

}  // namespace canu
