// On-disk trace cache: workload traces are pure functions of
// (workload, params), so every bench binary regenerating them from scratch
// is wasted work. The cache stores each generated stream once, in the
// compressed trace format, under a key derived from those inputs; later
// runs (or other binaries) stream the file back instead of re-running the
// workload kernel.
//
// Layout: one file per key, `<dir>/<key>.ctrc`. Stores are atomic (written
// to a temp file, then renamed), so concurrent processes racing on the
// same key simply both win. The key encodes only (workload, seed, scale,
// address base) — editing a workload kernel invalidates nothing, so wipe
// the directory (`rm -rf`) after changing generation code.
//
// Environment knobs (honoured by default_trace_cache_dir()):
//   CANU_TRACE_CACHE_DIR=<dir>  cache directory (default .canu-trace-cache)
//   CANU_TRACE_CACHE=0|off      disable caching entirely
//   CANU_TRACE_CACHE_LOG=1      log hit/store events to stderr
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "trace/stream.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace canu {

/// Cache directory selected by the environment: CANU_TRACE_CACHE_DIR if
/// set, ".canu-trace-cache" otherwise; empty (disabled) when
/// CANU_TRACE_CACHE is "0" or "off". Benches and the CLI pass this to
/// EvalOptions; the library itself never touches the disk unless asked.
std::string default_trace_cache_dir();

class TraceCache;

/// Streaming store into the cache: a TraceSink writing to a temp file that
/// only becomes visible under its key when commit() is called. An
/// uncommitted writer removes the temp file on destruction, so a failed
/// generation never poisons the cache.
class TraceCacheWriter final : public TraceSink {
 public:
  TraceCacheWriter(const TraceCache& cache, const std::string& key,
                   std::string trace_name);
  ~TraceCacheWriter() override;

  void write(std::span<const MemRef> refs) override { writer_->write(refs); }

  /// Forwarded to the underlying TraceFileWriter: sampled replay captures
  /// seek anchors while the trace is generated (trace/chunk_features.hpp).
  void set_anchor_interval(std::size_t refs) {
    writer_->set_anchor_interval(refs);
  }
  const std::vector<TraceAnchor>& anchors() const noexcept {
    return writer_->anchors();
  }

  /// Path the entry is published under on commit().
  const std::string& final_path() const noexcept { return final_path_; }

  /// Finalize the temp file and atomically publish it under the key.
  void commit();

 private:
  std::string final_path_;
  std::string temp_path_;
  std::unique_ptr<TraceFileWriter> writer_;
  const TraceCache* cache_;
  bool committed_ = false;
};

class TraceCache {
 public:
  /// The directory is created on first store, not on construction.
  explicit TraceCache(std::string dir);

  const std::string& dir() const noexcept { return dir_; }

  /// File path a given key maps to.
  std::string path_for(const std::string& key) const;

  bool contains(const std::string& key) const;

  /// Open a streaming source for the key, or nullptr on miss.
  std::unique_ptr<TraceFileSource> open(
      const std::string& key,
      std::size_t chunk_refs = kDefaultChunkRefs) const;

  /// Load the whole cached trace; returns false (and leaves `out` alone)
  /// on miss.
  bool load(const std::string& key, Trace& out) const;

  /// Store a materialized trace under the key (atomic).
  void store(const Trace& trace, const std::string& key) const;

  /// Begin a streaming store (atomic on commit).
  std::unique_ptr<TraceCacheWriter> begin_store(const std::string& key,
                                                std::string trace_name) const;

  /// Hit/store counters for this cache object (diagnostics and tests).
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t stores() const noexcept { return stores_; }

 private:
  friend class TraceCacheWriter;

  void ensure_dir() const;
  void note_hit(const std::string& path) const;
  void note_store(const std::string& path) const;

  std::string dir_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> stores_{0};
};

}  // namespace canu
