#include "trace/trace_stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

std::vector<std::uint64_t> unique_addresses(const Trace& trace) {
  std::vector<std::uint64_t> addrs;
  addrs.reserve(trace.size());
  for (const MemRef& r : trace) addrs.push_back(r.addr);
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
  return addrs;
}

TraceStats compute_trace_stats(const Trace& trace, std::uint64_t line_size,
                               std::size_t max_stride_peaks) {
  CANU_CHECK_MSG(is_pow2(line_size), "line size must be a power of two");
  TraceStats s;
  s.total = trace.size();
  if (trace.empty()) return s;

  s.min_addr = ~std::uint64_t{0};
  std::unordered_map<std::int64_t, std::size_t> stride_counts;
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (const MemRef& r : trace) {
    switch (r.type) {
      case AccessType::kRead: ++s.reads; break;
      case AccessType::kWrite: ++s.writes; break;
      case AccessType::kFetch: ++s.fetches; break;
    }
    s.min_addr = std::min(s.min_addr, r.addr);
    s.max_addr = std::max(s.max_addr, r.addr);
    if (have_prev) {
      ++stride_counts[static_cast<std::int64_t>(r.addr) -
                      static_cast<std::int64_t>(prev)];
    }
    prev = r.addr;
    have_prev = true;
  }

  auto addrs = unique_addresses(trace);
  s.unique_addresses = addrs.size();
  const unsigned line_bits = log2_exact(line_size);
  std::size_t lines = 0;
  std::uint64_t prev_line = 0;
  bool first = true;
  for (std::uint64_t a : addrs) {
    const std::uint64_t line = a >> line_bits;
    if (first || line != prev_line) {
      ++lines;
      prev_line = line;
      first = false;
    }
  }
  s.unique_lines = lines;
  s.footprint_bytes = lines * line_size;

  std::vector<TraceStats::StridePeak> peaks;
  peaks.reserve(stride_counts.size());
  for (const auto& [stride, count] : stride_counts) {
    peaks.push_back({stride, count});
  }
  std::sort(peaks.begin(), peaks.end(), [](const auto& a, const auto& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.stride < b.stride;  // deterministic tie-break
  });
  if (peaks.size() > max_stride_peaks) peaks.resize(max_stride_peaks);
  s.top_strides = std::move(peaks);
  return s;
}

}  // namespace canu
