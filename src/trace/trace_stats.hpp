// Descriptive statistics of a memory trace: footprint, read/write mix,
// unique lines, and dominant strides. Used by workload tests (to validate
// that kernels behave like their namesakes) and by the uniformity reports.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/trace.hpp"

namespace canu {

struct TraceStats {
  std::size_t total = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t fetches = 0;
  std::size_t unique_addresses = 0;
  std::size_t unique_lines = 0;      ///< distinct cache lines touched
  std::uint64_t min_addr = 0;
  std::uint64_t max_addr = 0;
  std::uint64_t footprint_bytes = 0; ///< unique_lines × line size

  /// Most frequent consecutive-reference strides, descending by count.
  struct StridePeak {
    std::int64_t stride = 0;
    std::size_t count = 0;
  };
  std::vector<StridePeak> top_strides;
};

/// Compute statistics for `trace` with the given cache-line size.
/// `max_stride_peaks` bounds the reported stride histogram.
TraceStats compute_trace_stats(const Trace& trace,
                               std::uint64_t line_size = 32,
                               std::size_t max_stride_peaks = 8);

/// All distinct addresses in the trace, sorted ascending. This is the input
/// to Givargis' quality/correlation analysis (paper §II.A), which is defined
/// over the set of *unique* addresses accessed by the program.
std::vector<std::uint64_t> unique_addresses(const Trace& trace);

}  // namespace canu
