#include "trace/chunk_features.hpp"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>

#include "obs/obs.hpp"
#include "trace/trace_cache.hpp"
#include "util/error.hpp"

namespace canu {

namespace fs = std::filesystem;

namespace {

constexpr std::array<char, 8> kSidecarMagic = {'C', 'A', 'N', 'U',
                                               'F', 'E', 'A', '1'};

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void append_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  double f64() { return std::bit_cast<double>(take(8)); }
  std::size_t pos() const noexcept { return pos_; }

 private:
  std::uint64_t take(std::size_t n) {
    CANU_CHECK_MSG(pos_ + n <= size_, "truncated feature sidecar");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Stride-histogram bucket for a non-zero address delta: exact log2
/// magnitude, one bucket per power of two, clamped to 24 buckets (strides
/// >= 2^23 bytes share the last one).
std::size_t stride_bucket(std::int64_t delta) {
  const std::uint64_t mag =
      delta < 0 ? static_cast<std::uint64_t>(-delta)
                : static_cast<std::uint64_t>(delta);
  const unsigned width = 64u - static_cast<unsigned>(std::countl_zero(mag));
  return std::min<std::size_t>(23, width - 1) + 1;
}

/// Reuse-distance bucket boundaries: [0,16) [16,64) [64,256) [256,1024)
/// [1024,4096) [4096,inf).
std::size_t reuse_bucket(std::uint64_t distance) {
  if (distance < 16) return 0;
  if (distance < 64) return 1;
  if (distance < 256) return 2;
  if (distance < 1024) return 3;
  if (distance < 4096) return 4;
  return 5;
}

std::string unique_temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

/// Per-line bookkeeping of the current interval: touch count (hot-line
/// concentration) and last-touch global index (reuse distances). Reset at
/// interval boundaries, so the map stays interval-sized.
struct FeatureExtractor::LineState {
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t last_index = 0;
  };
  std::unordered_map<std::uint64_t, Entry> map;
};

ProbeBank::ProbeBank() { reset(); }

void ProbeBank::reset() noexcept {
  for (std::vector<std::uint64_t>& slots : direct_) {
    slots.assign(kProbeSets, ~std::uint64_t{0});
  }
  victim_primary_.assign(kProbeSets, ~std::uint64_t{0});
  victims_.fill(VictimEntry{});
  bcache_.assign(kProbeSets, BCacheEntry{});
  column_.assign(kProbeSets, ColumnEntry{});
  clock_ = 0;
  misses_ = {};
}

std::array<std::uint64_t, kProbeCount> ProbeBank::take() noexcept {
  const std::array<std::uint64_t, kProbeCount> out = misses_;
  misses_ = {};
  return out;
}

void ProbeBank::access(std::uint64_t line) noexcept {
  // Set indices replicate src/indexing at line granularity (index math
  // there consumes addr >> offset_bits and up).
  const std::uint64_t idx = line & (kProbeSets - 1);
  const std::uint64_t upper = line >> 10;  // 1024 sets = 10 index bits
  const std::uint64_t sets[4] = {
      idx,                                    // modulo
      idx ^ (upper & (kProbeSets - 1)),       // xor (index ^ low tag bits)
      (21 * upper + idx) & (kProbeSets - 1),  // odd_multiplier(21)
      line % 1021,                            // prime_modulo (<= 1024)
  };
  for (std::size_t p = 0; p < 4; ++p) {
    std::uint64_t& slot = direct_[p][sets[p]];
    if (slot != line) {
      slot = line;
      ++misses_[p];
    }
  }

  ++clock_;

  // Victim probe: direct-mapped modulo primary, fully-associative LRU
  // buffer probed on primary miss, swap-on-hit (cache/victim_cache.cpp).
  [&] {
    std::uint64_t& primary = victim_primary_[idx];
    if (primary == line) return;
    for (VictimEntry& v : victims_) {
      if (v.line == line) {
        v.line = primary;  // swap; primary may have been empty (cold set)
        v.stamp = clock_;
        primary = line;
        return;
      }
    }
    ++misses_[4];
    if (primary != ~std::uint64_t{0}) {
      VictimEntry* lru = &victims_[0];
      for (VictimEntry& v : victims_) {
        if (v.line == ~std::uint64_t{0}) {
          lru = &v;
          break;
        }
        if (v.stamp < lru->stamp) lru = &v;
      }
      *lru = VictimEntry{primary, clock_};
    }
    primary = line;
  }();

  // B-cache probe: the default B-cache (assoc/bcache.cpp, MF=2, BAS=8)
  // hits and misses exactly like an 8-way LRU bank indexed by the low
  // cluster bits — the PI machinery only shapes lookup latency.
  [&] {
    constexpr std::uint64_t kClusters = kProbeSets / kProbeBCacheWays;
    BCacheEntry* base = bcache_.data() + (line & (kClusters - 1)) *
                                             kProbeBCacheWays;
    for (std::size_t w = 0; w < kProbeBCacheWays; ++w) {
      if (base[w].line == line) {
        base[w].stamp = clock_;
        return;
      }
    }
    ++misses_[5];
    BCacheEntry* slot = base;
    for (std::size_t w = 0; w < kProbeBCacheWays; ++w) {
      if (base[w].line == ~std::uint64_t{0}) {
        slot = base + w;
        break;
      }
      if (base[w].stamp < slot->stamp) slot = base + w;
    }
    *slot = BCacheEntry{line, clock_};
  }();

  // Column-associative probe (assoc/column_associative.cpp with modulo
  // indexing): rehash to the MSB-complemented set, swap on secondary hit,
  // displaced primary block relocates to the alternate slot on a miss.
  [&] {
    ColumnEntry& primary = column_[idx];
    if (primary.line == line) return;
    if (primary.line != ~std::uint64_t{0} && primary.rehash) {
      // A rehashed resident means the sought block cannot be in its
      // alternate slot either: replace directly, no second probe.
      ++misses_[6];
      primary = ColumnEntry{line, false};
      return;
    }
    ColumnEntry& alternate = column_[idx ^ (kProbeSets >> 1)];
    if (alternate.line == line) {
      std::swap(primary, alternate);
      primary.rehash = false;
      alternate.rehash = true;
      return;
    }
    ++misses_[6];
    if (primary.line != ~std::uint64_t{0}) {
      alternate = primary;
      alternate.rehash = true;
    }
    primary = ColumnEntry{line, false};
  }();
}

FeatureExtractor::FeatureExtractor(std::size_t interval_refs,
                                   unsigned offset_bits)
    : interval_refs_(interval_refs),
      offset_bits_(offset_bits),
      lines_(std::make_unique<LineState>()) {
  CANU_CHECK_MSG(interval_refs_ > 0, "interval size must be positive");
  set_.interval_refs = interval_refs_;
  set_.offset_bits = offset_bits_;
  lines_->map.reserve(interval_refs_ / 4);
}

FeatureExtractor::~FeatureExtractor() = default;

void FeatureExtractor::note_ref(const MemRef& ref) {
  if (have_prev_) {
    const std::int64_t delta = static_cast<std::int64_t>(ref.addr) -
                               static_cast<std::int64_t>(prev_addr_);
    if (delta == 0) {
      ++zero_strides_;
    } else {
      ++stride_hist_[stride_bucket(delta) - 1];
    }
  }
  prev_addr_ = ref.addr;
  have_prev_ = true;
  if (ref.type == AccessType::kWrite) ++writes_;
  if (ref.type == AccessType::kFetch) ++fetches_;

  const std::uint64_t line = ref.addr >> offset_bits_;
  auto& entry = lines_->map[line];
  if (entry.count > 0) {
    ++reuse_hist_[reuse_bucket(ref_counter_ - entry.last_index)];
  }
  ++entry.count;
  entry.last_index = ref_counter_;
  if (entry.count > max_line_count_) max_line_count_ = entry.count;
  ++fold_counts_[line & 63];
  probes_.access(line);

  ++ref_counter_;
  ++refs_in_interval_;
  if (refs_in_interval_ == interval_refs_) finish_interval();
}

void FeatureExtractor::finish_interval() {
  if (refs_in_interval_ == 0) return;
  IntervalFeatures iv;
  iv.refs = refs_in_interval_;
  iv.anchor.ref_index = ref_counter_ - refs_in_interval_;
  const double n = static_cast<double>(refs_in_interval_);

  auto& v = iv.values;
  v[0] = static_cast<double>(zero_strides_) / n;
  for (std::size_t b = 0; b < stride_hist_.size(); ++b) {
    v[1 + b] = static_cast<double>(stride_hist_[b]) / n;
  }
  v[25] = static_cast<double>(writes_) / n;
  v[26] = static_cast<double>(fetches_) / n;
  v[27] = static_cast<double>(lines_->map.size()) / n;
  v[28] = static_cast<double>(max_line_count_) / n;
  for (std::size_t b = 0; b < reuse_hist_.size(); ++b) {
    v[29 + b] = static_cast<double>(reuse_hist_[b]) / n;
  }
  // Set-pressure spread/peak over the 64-bucket line fold: coefficient of
  // variation and hottest-bucket share — cheap proxies for the per-set
  // skew the paper's uniformity metrics measure.
  double sum = 0, sum_sq = 0;
  std::uint64_t peak = 0;
  for (const std::uint64_t c : fold_counts_) {
    sum += static_cast<double>(c);
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
    if (c > peak) peak = c;
  }
  const double mean = sum / 64.0;
  const double variance = sum_sq / 64.0 - mean * mean;
  v[35] = mean > 0 ? std::sqrt(std::max(0.0, variance)) / mean : 0.0;
  v[36] = static_cast<double>(peak) / n;
  // take() resets the miss counters but not the probe state: the bank is a
  // running warm cache.
  const std::array<std::uint64_t, kProbeCount> probe_misses = probes_.take();
  for (std::size_t p = 0; p < kProbeCount; ++p) {
    v[kProbeMissDim + p] = static_cast<double>(probe_misses[p]) / n;
  }

  set_.intervals.push_back(std::move(iv));

  refs_in_interval_ = 0;
  zero_strides_ = 0;
  stride_hist_ = {};
  writes_ = 0;
  fetches_ = 0;
  max_line_count_ = 0;
  reuse_hist_ = {};
  fold_counts_ = {};
  lines_->map.clear();
}

void FeatureExtractor::write(std::span<const MemRef> refs) {
  for (const MemRef& r : refs) note_ref(r);
}

FeatureSet FeatureExtractor::finish() {
  finish_interval();
  set_.total_refs = ref_counter_;
  return std::move(set_);
}

FeatureSet compute_features(std::span<const MemRef> refs,
                            std::size_t interval_refs, unsigned offset_bits) {
  FeatureExtractor extractor(interval_refs, offset_bits);
  extractor.write(refs);
  return extractor.finish();
}

FeatureSet compute_features_from_file(TraceFileSource& source,
                                      std::uint64_t file_size,
                                      std::size_t interval_refs,
                                      unsigned offset_bits) {
  source.rewind();
  FeatureExtractor extractor(interval_refs, offset_bits);
  std::vector<TraceAnchor> anchors;
  // Drive the source at interval granularity so each next_chunk() delivers
  // exactly one interval and tell() lands on interval boundaries. The
  // source's own chunk size is whatever the caller opened it with, so pull
  // interval-sized spans manually.
  for (;;) {
    const TraceAnchor at = source.tell();
    std::size_t got = 0;
    // The source was opened with some chunk size; request records until the
    // interval is filled or the stream ends.
    while (got < interval_refs) {
      const std::span<const MemRef> chunk = source.next_chunk();
      if (chunk.empty()) break;
      extractor.write(chunk);
      got += chunk.size();
    }
    if (got == 0) break;
    anchors.push_back(at);
    if (got < interval_refs) break;  // trailing partial interval
  }
  FeatureSet set = extractor.finish();
  CANU_CHECK_MSG(anchors.size() == set.intervals.size(),
                 "feature/anchor count mismatch scanning trace file");
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const std::uint64_t ref_index = set.intervals[i].anchor.ref_index;
    set.intervals[i].anchor = anchors[i];
    CANU_CHECK_MSG(set.intervals[i].anchor.ref_index == ref_index,
                   "anchor record index mismatch scanning trace file");
  }
  set.trace_file_size = file_size;
  source.rewind();
  return set;
}

std::string feature_sidecar_path(const TraceCache& cache,
                                 const std::string& key) {
  return (fs::path(cache.dir()) / (key + ".feat")).string();
}

void write_feature_sidecar(const FeatureSet& set, const std::string& path) {
  std::string body;
  body.reserve(64 + set.intervals.size() * (32 + 8 * kFeatureDim));
  append_u32(&body, kFeatureSidecarVersion);
  append_u32(&body, static_cast<std::uint32_t>(kFeatureDim));
  append_u64(&body, set.interval_refs);
  append_u64(&body, set.total_refs);
  append_u64(&body, set.trace_file_size);
  append_u32(&body, set.offset_bits);
  append_u64(&body, set.intervals.size());
  for (const IntervalFeatures& iv : set.intervals) {
    append_u64(&body, iv.anchor.file_offset);
    append_u64(&body, iv.anchor.prev_addr);
    append_u64(&body, iv.anchor.ref_index);
    append_u64(&body, iv.refs);
    for (const double d : iv.values) {
      append_u64(&body, std::bit_cast<std::uint64_t>(d));
    }
  }
  const std::uint64_t checksum =
      fnv1a(0xcbf29ce484222325ULL, body.data(), body.size());

  const std::string temp = path + unique_temp_suffix();
  {
    std::ofstream os(temp, std::ios::binary);
    CANU_CHECK_MSG(os.is_open(), "cannot open '" << temp << "' for writing");
    os.write(kSidecarMagic.data(), kSidecarMagic.size());
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    std::string tail;
    append_u64(&tail, checksum);
    os.write(tail.data(), static_cast<std::streamsize>(tail.size()));
    os.close();
    CANU_CHECK_MSG(!os.fail(), "failed writing feature sidecar '" << path
                                                                  << "'");
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    throw Error("cannot publish feature sidecar '" + path + "'");
  }
}

std::optional<FeatureSet> read_feature_sidecar(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();

  const auto discard = [&path](const char* why) -> std::optional<FeatureSet> {
    std::error_code ec;
    fs::remove(path, ec);
    std::cerr << "[trace-cache] discarding stale feature sidecar " << path
              << ": " << why << "\n";
    return std::nullopt;
  };

  if (bytes.size() < kSidecarMagic.size() + 8) return discard("truncated");
  if (std::memcmp(bytes.data(), kSidecarMagic.data(),
                  kSidecarMagic.size()) != 0) {
    return discard("bad magic");
  }
  const char* body = bytes.data() + kSidecarMagic.size();
  const std::size_t body_size = bytes.size() - kSidecarMagic.size() - 8;
  ByteReader tail(bytes.data() + bytes.size() - 8, 8);
  const std::uint64_t stored_checksum = tail.u64();
  if (fnv1a(0xcbf29ce484222325ULL, body, body_size) != stored_checksum) {
    return discard("checksum mismatch");
  }

  try {
    ByteReader r(body, body_size);
    FeatureSet set;
    const std::uint32_t version = r.u32();
    if (version != kFeatureSidecarVersion) return discard("version mismatch");
    const std::uint32_t dim = r.u32();
    if (dim != kFeatureDim) return discard("feature dimension mismatch");
    set.interval_refs = r.u64();
    set.total_refs = r.u64();
    set.trace_file_size = r.u64();
    set.offset_bits = static_cast<unsigned>(r.u32());
    const std::uint64_t count = r.u64();
    set.intervals.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      IntervalFeatures iv;
      iv.anchor.file_offset = r.u64();
      iv.anchor.prev_addr = r.u64();
      iv.anchor.ref_index = r.u64();
      iv.refs = r.u64();
      for (double& d : iv.values) d = r.f64();
      set.intervals.push_back(std::move(iv));
    }
    if (r.pos() != body_size) return discard("trailing bytes");
    return set;
  } catch (const Error& e) {
    return discard(e.what());
  }
}

FeatureSet features_for_cached_trace(const TraceCache& cache,
                                     const std::string& key,
                                     std::size_t interval_refs,
                                     unsigned offset_bits) {
  const std::string trace_path = cache.path_for(key);
  std::error_code ec;
  const std::uint64_t file_size = fs::file_size(trace_path, ec);
  CANU_CHECK_MSG(!ec, "cannot stat cached trace '" << trace_path << "'");

  const std::string sidecar = feature_sidecar_path(cache, key);
  const bool sidecar_on_disk = fs::exists(sidecar, ec);
  if (auto set = read_feature_sidecar(sidecar)) {
    TraceFileSource probe(trace_path, kDefaultChunkRefs);
    if (set->trace_file_size == file_size &&
        set->total_refs == probe.size_hint() &&
        set->interval_refs == interval_refs &&
        set->offset_bits == offset_bits) {
      obs::count(obs::Counter::kFeatureSidecarHits);
      return std::move(*set);
    }
    // Bound to a different trace file (regenerated entry, changed interval
    // size): fall through and rebuild — the write below replaces it.
  }
  obs::count(sidecar_on_disk ? obs::Counter::kFeatureSidecarRegens
                             : obs::Counter::kFeatureSidecarMisses);

  TraceFileSource source(trace_path, interval_refs);
  FeatureSet set =
      compute_features_from_file(source, file_size, interval_refs,
                                 offset_bits);
  write_feature_sidecar(set, sidecar);
  return set;
}

}  // namespace canu
