// Deterministic virtual address space for instrumented workloads.
//
// Each workload run owns an AddressSpace and allocates its data structures
// from it. Allocation is strictly sequential with configurable alignment and
// inter-allocation guard gaps, so the address of every object — and therefore
// every trace — is a pure function of the workload's parameters. This is what
// makes every figure in EXPERIMENTS.md bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace canu {

/// Sequential bump allocator over a synthetic virtual address range.
class AddressSpace {
 public:
  struct Options {
    std::uint64_t base = 0x1000'0000;  ///< first address handed out
    std::uint64_t alignment = 64;      ///< allocation alignment (bytes)
    std::uint64_t guard_gap = 64;      ///< unused bytes between allocations
  };

  AddressSpace() : AddressSpace(Options{}) {}
  explicit AddressSpace(Options opt);

  /// Allocate `bytes` bytes; returns the base address of the block.
  std::uint64_t allocate(std::uint64_t bytes, const std::string& label = "");

  /// Total bytes spanned so far (including guard gaps).
  std::uint64_t span() const noexcept { return next_ - opt_.base; }

  /// Number of allocations performed.
  std::size_t allocations() const noexcept { return labels_.size(); }

  /// Label of the i-th allocation (for debugging/reporting).
  const std::string& label(std::size_t i) const { return labels_.at(i); }

  const Options& options() const noexcept { return opt_; }

 private:
  Options opt_;
  std::uint64_t next_;
  std::vector<std::string> labels_;
};

}  // namespace canu
