#include "trace/trace_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace canu {

namespace fs = std::filesystem;

namespace {

bool log_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("CANU_TRACE_CACHE_LOG");
    return v != nullptr && std::string(v) != "0";
  }();
  return enabled;
}

std::string unique_temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

/// A cached file that fails validation (truncated copy, crashed writer,
/// bit rot) is removed and reported as a miss so the caller regenerates
/// it — a corrupt cache entry must never poison a simulation.
void discard_corrupt(const std::string& path, const canu::Error& why) {
  std::error_code ec;
  fs::remove(path, ec);
  std::cerr << "[trace-cache] discarding corrupt entry " << path << ": "
            << why.what() << "\n";
}

}  // namespace

std::string default_trace_cache_dir() {
  if (const char* toggle = std::getenv("CANU_TRACE_CACHE")) {
    const std::string v(toggle);
    if (v == "0" || v == "off") return "";
  }
  if (const char* dir = std::getenv("CANU_TRACE_CACHE_DIR")) {
    return dir;
  }
  return ".canu-trace-cache";
}

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir)) {
  CANU_CHECK_MSG(!dir_.empty(), "trace cache requires a directory");
}

std::string TraceCache::path_for(const std::string& key) const {
  return (fs::path(dir_) / (key + ".ctrc")).string();
}

bool TraceCache::contains(const std::string& key) const {
  std::error_code ec;
  return fs::exists(path_for(key), ec);
}

std::unique_ptr<TraceFileSource> TraceCache::open(
    const std::string& key, std::size_t chunk_refs) const {
  const std::string path = path_for(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    obs::count(obs::Counter::kTraceCacheMisses);
    return nullptr;
  }
  try {
    validate_trace_file(path);
    auto source = std::make_unique<TraceFileSource>(path, chunk_refs);
    note_hit(path);
    return source;
  } catch (const Error& e) {
    discard_corrupt(path, e);
    obs::count(obs::Counter::kTraceCacheMisses);
    return nullptr;
  }
}

bool TraceCache::load(const std::string& key, Trace& out) const {
  const std::string path = path_for(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    obs::count(obs::Counter::kTraceCacheMisses);
    return false;
  }
  try {
    out = load_trace(path);  // full decode: catches any malformed record
  } catch (const Error& e) {
    discard_corrupt(path, e);
    obs::count(obs::Counter::kTraceCacheMisses);
    return false;
  }
  note_hit(path);
  return true;
}

void TraceCache::store(const Trace& trace, const std::string& key) const {
  auto writer = begin_store(key, trace.name());
  writer->write(trace.refs());
  writer->commit();
}

std::unique_ptr<TraceCacheWriter> TraceCache::begin_store(
    const std::string& key, std::string trace_name) const {
  ensure_dir();
  return std::make_unique<TraceCacheWriter>(*this, key,
                                            std::move(trace_name));
}

void TraceCache::ensure_dir() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CANU_CHECK_MSG(!ec, "cannot create trace cache dir '" << dir_
                                                        << "': "
                                                        << ec.message());
}

void TraceCache::note_hit(const std::string& path) const {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_on()) {
    obs::count(obs::Counter::kTraceCacheHits);
    std::error_code ec;
    const auto bytes = fs::file_size(path, ec);
    if (!ec) obs::count(obs::Counter::kTraceCacheBytesRead, bytes);
  }
  if (log_enabled()) std::cerr << "[trace-cache] hit " << path << "\n";
}

void TraceCache::note_store(const std::string& path) const {
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_on()) {
    obs::count(obs::Counter::kTraceCacheStores);
    std::error_code ec;
    const auto bytes = fs::file_size(path, ec);
    if (!ec) obs::count(obs::Counter::kTraceCacheBytesWritten, bytes);
  }
  if (log_enabled()) std::cerr << "[trace-cache] store " << path << "\n";
}

TraceCacheWriter::TraceCacheWriter(const TraceCache& cache,
                                   const std::string& key,
                                   std::string trace_name)
    : final_path_(cache.path_for(key)),
      temp_path_(final_path_ + unique_temp_suffix()),
      writer_(std::make_unique<TraceFileWriter>(temp_path_,
                                                std::move(trace_name))),
      cache_(&cache) {}

TraceCacheWriter::~TraceCacheWriter() {
  if (committed_) return;
  writer_.reset();  // close the temp file before removing it
  std::error_code ec;
  fs::remove(temp_path_, ec);
}

void TraceCacheWriter::commit() {
  CANU_CHECK_MSG(!committed_, "trace cache store committed twice");
  writer_->close();
  std::error_code ec;
  fs::rename(temp_path_, final_path_, ec);
  CANU_CHECK_MSG(!ec, "cannot publish cached trace '"
                          << final_path_ << "': " << ec.message());
  committed_ = true;
  cache_->note_store(final_path_);
}

}  // namespace canu
