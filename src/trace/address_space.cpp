#include "trace/address_space.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

AddressSpace::AddressSpace(Options opt) : opt_(opt), next_(opt.base) {
  CANU_CHECK_MSG(opt_.alignment > 0 && is_pow2(opt_.alignment),
                 "alignment must be a power of two, got " << opt_.alignment);
}

std::uint64_t AddressSpace::allocate(std::uint64_t bytes,
                                     const std::string& label) {
  CANU_CHECK_MSG(bytes > 0, "zero-byte allocation for '" << label << "'");
  const std::uint64_t mask = opt_.alignment - 1;
  std::uint64_t base = (next_ + mask) & ~mask;
  next_ = base + bytes + opt_.guard_gap;
  labels_.push_back(label);
  return base;
}

}  // namespace canu
