#include "trace/fetch_gen.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {

namespace {

constexpr std::uint64_t kInsnBytes = 4;

struct Block {
  std::uint64_t addr = 0;       ///< address of the first instruction
  std::uint32_t insns = 4;      ///< instructions in the block
  std::uint32_t loop_trips = 0; ///< mean extra iterations (0 = no loop)
  std::uint32_t call_target = ~0u;  ///< function index or ~0
};

struct Function {
  std::uint32_t first_block = 0;
  std::uint32_t block_count = 0;
};

}  // namespace

Trace generate_fetch_trace(const FetchParams& p) {
  CANU_CHECK_MSG(p.functions >= 1, "need at least one function");
  CANU_CHECK_MSG(p.hot_functions >= 1 && p.hot_functions <= p.functions,
                 "hot_functions must be in [1, functions]");
  CANU_CHECK_MSG(p.max_block_insns >= 4, "blocks need >= 4 instructions");

  Xoshiro256 rng(p.seed * 0x9e3779b97f4a7c15ULL + 0xfe7c);

  // Build the static code image.
  std::vector<Function> functions(p.functions);
  std::vector<Block> blocks;
  blocks.reserve(static_cast<std::size_t>(p.functions) *
                 p.blocks_per_function);
  std::uint64_t pc = p.code_base;
  for (std::uint32_t f = 0; f < p.functions; ++f) {
    functions[f].first_block = static_cast<std::uint32_t>(blocks.size());
    const std::uint32_t count =
        2 + static_cast<std::uint32_t>(rng.below(p.blocks_per_function - 1));
    functions[f].block_count = count;
    for (std::uint32_t b = 0; b < count; ++b) {
      Block blk;
      blk.addr = pc;
      blk.insns = 4 + static_cast<std::uint32_t>(
                          rng.below(p.max_block_insns - 3));
      if (rng.uniform() < p.loop_probability) {
        blk.loop_trips = 1 + static_cast<std::uint32_t>(rng.below(16));
      }
      if (rng.uniform() < p.call_probability) {
        // Locality bias: most calls go to the hot set.
        blk.call_target = rng.below(4) != 0
                              ? static_cast<std::uint32_t>(
                                    rng.below(p.hot_functions))
                              : static_cast<std::uint32_t>(
                                    rng.below(p.functions));
      }
      pc += blk.insns * kInsnBytes;
      blocks.push_back(blk);
    }
    pc += 64;  // inter-function padding/alignment
  }

  Trace trace("ifetch");
  trace.reserve(p.length);

  // Locality-biased function selection: the hot call set takes most of the
  // dynamic dispatches, the rest spread over the whole image.
  const auto pick_function = [&]() -> std::uint32_t {
    return rng.below(4) != 0
               ? static_cast<std::uint32_t>(rng.below(p.hot_functions))
               : static_cast<std::uint32_t>(rng.below(p.functions));
  };

  // Execute: a call stack of (function, block offset); depth-capped. The
  // bottom frame models the program's driver loop: each time it drains, it
  // dispatches the next task to a (locality-biased) random function so the
  // whole image is dynamically reachable even when individual functions
  // have few static call sites.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  stack.emplace_back(0, 0);

  const auto emit_block = [&](const Block& blk) {
    for (std::uint32_t i = 0; i < blk.insns && trace.size() < p.length; ++i) {
      trace.append(blk.addr + i * kInsnBytes, AccessType::kFetch);
    }
  };

  while (trace.size() < p.length) {
    auto& [func, boff] = stack.back();
    const Function& fn = functions[func];
    if (boff >= fn.block_count) {
      // Return (or dispatch the next task when the stack would empty).
      if (stack.size() > 1) {
        stack.pop_back();
      } else {
        stack.back() = {pick_function(), 0};
      }
      continue;
    }
    const Block& blk = blocks[fn.first_block + boff];
    emit_block(blk);
    // Loop: re-fetch the block with a geometric number of extra trips.
    if (blk.loop_trips > 0) {
      std::uint32_t trips = 0;
      while (trips < blk.loop_trips * 4 && rng.uniform() < 0.8 &&
             trace.size() < p.length) {
        emit_block(blk);
        ++trips;
      }
    }
    // Call: push the callee; cap the stack depth like a real program.
    if (blk.call_target != ~0u && stack.size() < 24 &&
        trace.size() < p.length) {
      ++boff;  // resume after the call on return
      stack.emplace_back(blk.call_target, 0);
      continue;
    }
    ++boff;
  }
  return trace;
}

}  // namespace canu
