#include "trace/stream.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace canu {

TraceSink::~TraceSink() = default;
TraceSource::~TraceSource() = default;

ChunkingSink::ChunkingSink(ChunkFn on_chunk, std::size_t chunk_refs)
    : on_chunk_(std::move(on_chunk)), chunk_refs_(chunk_refs) {
  CANU_CHECK_MSG(on_chunk_ != nullptr, "ChunkingSink requires a callback");
  CANU_CHECK_MSG(chunk_refs_ > 0, "chunk size must be positive");
  buffer_.reserve(chunk_refs_);
}

void ChunkingSink::write(std::span<const MemRef> refs) {
  while (!refs.empty()) {
    const std::size_t room = chunk_refs_ - buffer_.size();
    const std::size_t take = std::min(room, refs.size());
    buffer_.insert(buffer_.end(), refs.begin(), refs.begin() + take);
    refs = refs.subspan(take);
    if (buffer_.size() == chunk_refs_) {
      on_chunk_(buffer_);
      buffer_.clear();
    }
  }
}

void ChunkingSink::flush() {
  if (!buffer_.empty()) {
    on_chunk_(buffer_);
    buffer_.clear();
  }
}

TeeSink::TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {
  for (TraceSink* s : sinks_) {
    CANU_CHECK_MSG(s != nullptr, "TeeSink requires non-null sinks");
  }
}

void TeeSink::write(std::span<const MemRef> refs) {
  for (TraceSink* s : sinks_) s->write(refs);
}

SpanSource::SpanSource(std::string name, std::span<const MemRef> refs,
                       std::size_t chunk_refs)
    : name_(std::move(name)), refs_(refs), chunk_refs_(chunk_refs) {
  CANU_CHECK_MSG(chunk_refs_ > 0, "chunk size must be positive");
}

std::span<const MemRef> SpanSource::next_chunk() {
  const std::size_t take = std::min(chunk_refs_, refs_.size() - pos_);
  const std::span<const MemRef> chunk = refs_.subspan(pos_, take);
  pos_ += take;
  return chunk;
}

std::size_t pump(TraceSource& source, TraceSink& sink) {
  std::size_t moved = 0;
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    sink.write(chunk);
    moved += chunk.size();
  }
  return moved;
}

}  // namespace canu
