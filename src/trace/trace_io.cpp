#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace canu {

namespace {

constexpr std::array<char, 8> kMagic = {'C', 'A', 'N', 'U',
                                        'T', 'R', 'C', '1'};
constexpr std::array<char, 8> kMagicV2 = {'C', 'A', 'N', 'U',
                                          'T', 'R', 'C', '2'};

std::uint64_t zigzag_encode(std::int64_t d) {
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

std::int64_t zigzag_decode(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

void write_header(std::ostream& os, const std::array<char, 8>& magic,
                  const Trace& trace) {
  os.write(magic.data(), magic.size());
  const auto name_len = static_cast<std::uint32_t>(trace.name().size());
  unsigned char bytes[4];
  for (std::size_t i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>((name_len >> (8 * i)) & 0xff);
  }
  os.write(reinterpret_cast<const char*>(bytes), 4);
  os.write(trace.name().data(), name_len);
}

template <typename T>
void write_le(std::ostream& os, T value) {
  // Host is little-endian on all supported platforms; keep the explicit
  // byte serialization so the format stays portable regardless.
  unsigned char bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
  }
  os.write(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T read_le(std::istream& is) {
  unsigned char bytes[sizeof(T)];
  is.read(reinterpret_cast<char*>(bytes), sizeof(T));
  CANU_CHECK_MSG(is.good(), "truncated trace stream");
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

void write_trace_binary(const Trace& trace, std::ostream& os) {
  write_header(os, kMagic, trace);
  write_le<std::uint64_t>(os, trace.size());
  for (const MemRef& r : trace) {
    write_le<std::uint64_t>(os, r.addr);
    os.put(static_cast<char>(r.type));
  }
  CANU_CHECK_MSG(os.good(), "failed writing trace '" << trace.name() << "'");
}

namespace {

Trace read_body_raw(std::istream& is, Trace trace) {
  const auto count = read_le<std::uint64_t>(is);
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto addr = read_le<std::uint64_t>(is);
    const int type_byte = is.get();
    CANU_CHECK_MSG(type_byte >= 0, "truncated trace records");
    CANU_CHECK_MSG(type_byte <= 2, "invalid access type " << type_byte);
    trace.append(addr, static_cast<AccessType>(type_byte));
  }
  return trace;
}

Trace read_body_compressed(std::istream& is, Trace trace) {
  const auto count = read_le<std::uint64_t>(is);
  trace.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const int header = is.get();
    CANU_CHECK_MSG(header >= 0, "truncated compressed records");
    const int type_bits = header & 0x3;
    const unsigned len = static_cast<unsigned>(header >> 2) & 0xf;
    CANU_CHECK_MSG(type_bits <= 2, "invalid access type " << type_bits);
    CANU_CHECK_MSG(len <= 8, "invalid delta length " << len);
    std::uint64_t z = 0;
    for (unsigned b = 0; b < len; ++b) {
      const int byte = is.get();
      CANU_CHECK_MSG(byte >= 0, "truncated delta bytes");
      z |= static_cast<std::uint64_t>(byte) << (8 * b);
    }
    prev = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev) +
                                      zigzag_decode(z));
    trace.append(prev, static_cast<AccessType>(type_bits));
  }
  return trace;
}

std::string read_name(std::istream& is) {
  const auto name_len = read_le<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  CANU_CHECK_MSG(is.good(), "truncated trace name");
  return name;
}

}  // namespace

Trace read_trace_binary(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  CANU_CHECK_MSG(is.good() && magic == kMagic, "bad trace magic");
  return read_body_raw(is, Trace(read_name(is)));
}

void write_trace_compressed(const Trace& trace, std::ostream& os) {
  write_header(os, kMagicV2, trace);
  write_le<std::uint64_t>(os, trace.size());
  std::uint64_t prev = 0;
  for (const MemRef& r : trace) {
    const std::int64_t delta = static_cast<std::int64_t>(r.addr) -
                               static_cast<std::int64_t>(prev);
    prev = r.addr;
    std::uint64_t z = zigzag_encode(delta);
    unsigned len = 0;
    std::uint64_t probe = z;
    while (probe != 0) {
      ++len;
      probe >>= 8;
    }
    os.put(static_cast<char>(static_cast<unsigned>(r.type) | (len << 2)));
    for (unsigned b = 0; b < len; ++b) {
      os.put(static_cast<char>((z >> (8 * b)) & 0xff));
    }
  }
  CANU_CHECK_MSG(os.good(), "failed writing trace '" << trace.name() << "'");
}

Trace read_trace_any(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  CANU_CHECK_MSG(is.good(), "truncated trace stream");
  if (magic == kMagic) return read_body_raw(is, Trace(read_name(is)));
  if (magic == kMagicV2) {
    return read_body_compressed(is, Trace(read_name(is)));
  }
  throw Error("bad trace magic");
}

void write_trace_text(const Trace& trace, std::ostream& os) {
  os << "# canu trace: " << trace.name() << "\n";
  std::ostringstream line;
  for (const MemRef& r : trace) {
    line.str("");
    line << access_type_name(r.type) << " 0x" << std::hex << r.addr << "\n";
    os << line.str();
  }
}

Trace read_trace_text(std::istream& is) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto pos = line.find("canu trace: ");
      if (pos != std::string::npos) {
        trace.set_name(line.substr(pos + 12));
      }
      continue;
    }
    std::istringstream ls(line);
    std::string type_str, addr_str;
    ls >> type_str >> addr_str;
    CANU_CHECK_MSG(!type_str.empty() && !addr_str.empty(),
                   "malformed trace line: " << line);
    AccessType type;
    if (type_str == "R") type = AccessType::kRead;
    else if (type_str == "W") type = AccessType::kWrite;
    else if (type_str == "F") type = AccessType::kFetch;
    else CANU_CHECK_MSG(false, "unknown access type '" << type_str << "'");
    trace.append(std::stoull(addr_str, nullptr, 16), type);
  }
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  CANU_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  write_trace_binary(trace, os);
}

void save_trace_compressed(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  CANU_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  write_trace_compressed(trace, os);
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CANU_CHECK_MSG(is.is_open(), "cannot open '" << path << "' for reading");
  return read_trace_any(is);
}

void validate_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CANU_CHECK_MSG(is.is_open(), "cannot open '" << path << "' for reading");
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  CANU_CHECK_MSG(is.good(), "truncated trace header in '" << path << "'");
  std::uint64_t min_record = 0;
  if (magic == kMagic) {
    min_record = 9;  // u64 addr + u8 type
  } else if (magic == kMagicV2) {
    min_record = 1;  // type/len byte, zero delta bytes for a repeat
  } else {
    throw Error("bad trace magic in '" + path + "'");
  }
  read_name(is);
  const auto count = read_le<std::uint64_t>(is);
  const auto data_pos = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(is.tellg());
  CANU_CHECK_MSG(size >= data_pos + count * min_record,
                 "truncated trace '" << path << "': " << count
                                     << " records need >= "
                                     << count * min_record << " bytes, have "
                                     << size - data_pos);
}

// ------------------------------------------------- streaming writer ----

TraceFileWriter::TraceFileWriter(const std::string& path, std::string name)
    : os_(path, std::ios::binary), trace_name_(std::move(name)) {
  CANU_CHECK_MSG(os_.is_open(), "cannot open '" << path << "' for writing");
  os_.write(kMagicV2.data(), kMagicV2.size());
  write_le<std::uint32_t>(os_, static_cast<std::uint32_t>(trace_name_.size()));
  os_.write(trace_name_.data(),
            static_cast<std::streamsize>(trace_name_.size()));
  count_pos_ = 8 + 4 + trace_name_.size();
  write_le<std::uint64_t>(os_, 0);  // record count, patched by close()
  byte_pos_ = count_pos_ + 8;
  CANU_CHECK_MSG(os_.good(), "failed writing trace header to '" << path
                                                                << "'");
  open_ = true;
}

void TraceFileWriter::set_anchor_interval(std::size_t refs) {
  CANU_CHECK_MSG(written_ == 0,
                 "anchor interval must be set before the first write");
  CANU_CHECK_MSG(refs > 0, "anchor interval must be positive");
  anchor_interval_ = refs;
}

TraceFileWriter::~TraceFileWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() explicitly to observe errors.
  }
}

void TraceFileWriter::write(std::span<const MemRef> refs) {
  for (const MemRef& r : refs) {
    if (anchor_interval_ != 0 && written_ % anchor_interval_ == 0) {
      anchors_.push_back(TraceAnchor{byte_pos_, prev_addr_, written_});
    }
    const std::int64_t delta = static_cast<std::int64_t>(r.addr) -
                               static_cast<std::int64_t>(prev_addr_);
    prev_addr_ = r.addr;
    const std::uint64_t z = zigzag_encode(delta);
    unsigned len = 0;
    std::uint64_t probe = z;
    while (probe != 0) {
      ++len;
      probe >>= 8;
    }
    os_.put(static_cast<char>(static_cast<unsigned>(r.type) | (len << 2)));
    for (unsigned b = 0; b < len; ++b) {
      os_.put(static_cast<char>((z >> (8 * b)) & 0xff));
    }
    byte_pos_ += 1 + len;
    ++written_;
  }
  CANU_CHECK_MSG(os_.good(),
                 "failed writing trace '" << trace_name_ << "'");
}

void TraceFileWriter::close() {
  if (!open_) return;
  open_ = false;
  os_.seekp(static_cast<std::streamoff>(count_pos_));
  write_le<std::uint64_t>(os_, written_);
  os_.close();
  CANU_CHECK_MSG(!os_.fail(), "failed finalizing trace '" << trace_name_
                                                          << "'");
}

// ------------------------------------------------- streaming reader ----

TraceFileSource::TraceFileSource(const std::string& path,
                                 std::size_t chunk_refs)
    : is_(path, std::ios::binary), path_(path) {
  CANU_CHECK_MSG(is_.is_open(), "cannot open '" << path << "' for reading");
  CANU_CHECK_MSG(chunk_refs > 0, "chunk size must be positive");
  std::array<char, 8> magic{};
  is_.read(magic.data(), magic.size());
  CANU_CHECK_MSG(is_.good(), "truncated trace stream");
  if (magic == kMagic) {
    compressed_ = false;
  } else if (magic == kMagicV2) {
    compressed_ = true;
  } else {
    throw Error("bad trace magic in '" + path + "'");
  }
  name_ = read_name(is_);
  count_ = read_le<std::uint64_t>(is_);
  data_pos_ = static_cast<std::uint64_t>(is_.tellg());
  remaining_ = count_;
  chunk_refs_ = chunk_refs;
  buffer_.reserve(chunk_refs_);
}

std::span<const MemRef> TraceFileSource::next_chunk() {
  const std::size_t take = std::min<std::uint64_t>(chunk_refs_, remaining_);
  buffer_.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    if (compressed_) {
      const int header = is_.get();
      CANU_CHECK_MSG(header >= 0, "truncated compressed records in '"
                                      << path_ << "'");
      const int type_bits = header & 0x3;
      const unsigned len = static_cast<unsigned>(header >> 2) & 0xf;
      CANU_CHECK_MSG(type_bits <= 2, "invalid access type " << type_bits);
      CANU_CHECK_MSG(len <= 8, "invalid delta length " << len);
      std::uint64_t z = 0;
      for (unsigned b = 0; b < len; ++b) {
        const int byte = is_.get();
        CANU_CHECK_MSG(byte >= 0, "truncated delta bytes in '" << path_
                                                               << "'");
        z |= static_cast<std::uint64_t>(byte) << (8 * b);
      }
      prev_addr_ = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prev_addr_) + zigzag_decode(z));
      buffer_[i] = MemRef{prev_addr_, static_cast<AccessType>(type_bits)};
    } else {
      const auto addr = read_le<std::uint64_t>(is_);
      const int type_byte = is_.get();
      CANU_CHECK_MSG(type_byte >= 0, "truncated trace records in '" << path_
                                                                    << "'");
      CANU_CHECK_MSG(type_byte <= 2, "invalid access type " << type_byte);
      buffer_[i] = MemRef{addr, static_cast<AccessType>(type_byte)};
    }
  }
  remaining_ -= take;
  return {buffer_.data(), take};
}

void TraceFileSource::rewind() {
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(data_pos_));
  CANU_CHECK_MSG(is_.good(), "failed rewinding '" << path_ << "'");
  remaining_ = count_;
  prev_addr_ = 0;
}

TraceAnchor TraceFileSource::tell() {
  TraceAnchor a;
  is_.clear();
  a.file_offset = static_cast<std::uint64_t>(is_.tellg());
  a.prev_addr = prev_addr_;
  a.ref_index = count_ - remaining_;
  return a;
}

void TraceFileSource::seek_to(const TraceAnchor& anchor) {
  CANU_CHECK_MSG(anchor.ref_index <= count_,
                 "anchor beyond end of '" << path_ << "': record "
                                          << anchor.ref_index << " of "
                                          << count_);
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(anchor.file_offset));
  CANU_CHECK_MSG(is_.good(), "failed seeking '" << path_ << "'");
  prev_addr_ = anchor.prev_addr;
  remaining_ = count_ - anchor.ref_index;
}

}  // namespace canu
