// Virtual-to-physical page mapping — the OS-level counterpart to the
// paper's hardware techniques.
//
// The paper's cache is physically indexed in a machine whose OS assigns
// page frames; with 4 KB pages and the paper's 32 KB direct-mapped L1, the
// top 3 of the 10 index bits come from the *frame number*, so frame
// allocation policy directly shapes per-set load:
//
//   * identity  — frame = virtual page: the paper's implicit setup (our
//                 workload traces are synthetic virtual addresses);
//   * random    — frames assigned in random order, as a buddy allocator
//                 under memory pressure effectively does: randomizes the
//                 top index bits, an OS-made XOR-lite;
//   * colored   — classic page coloring: frames are handed out so
//                 consecutive virtual pages cycle through the cache colors
//                 (frame % colors == vpage % colors), keeping each process'
//                 pages spread evenly over the sets.
//
// apply_mapping() rewrites a trace's addresses through the mapper, so any
// CANU experiment can be re-run "as the OS would see it"
// (bench/abl_page_coloring).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace canu {

enum class PagePolicy {
  kIdentity,
  kRandom,
  kColored,
};

const char* page_policy_name(PagePolicy policy);

/// Lazily assigns a physical frame to each virtual page on first touch,
/// according to the selected policy. Deterministic in the seed.
class PageMapper {
 public:
  struct Options {
    PagePolicy policy = PagePolicy::kIdentity;
    std::uint64_t page_size = 4096;  ///< power of two
    /// Number of cache colors = sets * line / page (8 for the paper's L1).
    std::uint64_t colors = 8;
    std::uint64_t seed = 1;
  };

  PageMapper() : PageMapper(Options()) {}
  explicit PageMapper(Options options);

  /// Translate one virtual address.
  std::uint64_t translate(std::uint64_t vaddr);

  /// Number of distinct pages mapped so far.
  std::size_t pages_mapped() const noexcept { return frame_of_.size(); }

  const Options& options() const noexcept { return opt_; }

 private:
  std::uint64_t allocate_frame(std::uint64_t vpage);

  Options opt_;
  unsigned page_bits_ = 12;
  Xoshiro256 rng_;
  std::unordered_map<std::uint64_t, std::uint64_t> frame_of_;
  std::uint64_t next_frame_ = 0x80000;          // physical frames base
  std::vector<std::uint64_t> next_in_color_;    // per-color frame cursors
};

/// Rewrite every address of `trace` through a fresh mapper with `options`.
Trace apply_page_mapping(const Trace& trace, PageMapper::Options options);

}  // namespace canu
