#include "trace/page_mapping.hpp"

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace canu {

const char* page_policy_name(PagePolicy policy) {
  switch (policy) {
    case PagePolicy::kIdentity: return "identity";
    case PagePolicy::kRandom: return "random";
    case PagePolicy::kColored: return "colored";
  }
  return "unknown";
}

PageMapper::PageMapper(Options options)
    : opt_(options),
      rng_(options.seed * 0x9e3779b97f4a7c15ULL + 0x9a6e),
      next_in_color_(options.colors) {
  CANU_CHECK_MSG(is_pow2(opt_.page_size) && opt_.page_size >= 256,
                 "page size must be a power of two >= 256");
  CANU_CHECK_MSG(opt_.colors >= 1 && is_pow2(opt_.colors),
                 "color count must be a power of two >= 1");
  page_bits_ = log2_exact(opt_.page_size);
  // Per-color cursors: color c hands out frames c, c+colors, c+2*colors...
  for (std::uint64_t c = 0; c < opt_.colors; ++c) {
    next_in_color_[c] = next_frame_ + c;
  }
}

std::uint64_t PageMapper::allocate_frame(std::uint64_t vpage) {
  switch (opt_.policy) {
    case PagePolicy::kIdentity:
      return vpage;
    case PagePolicy::kRandom:
      // A fresh frame with random low bits: sequential allocation from a
      // randomly permuted pool, approximated by salting the counter with
      // random color bits (the index-visible part of the frame number).
      return (next_frame_++ << log2_exact(opt_.colors)) |
             rng_.below(opt_.colors);
    case PagePolicy::kColored: {
      const std::uint64_t color = vpage & (opt_.colors - 1);
      const std::uint64_t frame = next_in_color_[color];
      next_in_color_[color] += opt_.colors;
      return frame;
    }
  }
  return vpage;
}

std::uint64_t PageMapper::translate(std::uint64_t vaddr) {
  const std::uint64_t vpage = vaddr >> page_bits_;
  auto [it, inserted] = frame_of_.try_emplace(vpage, 0);
  if (inserted) it->second = allocate_frame(vpage);
  return (it->second << page_bits_) | (vaddr & (opt_.page_size - 1));
}

Trace apply_page_mapping(const Trace& trace, PageMapper::Options options) {
  PageMapper mapper(options);
  Trace out(trace.name() + "[" + page_policy_name(options.policy) + "]");
  out.reserve(trace.size());
  for (const MemRef& r : trace) {
    out.append(mapper.translate(r.addr), r.type);
  }
  return out;
}

}  // namespace canu
