#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "workloads/detail.hpp"

namespace canu::synthetic {

using workloads_detail::make_rng;
using workloads_detail::scaled;

namespace {

constexpr std::uint64_t kLine = 32;

}  // namespace

void uniform(TraceSink& sink, const WorkloadParams& p) {
  Xoshiro256 rng = make_rng(p, 0x0501);
  const std::size_t refs = scaled(p, 400'000);
  const std::uint64_t lines = 4096;  // 128 KB footprint
  for (std::size_t i = 0; i < refs; ++i) {
    const std::uint64_t line = rng.below(lines);
    sink.push(p.address_base + line * kLine + rng.below(kLine),
                 rng.below(4) == 0 ? AccessType::kWrite : AccessType::kRead);
  }
}

void hotset(TraceSink& sink, const WorkloadParams& p) {
  Xoshiro256 rng = make_rng(p, 0x0502);
  const std::size_t refs = scaled(p, 400'000);
  const std::uint64_t lines = 8192;
  const std::uint64_t hot_lines = lines / 10;
  for (std::size_t i = 0; i < refs; ++i) {
    const bool hot = rng.below(10) != 0;  // 90% of accesses
    const std::uint64_t line = hot ? rng.below(hot_lines)
                                   : hot_lines + rng.below(lines - hot_lines);
    sink.push(p.address_base + line * kLine, AccessType::kRead);
  }
}

void strided(TraceSink& sink, const WorkloadParams& p) {
  const std::size_t refs = scaled(p, 400'000);
  // Stride of exactly one cache way (32 KB): every access maps to the same
  // set under modulo indexing.
  const std::uint64_t stride = 32 * 1024;
  const std::uint64_t span = 64;  // 64 conflicting lines
  for (std::size_t i = 0; i < refs; ++i) {
    sink.push(p.address_base + (i % span) * stride, AccessType::kRead);
  }
}

void gaussian(TraceSink& sink, const WorkloadParams& p) {
  Xoshiro256 rng = make_rng(p, 0x0504);
  const std::size_t refs = scaled(p, 400'000);
  const double lines = 16384.0;
  double centre = lines / 2.0;
  for (std::size_t i = 0; i < refs; ++i) {
    centre += rng.uniform() - 0.5;  // slow drift
    const double v = centre + rng.normal() * 128.0;
    const double clamped = std::clamp(v, 0.0, lines - 1.0);
    sink.push(p.address_base +
                     static_cast<std::uint64_t>(clamped) * kLine,
                 AccessType::kRead);
  }
}

void sequential(TraceSink& sink, const WorkloadParams& p) {
  const std::size_t refs = scaled(p, 400'000);
  for (std::size_t i = 0; i < refs; ++i) {
    sink.push(p.address_base + static_cast<std::uint64_t>(i) * 4,
                 AccessType::kRead);
  }
}

}  // namespace canu::synthetic
