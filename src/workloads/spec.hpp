// SPEC CPU2006-like instrumented kernels (DESIGN.md §1): each function
// exercises the dominant memory-access idiom of its namesake benchmark.
#pragma once

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace canu::spec {

void astar(TraceSink& sink, const WorkloadParams& p);       ///< grid A* path search
void bzip2(TraceSink& sink, const WorkloadParams& p);       ///< BWT-style block transform
void calculix(TraceSink& sink, const WorkloadParams& p);    ///< FE sparse solver (CSR SpMV)
void gromacs(TraceSink& sink, const WorkloadParams& p);     ///< MD cell-list force loop
void hmmer(TraceSink& sink, const WorkloadParams& p);       ///< profile-HMM Viterbi DP
void libquantum(TraceSink& sink, const WorkloadParams& p);  ///< quantum register gates
void mcf(TraceSink& sink, const WorkloadParams& p);         ///< network-simplex pricing
void milc(TraceSink& sink, const WorkloadParams& p);        ///< 4-D lattice QCD sweep
void namd(TraceSink& sink, const WorkloadParams& p);        ///< pairlist MD forces
void sjeng(TraceSink& sink, const WorkloadParams& p);       ///< game-tree search + hash table

}  // namespace canu::spec
