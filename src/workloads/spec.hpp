// SPEC CPU2006-like instrumented kernels (DESIGN.md §1): each function
// exercises the dominant memory-access idiom of its namesake benchmark.
#pragma once

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace canu::spec {

Trace astar(const WorkloadParams& p);       ///< grid A* path search
Trace bzip2(const WorkloadParams& p);       ///< BWT-style block transform
Trace calculix(const WorkloadParams& p);    ///< FE sparse solver (CSR SpMV)
Trace gromacs(const WorkloadParams& p);     ///< MD cell-list force loop
Trace hmmer(const WorkloadParams& p);       ///< profile-HMM Viterbi DP
Trace libquantum(const WorkloadParams& p);  ///< quantum register gates
Trace mcf(const WorkloadParams& p);         ///< network-simplex pricing
Trace milc(const WorkloadParams& p);        ///< 4-D lattice QCD sweep
Trace namd(const WorkloadParams& p);        ///< pairlist MD forces
Trace sjeng(const WorkloadParams& p);       ///< game-tree search + hash table

}  // namespace canu::spec
