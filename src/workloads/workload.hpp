// Workload interface and registry.
//
// A workload is a deterministic generator of a memory trace: a real algorithm
// executed against instrumented containers (trace/traced_memory.hpp) in a
// deterministic virtual address space. Workloads substitute for the paper's
// SimpleScalar-collected MiBench/SPEC traces (DESIGN.md §1): the access
// *pattern* is produced by the same algorithm the benchmark is named after.
//
// Kernels emit their references into a TraceSink (docs/workloads.md): a
// consumer can be an in-memory Trace, the on-disk trace cache, or the batch
// simulation engine replaying chunks as they are produced — generation
// never has to materialize the full stream.
//
// All generators are pure functions of WorkloadParams — same params, same
// reference stream, on every platform.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/stream.hpp"
#include "trace/trace.hpp"
#include "trace/trace_cache.hpp"

namespace canu {

struct WorkloadParams {
  /// RNG seed for input-data synthesis (not for the algorithm itself).
  std::uint64_t seed = 1;
  /// Problem-size multiplier; 1.0 gives roughly 10^5..10^6 references.
  double scale = 1.0;
  /// Base of the workload's virtual address space. Distinct bases give
  /// co-scheduled threads disjoint address spaces (multithreaded runs).
  std::uint64_t address_base = 0x1000'0000;
};

struct WorkloadInfo {
  std::string name;         ///< e.g. "fft"
  std::string suite;        ///< "mibench", "spec2006" or "synthetic"
  std::string description;  ///< one-line summary of the kernel
  std::function<void(TraceSink&, const WorkloadParams&)> generate;
};

/// All registered workloads, in deterministic (suite, name) order.
const std::vector<WorkloadInfo>& all_workloads();

/// Look up a workload by name; returns nullptr if unknown.
const WorkloadInfo* find_workload(const std::string& name);

/// Generate a workload trace by name; throws canu::Error on unknown name.
Trace generate_workload(const std::string& name,
                        const WorkloadParams& params = WorkloadParams());

/// Stream a workload's references into `sink` without materializing them;
/// throws canu::Error on unknown name.
void generate_workload_into(const std::string& name, TraceSink& sink,
                            const WorkloadParams& params = WorkloadParams());

/// Trace-cache key for (workload, params): workload traces are pure
/// functions of these inputs, so the key encodes exactly name, seed, scale
/// and address base.
std::string workload_cache_key(const std::string& name,
                               const WorkloadParams& params);

/// Generate the workload trace, or load it from `cache` when present
/// (storing it on a miss). A null cache degrades to plain generation.
Trace cached_workload_trace(const std::string& name,
                            const WorkloadParams& params,
                            const TraceCache* cache);

/// Names of all workloads, optionally filtered by suite ("" = all).
std::vector<std::string> workload_names(const std::string& suite = "");

/// The 11 MiBench programs evaluated in the paper's Figures 4, 6, 7, 9-12.
const std::vector<std::string>& paper_mibench_set();

/// The 10 SPEC 2006 programs in the paper's Figure 8.
const std::vector<std::string>& paper_spec_set();

}  // namespace canu
