// Workload interface and registry.
//
// A workload is a deterministic generator of a memory trace: a real algorithm
// executed against instrumented containers (trace/traced_memory.hpp) in a
// deterministic virtual address space. Workloads substitute for the paper's
// SimpleScalar-collected MiBench/SPEC traces (DESIGN.md §1): the access
// *pattern* is produced by the same algorithm the benchmark is named after.
//
// All generators are pure functions of WorkloadParams — same params, same
// trace, on every platform.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace canu {

struct WorkloadParams {
  /// RNG seed for input-data synthesis (not for the algorithm itself).
  std::uint64_t seed = 1;
  /// Problem-size multiplier; 1.0 gives roughly 10^5..10^6 references.
  double scale = 1.0;
  /// Base of the workload's virtual address space. Distinct bases give
  /// co-scheduled threads disjoint address spaces (multithreaded runs).
  std::uint64_t address_base = 0x1000'0000;
};

struct WorkloadInfo {
  std::string name;         ///< e.g. "fft"
  std::string suite;        ///< "mibench", "spec2006" or "synthetic"
  std::string description;  ///< one-line summary of the kernel
  std::function<Trace(const WorkloadParams&)> generate;
};

/// All registered workloads, in deterministic (suite, name) order.
const std::vector<WorkloadInfo>& all_workloads();

/// Look up a workload by name; returns nullptr if unknown.
const WorkloadInfo* find_workload(const std::string& name);

/// Generate a workload trace by name; throws canu::Error on unknown name.
Trace generate_workload(const std::string& name,
                        const WorkloadParams& params = WorkloadParams());

/// Names of all workloads, optionally filtered by suite ("" = all).
std::vector<std::string> workload_names(const std::string& suite = "");

/// The 11 MiBench programs evaluated in the paper's Figures 4, 6, 7, 9-12.
const std::vector<std::string>& paper_mibench_set();

/// The 10 SPEC 2006 programs in the paper's Figure 8.
const std::vector<std::string>& paper_spec_set();

}  // namespace canu
