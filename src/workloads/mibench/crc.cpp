// MiBench crc: CRC-32 over a byte buffer using the standard 256-entry table.
//
// Access pattern: one sequential byte stream plus data-dependent lookups in
// a 1 KB table — streaming with a small hot region, little reuse of the
// stream itself.
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void crc(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xc12c);

  const std::size_t n = scaled(p, 260'000);
  TracedArray<std::uint8_t> buffer(rec, space, n, "file_buffer");
  TracedArray<std::uint32_t> table(rec, space, 256, "crc_table");
  TracedArray<std::uint32_t> crc_out(rec, space, 1, "crc_value");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n; ++i) {
      buffer.raw(i) = static_cast<std::uint8_t>(rng.next());
    }
    // Standard CRC-32 (IEEE 802.3) table.
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      table.raw(i) = c;
    }
    crc_out.raw(0) = 0xffffffffu;
  }

  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t byte = buffer.load(i);
    crc = table.load((crc ^ byte) & 0xffu) ^ (crc >> 8);
    // The MiBench driver updates an in-memory accumulator per block.
    if ((i & 0x3ff) == 0x3ff) crc_out.store(0, crc);
  }
  crc_out.store(0, crc ^ 0xffffffffu);
}

}  // namespace canu::mibench
