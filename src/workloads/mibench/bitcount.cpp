// MiBench bitcount: a battery of bit-counting algorithms over a word stream.
//
// Access pattern: repeated passes over a small input buffer plus a 256-entry
// lookup table — a very small, very hot working set that hits the same sets
// continuously (the paper singles bitcount out as a benchmark with uniform
// accesses and almost no conflict misses to eliminate).
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

int count_shift(std::uint32_t x) {
  int c = 0;
  for (; x; x >>= 1) c += static_cast<int>(x & 1);
  return c;
}

int count_kernighan(std::uint32_t x) {
  int c = 0;
  for (; x; ++c) x &= x - 1;
  return c;
}

int count_parallel(std::uint32_t x) {
  x = x - ((x >> 1) & 0x55555555u);
  x = (x & 0x33333333u) + ((x >> 2) & 0x33333333u);
  x = (x + (x >> 4)) & 0x0f0f0f0fu;
  return static_cast<int>((x * 0x01010101u) >> 24);
}

}  // namespace

void bitcount(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xb17c);

  const std::size_t n = scaled(p, 24'000);
  constexpr std::size_t kPasses = 6;
  TracedArray<std::uint32_t> words(rec, space, n, "words");
  TracedArray<std::uint8_t> table(rec, space, 256, "nibble_table");
  TracedArray<std::int64_t> totals(rec, space, 4, "totals");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n; ++i) {
      words.raw(i) = static_cast<std::uint32_t>(rng.next());
    }
    for (std::size_t i = 0; i < 256; ++i) {
      table.raw(i) =
          static_cast<std::uint8_t>(count_parallel(static_cast<std::uint32_t>(i)));
    }
    for (std::size_t i = 0; i < 4; ++i) totals.raw(i) = 0;
  }

  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    // Method 0: byte-table lookups (4 table reads per word).
    std::int64_t t = totals.load(0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t w = words.load(i);
      t += table.load(w & 0xff) + table.load((w >> 8) & 0xff) +
           table.load((w >> 16) & 0xff) + table.load((w >> 24) & 0xff);
    }
    totals.store(0, t);

    // Method 1: shift-and-test.
    t = totals.load(1);
    for (std::size_t i = 0; i < n; ++i) t += count_shift(words.load(i));
    totals.store(1, t);

    // Method 2: Kernighan clears.
    t = totals.load(2);
    for (std::size_t i = 0; i < n; ++i) t += count_kernighan(words.load(i));
    totals.store(2, t);

    // Method 3: SWAR parallel count.
    t = totals.load(3);
    for (std::size_t i = 0; i < n; ++i) t += count_parallel(words.load(i));
    totals.store(3, t);
  }
}

}  // namespace canu::mibench
