// MiBench basicmath: cubic equation solving, integer square roots and
// angle conversions over input vectors.
//
// Access pattern: several parallel coefficient arrays read in lockstep and
// result arrays written sequentially — multiple interleaved streams whose
// relative base addresses determine which cache sets collide.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

/// Real roots of a*x^3 + b*x^2 + c*x + d (Cardano; same math as MiBench's
/// SolveCubic). Returns the number of real roots, roots in r[0..2].
int solve_cubic(double a, double b, double c, double d, double r[3]) {
  const double a1 = b / a, a2 = c / a, a3 = d / a;
  const double q = (a1 * a1 - 3.0 * a2) / 9.0;
  const double rr = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0;
  const double q3 = q * q * q;
  const double det = q3 - rr * rr;
  if (det >= 0) {
    const double theta = std::acos(std::clamp(rr / std::sqrt(q3), -1.0, 1.0));
    const double sq = -2.0 * std::sqrt(q);
    r[0] = sq * std::cos(theta / 3.0) - a1 / 3.0;
    r[1] = sq * std::cos((theta + 2.0 * M_PI) / 3.0) - a1 / 3.0;
    r[2] = sq * std::cos((theta + 4.0 * M_PI) / 3.0) - a1 / 3.0;
    return 3;
  }
  const double e = std::cbrt(std::sqrt(-det) + std::fabs(rr));
  r[0] = (rr > 0 ? -(e + q / e) : (e + q / e)) - a1 / 3.0;
  return 1;
}

/// Integer square root by successive approximation (MiBench's usqrt).
std::uint32_t usqrt(std::uint32_t x) {
  std::uint32_t a = 0, r = 0;
  for (int i = 0; i < 16; ++i) {
    r = (r << 2) + (x >> 30);
    x <<= 2;
    a <<= 1;
    const std::uint32_t e = (a << 1) + 1;
    if (r >= e) {
      r -= e;
      ++a;
    }
  }
  return a;
}

}  // namespace

void basicmath(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xba51);

  const std::size_t n = scaled(p, 40'000);
  TracedArray<double> ca(rec, space, n, "coef_a");
  TracedArray<double> cb(rec, space, n, "coef_b");
  TracedArray<double> cc(rec, space, n, "coef_c");
  TracedArray<double> cd(rec, space, n, "coef_d");
  TracedArray<double> roots(rec, space, 3 * n, "roots");
  TracedArray<std::uint32_t> ints(rec, space, n, "isqrt_in");
  TracedArray<std::uint32_t> isq(rec, space, n, "isqrt_out");
  TracedArray<double> degs(rec, space, n, "degrees");
  TracedArray<double> rads(rec, space, n, "radians");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n; ++i) {
      ca.raw(i) = 1.0;
      cb.raw(i) = static_cast<double>(rng.below(61)) - 30.0;
      cc.raw(i) = static_cast<double>(rng.below(201)) - 100.0;
      cd.raw(i) = static_cast<double>(rng.below(201)) - 100.0;
      ints.raw(i) = static_cast<std::uint32_t>(rng.next());
      degs.raw(i) = static_cast<double>(rng.below(360));
    }
  }

  // Phase 1: cubic roots.
  for (std::size_t i = 0; i < n; ++i) {
    double r[3] = {0, 0, 0};
    const int count = solve_cubic(ca.load(i), cb.load(i), cc.load(i),
                                  cd.load(i), r);
    for (int k = 0; k < count; ++k) roots.store(3 * i + static_cast<std::size_t>(k), r[k]);
  }
  // Phase 2: integer square roots.
  for (std::size_t i = 0; i < n; ++i) isq.store(i, usqrt(ints.load(i)));
  // Phase 3: degree -> radian conversion.
  for (std::size_t i = 0; i < n; ++i) {
    rads.store(i, degs.load(i) * (M_PI / 180.0));
  }
}

}  // namespace canu::mibench
