// MiBench stringsearch: Boyer-Moore-Horspool search of a pattern set over a
// text corpus.
//
// Access pattern: per pattern a 256-entry skip table, then text scans whose
// stride is data-dependent (the skip values) — sequential-ish reads with
// irregular gaps plus small hot tables.
#include <vector>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void stringsearch(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x577);

  const std::size_t text_len = scaled(p, 160'000);
  const std::size_t n_patterns = scaled(p, 24);
  constexpr std::size_t kPatLen = 8;

  TracedArray<std::uint8_t> text(rec, space, text_len, "text");
  TracedArray<std::uint8_t> patterns(rec, space, n_patterns * kPatLen,
                                     "patterns");
  TracedArray<std::uint8_t> skip(rec, space, 256, "skip_table");
  TracedArray<std::uint32_t> match_count(rec, space, 1, "matches");

  {
    RecordingPause pause(rec);
    // Text over a small alphabet (word-like) so partial matches occur.
    static const char alphabet[] = "etaoinshr dlu";
    for (std::size_t i = 0; i < text_len; ++i) {
      text.raw(i) = static_cast<std::uint8_t>(
          alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
    for (std::size_t i = 0; i < n_patterns * kPatLen; ++i) {
      patterns.raw(i) = static_cast<std::uint8_t>(
          alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
    match_count.raw(0) = 0;
  }

  for (std::size_t pi = 0; pi < n_patterns; ++pi) {
    // Build the bad-character skip table for this pattern.
    for (std::size_t c = 0; c < 256; ++c) {
      skip.store(c, static_cast<std::uint8_t>(kPatLen));
    }
    for (std::size_t k = 0; k + 1 < kPatLen; ++k) {
      skip.store(patterns.load(pi * kPatLen + k),
                 static_cast<std::uint8_t>(kPatLen - 1 - k));
    }
    // Horspool scan.
    std::size_t pos = 0;
    while (pos + kPatLen <= text_len) {
      const std::uint8_t last = text.load(pos + kPatLen - 1);
      // Compare right-to-left until mismatch.
      std::size_t k = kPatLen;
      while (k > 0 &&
             text.load(pos + k - 1) == patterns.load(pi * kPatLen + k - 1)) {
        --k;
      }
      if (k == 0) {
        match_count.store(0, match_count.load(0) + 1);
      }
      pos += skip.load(last);
    }
  }
}

}  // namespace canu::mibench
