// MiBench fft: iterative radix-2 Cooley-Tukey FFT over split real/imaginary
// arrays.
//
// Access pattern: the bit-reversal permutation followed by log2(n) butterfly
// stages whose strides double each stage — the power-of-two strides map
// whole stages onto a few cache sets, producing the heavily skewed per-set
// distribution the paper's Figure 1 shows for this benchmark.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void fft(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xff7);

  // Round the scaled size to a power of two.
  std::size_t n = 1;
  while (n * 2 <= scaled(p, 8192)) n *= 2;

  TracedArray<double> re(rec, space, n, "real");
  TracedArray<double> im(rec, space, n, "imag");
  // Twiddle-factor tables, as the MiBench implementation precomputes its
  // coefficient arrays. Entry k holds e^(-2*pi*i*k/n); stage `len` reads
  // every (n/len)-th entry, so low-index entries are re-read every stage —
  // the hot-set signature behind the paper's Figure 1.
  TracedArray<double> tw_re(rec, space, n / 2, "twiddle_real");
  TracedArray<double> tw_im(rec, space, n / 2, "twiddle_imag");

  {
    RecordingPause pause(rec);
    // MiBench drives the FFT with a sum of random sinusoids.
    for (std::size_t i = 0; i < n; ++i) {
      re.raw(i) = rng.uniform() * 2.0 - 1.0;
      im.raw(i) = 0.0;
    }
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * M_PI * static_cast<double>(k) /
                         static_cast<double>(n);
      tw_re.raw(k) = std::cos(ang);
      tw_im.raw(k) = std::sin(ang);
    }
  }

  const auto run_fft = [&](bool inverse) {
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) {
        const double tr = re.load(i);
        const double ti = im.load(i);
        re.store(i, re.load(j));
        im.store(i, im.load(j));
        re.store(j, tr);
        im.store(j, ti);
      }
    }
    // Butterfly stages, twiddles read from the precomputed tables.
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t twiddle_stride = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          const std::size_t a = i + k;
          const std::size_t b = i + k + len / 2;
          const double cr = tw_re.load(k * twiddle_stride);
          const double ci_raw = tw_im.load(k * twiddle_stride);
          const double ci = inverse ? -ci_raw : ci_raw;
          const double ar = re.load(a), ai = im.load(a);
          const double br = re.load(b), bi = im.load(b);
          const double tr = br * cr - bi * ci;
          const double ti = br * ci + bi * cr;
          re.store(a, ar + tr);
          im.store(a, ai + ti);
          re.store(b, ar - tr);
          im.store(b, ai - ti);
        }
      }
    }
  };

  run_fft(false);  // forward transform
  run_fft(true);   // inverse transform (MiBench runs fft followed by ifft)
}

}  // namespace canu::mibench
