// MiBench qsort: quicksort of string records (the MiBench program sorts a
// word list with libc qsort and strcmp).
//
// Access pattern: partition scans over a pointer array combined with
// byte-wise key comparisons that chase into a string pool — a mix of
// sequential sweeps at shrinking granularity and data-dependent reads.
#include <vector>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

constexpr std::size_t kKeyLen = 16;  // fixed-size keys in the string pool

}  // namespace

void qsort(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x4502);

  const std::size_t n = scaled(p, 20'000);
  TracedArray<std::uint8_t> pool(rec, space, n * kKeyLen, "string_pool");
  TracedArray<std::uint32_t> ptrs(rec, space, n, "pointer_array");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n; ++i) {
      ptrs.raw(i) = static_cast<std::uint32_t>(i);
      // Keys share common prefixes the way word lists do, so comparisons
      // frequently read several bytes deep.
      const std::size_t shared = rng.below(6);
      for (std::size_t k = 0; k < kKeyLen; ++k) {
        pool.raw(i * kKeyLen + k) =
            k < shared ? static_cast<std::uint8_t>('a' + (k % 4))
                       : static_cast<std::uint8_t>('a' + rng.below(26));
      }
    }
  }

  // strcmp over the instrumented pool.
  auto compare = [&](std::uint32_t a, std::uint32_t b) -> int {
    for (std::size_t k = 0; k < kKeyLen; ++k) {
      const std::uint8_t ca = pool.load(static_cast<std::size_t>(a) * kKeyLen + k);
      const std::uint8_t cb = pool.load(static_cast<std::size_t>(b) * kKeyLen + k);
      if (ca != cb) return ca < cb ? -1 : 1;
    }
    return 0;
  };

  // Iterative quicksort with explicit stack and median-of-three pivots;
  // small partitions finish with insertion sort, as libc qsort does.
  std::vector<std::pair<std::int64_t, std::int64_t>> stack;
  stack.emplace_back(0, static_cast<std::int64_t>(n) - 1);
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    while (lo < hi) {
      if (hi - lo < 8) {
        for (std::int64_t i = lo + 1; i <= hi; ++i) {
          const std::uint32_t key = ptrs.load(static_cast<std::size_t>(i));
          std::int64_t j = i - 1;
          while (j >= lo &&
                 compare(ptrs.load(static_cast<std::size_t>(j)), key) > 0) {
            ptrs.store(static_cast<std::size_t>(j + 1),
                       ptrs.load(static_cast<std::size_t>(j)));
            --j;
          }
          ptrs.store(static_cast<std::size_t>(j + 1), key);
        }
        break;
      }
      // Median-of-three pivot selection.
      const std::int64_t mid = lo + (hi - lo) / 2;
      std::uint32_t a = ptrs.load(static_cast<std::size_t>(lo));
      std::uint32_t b = ptrs.load(static_cast<std::size_t>(mid));
      std::uint32_t c = ptrs.load(static_cast<std::size_t>(hi));
      std::uint32_t pivot;
      if (compare(a, b) < 0) {
        pivot = compare(b, c) < 0 ? b : (compare(a, c) < 0 ? c : a);
      } else {
        pivot = compare(a, c) < 0 ? a : (compare(b, c) < 0 ? c : b);
      }
      // Hoare partition.
      std::int64_t i = lo - 1, j = hi + 1;
      for (;;) {
        do { ++i; } while (compare(ptrs.load(static_cast<std::size_t>(i)), pivot) < 0);
        do { --j; } while (compare(ptrs.load(static_cast<std::size_t>(j)), pivot) > 0);
        if (i >= j) break;
        const std::uint32_t tmp = ptrs.load(static_cast<std::size_t>(i));
        ptrs.store(static_cast<std::size_t>(i),
                   ptrs.load(static_cast<std::size_t>(j)));
        ptrs.store(static_cast<std::size_t>(j), tmp);
      }
      // Recurse on the smaller side, loop on the larger.
      if (j - lo < hi - (j + 1)) {
        stack.emplace_back(j + 1, hi);
        hi = j;
      } else {
        stack.emplace_back(lo, j);
        lo = j + 1;
      }
    }
  }
}

}  // namespace canu::mibench
