// MiBench gsm: GSM full-rate speech encoding front end — per-frame LPC
// autocorrelation and long-term-prediction (LTP) lag search.
//
// Access pattern: per 160-sample frame, triangular autocorrelation sweeps
// (overlapping reads at small lags) followed by an LTP cross-correlation
// against a 3-frame history at 80 candidate lags — dense re-reading of a
// sliding window, plus sequential frame input.
#include <cstdlib>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void gsm(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x65a1);

  constexpr std::size_t kFrame = 160;
  constexpr std::size_t kLags = 9;       // LPC order + 1
  constexpr std::size_t kHistory = 3 * kFrame;
  const std::size_t frames = scaled(p, 220);

  TracedArray<std::int16_t> samples(rec, space, frames * kFrame, "speech");
  TracedArray<std::int32_t> autocorr(rec, space, kLags, "autocorr");
  TracedArray<std::int16_t> history(rec, space, kHistory, "ltp_history");
  TracedArray<std::int16_t> residual(rec, space, frames * kFrame, "residual");
  TracedArray<std::int32_t> best_lag(rec, space, 1, "best_lag");

  {
    RecordingPause pause(rec);
    std::int32_t level = 0;
    for (std::size_t i = 0; i < frames * kFrame; ++i) {
      level += static_cast<std::int32_t>(rng.below(800)) - 400;
      level = std::clamp(level, -20000, 20000);
      samples.raw(i) = static_cast<std::int16_t>(level);
    }
    for (std::size_t i = 0; i < kHistory; ++i) history.raw(i) = 0;
  }

  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t base = f * kFrame;

    // LPC autocorrelation: acf[k] = sum s[i] * s[i-k].
    for (std::size_t k = 0; k < kLags; ++k) {
      std::int64_t acc = 0;
      for (std::size_t i = k; i < kFrame; ++i) {
        acc += static_cast<std::int64_t>(samples.load(base + i)) *
               samples.load(base + i - k);
      }
      autocorr.store(k, static_cast<std::int32_t>(acc >> 16));
    }

    // LTP lag search over the history buffer (40-sample subframes, lags
    // 40..120, as the GSM 06.10 long-term predictor does).
    for (std::size_t sub = 0; sub < 4; ++sub) {
      const std::size_t sbase = base + sub * 40;
      std::int64_t best = -1;
      std::int32_t lag_found = 40;
      for (std::size_t lag = 40; lag <= 120; ++lag) {
        std::int64_t corr = 0;
        for (std::size_t i = 0; i < 40; ++i) {
          const std::size_t hist_idx = kHistory - lag + i;
          corr += static_cast<std::int64_t>(samples.load(sbase + i)) *
                  history.load(hist_idx % kHistory);
        }
        if (std::llabs(corr) > best) {
          best = std::llabs(corr);
          lag_found = static_cast<std::int32_t>(lag);
        }
      }
      best_lag.store(0, lag_found);
      // Residual = sample - predicted (gain folded to 1 for the pattern).
      for (std::size_t i = 0; i < 40; ++i) {
        const std::size_t hist_idx =
            kHistory - static_cast<std::size_t>(lag_found) + i;
        residual.store(sbase + i,
                       static_cast<std::int16_t>(
                           samples.load(sbase + i) -
                           history.load(hist_idx % kHistory) / 2));
      }
    }

    // Slide the history: drop the oldest frame, append this one.
    for (std::size_t i = 0; i < kHistory - kFrame; ++i) {
      history.store(i, history.load(i + kFrame));
    }
    for (std::size_t i = 0; i < kFrame; ++i) {
      history.store(kHistory - kFrame + i, samples.load(base + i));
    }
  }
}

}  // namespace canu::mibench
