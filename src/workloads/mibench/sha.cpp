// MiBench sha: SHA-1 digest of a byte buffer.
//
// Access pattern: sequential 64-byte chunk reads, an 80-word message
// schedule written then re-read inside each chunk, and a 5-word state —
// streaming input over a small, extremely hot scratch area.
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

std::uint32_t rotl(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

void sha(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x5a1);

  const std::size_t n_chunks = scaled(p, 2'000);
  TracedArray<std::uint32_t> buffer(rec, space, n_chunks * 16, "message");
  TracedArray<std::uint32_t> w(rec, space, 80, "schedule");
  TracedArray<std::uint32_t> digest(rec, space, 5, "digest");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n_chunks * 16; ++i) {
      buffer.raw(i) = static_cast<std::uint32_t>(rng.next());
    }
    digest.raw(0) = 0x67452301u;
    digest.raw(1) = 0xefcdab89u;
    digest.raw(2) = 0x98badcfeu;
    digest.raw(3) = 0x10325476u;
    digest.raw(4) = 0xc3d2e1f0u;
  }

  for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
    for (std::size_t t = 0; t < 16; ++t) {
      w.store(t, buffer.load(chunk * 16 + t));
    }
    for (std::size_t t = 16; t < 80; ++t) {
      w.store(t, rotl(w.load(t - 3) ^ w.load(t - 8) ^ w.load(t - 14) ^
                          w.load(t - 16),
                      1));
    }
    std::uint32_t a = digest.load(0), b = digest.load(1), c = digest.load(2),
                  d = digest.load(3), e = digest.load(4);
    for (std::size_t t = 0; t < 80; ++t) {
      std::uint32_t f, k;
      if (t < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1u;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdcu;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6u;
      }
      const std::uint32_t tmp = rotl(a, 5) + f + e + k + w.load(t);
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = tmp;
    }
    digest.store(0, digest.load(0) + a);
    digest.store(1, digest.load(1) + b);
    digest.store(2, digest.load(2) + c);
    digest.store(3, digest.load(3) + d);
    digest.store(4, digest.load(4) + e);
  }
}

}  // namespace canu::mibench
