// MiBench rijndael: AES-128 encryption of a buffer using the T-table
// formulation the original implementation (Gladman's code) uses.
//
// Access pattern: per 16-byte block, 40 data-dependent lookups into four
// 1 KB tables plus sequential input/output streaming and round-key reads —
// hot tables under a cold stream.
#include <array>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return r;
}

/// AES S-box computed from first principles (multiplicative inverse in
/// GF(2^8) followed by the affine transform).
std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (unsigned a = 1; a < 256; ++a) {
    for (unsigned b = 1; b < 256; ++b) {
      if (gf_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)) == 1) {
        inv[a] = static_cast<std::uint8_t>(b);
        break;
      }
    }
  }
  std::array<std::uint8_t, 256> sbox{};
  for (unsigned i = 0; i < 256; ++i) {
    std::uint8_t x = inv[i];
    std::uint8_t y = x;
    for (int k = 0; k < 4; ++k) {
      y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
      x ^= y;
    }
    sbox[i] = static_cast<std::uint8_t>(x ^ 0x63);
  }
  return sbox;
}

std::uint32_t rotr8(std::uint32_t v) { return (v >> 8) | (v << 24); }

}  // namespace

void rijndael(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xae5);

  const std::size_t blocks = scaled(p, 3'000);
  TracedArray<std::uint32_t> t0(rec, space, 256, "T0");
  TracedArray<std::uint32_t> t1(rec, space, 256, "T1");
  TracedArray<std::uint32_t> t2(rec, space, 256, "T2");
  TracedArray<std::uint32_t> t3(rec, space, 256, "T3");
  TracedArray<std::uint8_t> sbox_mem(rec, space, 256, "sbox");
  TracedArray<std::uint32_t> round_keys(rec, space, 44, "round_keys");
  TracedArray<std::uint32_t> input(rec, space, blocks * 4, "plaintext");
  TracedArray<std::uint32_t> output(rec, space, blocks * 4, "ciphertext");

  {
    RecordingPause pause(rec);
    const auto sbox = make_sbox();
    for (unsigned i = 0; i < 256; ++i) {
      const std::uint8_t s = sbox[i];
      const std::uint8_t s2 = xtime(s);
      const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
      const std::uint32_t t = (static_cast<std::uint32_t>(s2) << 24) |
                              (static_cast<std::uint32_t>(s) << 16) |
                              (static_cast<std::uint32_t>(s) << 8) | s3;
      t0.raw(i) = t;
      t1.raw(i) = rotr8(t);
      t2.raw(i) = rotr8(rotr8(t));
      t3.raw(i) = rotr8(rotr8(rotr8(t)));
      sbox_mem.raw(i) = s;
    }
    // AES-128 key schedule.
    std::uint32_t key[4];
    for (auto& k : key) k = static_cast<std::uint32_t>(rng.next());
    std::uint32_t rcon = 0x01000000u;
    for (int i = 0; i < 4; ++i) round_keys.raw(static_cast<std::size_t>(i)) = key[i];
    for (int i = 4; i < 44; ++i) {
      std::uint32_t tmp = round_keys.raw(static_cast<std::size_t>(i - 1));
      if (i % 4 == 0) {
        tmp = (tmp << 8) | (tmp >> 24);
        tmp = (static_cast<std::uint32_t>(sbox[(tmp >> 24) & 0xff]) << 24) |
              (static_cast<std::uint32_t>(sbox[(tmp >> 16) & 0xff]) << 16) |
              (static_cast<std::uint32_t>(sbox[(tmp >> 8) & 0xff]) << 8) |
              sbox[tmp & 0xff];
        tmp ^= rcon;
        rcon = static_cast<std::uint32_t>(gf_mul(static_cast<std::uint8_t>(rcon >> 24), 2)) << 24;
      }
      round_keys.raw(static_cast<std::size_t>(i)) =
          round_keys.raw(static_cast<std::size_t>(i - 4)) ^ tmp;
    }
    for (std::size_t i = 0; i < blocks * 4; ++i) {
      input.raw(i) = static_cast<std::uint32_t>(rng.next());
    }
  }

  for (std::size_t blk = 0; blk < blocks; ++blk) {
    std::uint32_t s[4];
    for (int i = 0; i < 4; ++i) {
      s[i] = input.load(blk * 4 + static_cast<std::size_t>(i)) ^
             round_keys.load(static_cast<std::size_t>(i));
    }
    for (int round = 1; round < 10; ++round) {
      std::uint32_t t[4];
      for (int i = 0; i < 4; ++i) {
        t[i] = t0.load((s[i] >> 24) & 0xff) ^
               t1.load((s[(i + 1) % 4] >> 16) & 0xff) ^
               t2.load((s[(i + 2) % 4] >> 8) & 0xff) ^
               t3.load(s[(i + 3) % 4] & 0xff) ^
               round_keys.load(static_cast<std::size_t>(round * 4 + i));
      }
      for (int i = 0; i < 4; ++i) s[i] = t[i];
    }
    // Final round uses the plain S-box.
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t w =
          (static_cast<std::uint32_t>(sbox_mem.load((s[i] >> 24) & 0xff)) << 24) |
          (static_cast<std::uint32_t>(sbox_mem.load((s[(i + 1) % 4] >> 16) & 0xff)) << 16) |
          (static_cast<std::uint32_t>(sbox_mem.load((s[(i + 2) % 4] >> 8) & 0xff)) << 8) |
          sbox_mem.load(s[(i + 3) % 4] & 0xff);
      output.store(blk * 4 + static_cast<std::size_t>(i),
                   w ^ round_keys.load(static_cast<std::size_t>(40 + i)));
    }
  }
}

}  // namespace canu::mibench
