// MiBench blowfish: Blowfish CBC encryption of a buffer.
//
// Access pattern: per 8-byte block, 16 Feistel rounds each performing four
// data-dependent S-box lookups (4 x 1 KB tables) plus P-array reads —
// like rijndael, hot tables under a streaming input, but with a deeper
// rounds-per-byte ratio.
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void blowfish(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xb1f5);

  const std::size_t blocks = scaled(p, 4'000);
  TracedArray<std::uint32_t> sbox(rec, space, 4 * 256, "sboxes");
  TracedArray<std::uint32_t> parr(rec, space, 18, "p_array");
  TracedArray<std::uint32_t> input(rec, space, blocks * 2, "plaintext");
  TracedArray<std::uint32_t> output(rec, space, blocks * 2, "ciphertext");

  {
    RecordingPause pause(rec);
    // Key-dependent boxes; the reference uses pi digits — the access
    // pattern only depends on the values being well mixed.
    for (std::size_t i = 0; i < 4 * 256; ++i) {
      sbox.raw(i) = static_cast<std::uint32_t>(rng.next());
    }
    for (std::size_t i = 0; i < 18; ++i) {
      parr.raw(i) = static_cast<std::uint32_t>(rng.next());
    }
    for (std::size_t i = 0; i < blocks * 2; ++i) {
      input.raw(i) = static_cast<std::uint32_t>(rng.next());
    }
  }

  const auto feistel = [&](std::uint32_t x) -> std::uint32_t {
    const std::uint32_t a = sbox.load(0 * 256 + ((x >> 24) & 0xff));
    const std::uint32_t b = sbox.load(1 * 256 + ((x >> 16) & 0xff));
    const std::uint32_t c = sbox.load(2 * 256 + ((x >> 8) & 0xff));
    const std::uint32_t d = sbox.load(3 * 256 + (x & 0xff));
    return ((a + b) ^ c) + d;
  };

  std::uint32_t iv_l = 0x243f6a88u, iv_r = 0x85a308d3u;  // CBC chaining
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    std::uint32_t l = input.load(blk * 2) ^ iv_l;
    std::uint32_t r = input.load(blk * 2 + 1) ^ iv_r;
    for (int round = 0; round < 16; ++round) {
      l ^= parr.load(static_cast<std::size_t>(round));
      r ^= feistel(l);
      std::swap(l, r);
    }
    std::swap(l, r);
    r ^= parr.load(16);
    l ^= parr.load(17);
    output.store(blk * 2, l);
    output.store(blk * 2 + 1, r);
    iv_l = l;
    iv_r = r;
  }
}

}  // namespace canu::mibench
