// MiBench adpcm: IMA ADPCM encoding of a PCM sample stream.
//
// Access pattern: a strictly sequential read of the 16-bit sample buffer, a
// sequential nibble-packed write of the compressed output, and repeated
// references to the small step-size tables and predictor state — the classic
// streaming benchmark with a tiny hot working set.
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

constexpr int kIndexAdjust[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                  -1, -1, -1, -1, 2, 4, 6, 8};

constexpr int kStepSizes[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

}  // namespace

void adpcm(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xadc0);

  const std::size_t n = scaled(p, 120'000);
  TracedArray<std::int16_t> pcm(rec, space, n, "pcm_in");
  TracedArray<std::uint8_t> out(rec, space, n / 2 + 1, "adpcm_out");
  TracedArray<std::int32_t> step_table(
      rec, space, std::vector<std::int32_t>(std::begin(kStepSizes),
                                            std::end(kStepSizes)),
      "step_table");
  TracedArray<std::int32_t> index_table(
      rec, space, std::vector<std::int32_t>(std::begin(kIndexAdjust),
                                            std::end(kIndexAdjust)),
      "index_table");
  // Predictor state lives in memory like the codec's struct does.
  TracedArray<std::int32_t> state(rec, space, 2, "codec_state");

  {
    RecordingPause pause(rec);
    // Synthesize a speech-like signal: random walk with occasional bursts.
    std::int32_t level = 0;
    for (std::size_t i = 0; i < n; ++i) {
      level += static_cast<std::int32_t>(rng.below(1200)) - 600;
      if (rng.below(256) == 0) level = static_cast<std::int32_t>(rng.below(20000)) - 10000;
      level = std::clamp(level, -32768, 32767);
      pcm.raw(i) = static_cast<std::int16_t>(level);
    }
    state.raw(0) = 0;  // valprev
    state.raw(1) = 0;  // step index
  }

  std::uint8_t nibble_buf = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t sample = pcm.load(i);
    std::int32_t valprev = state.load(0);
    std::int32_t index = state.load(1);
    const std::int32_t step = step_table.load(static_cast<std::size_t>(index));

    std::int32_t diff = sample - valprev;
    std::uint32_t code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    std::int32_t delta = step >> 3;
    if (diff >= step) {
      code |= 4;
      diff -= step;
      delta += step;
    }
    if (diff >= (step >> 1)) {
      code |= 2;
      diff -= step >> 1;
      delta += step >> 1;
    }
    if (diff >= (step >> 2)) {
      code |= 1;
      delta += step >> 2;
    }
    valprev = (code & 8) ? valprev - delta : valprev + delta;
    valprev = std::clamp(valprev, -32768, 32767);
    index = std::clamp(index + index_table.load(code), 0, 88);

    state.store(0, valprev);
    state.store(1, index);

    if (i % 2 == 0) {
      nibble_buf = static_cast<std::uint8_t>(code);
    } else {
      out.store(i / 2,
                static_cast<std::uint8_t>(nibble_buf | (code << 4)));
    }
  }
}

}  // namespace canu::mibench
