// MiBench susan: SUSAN image smoothing — a circular-mask stencil over a
// greyscale image with a brightness lookup table.
//
// Access pattern: row-major sweep where each output pixel gathers a
// fixed-shape 2-D neighbourhood (multiple rows touched per pixel, i.e.
// several large-stride streams in flight) plus LUT lookups keyed by pixel
// differences.
#include <cmath>
#include <vector>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void susan(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x5554);

  // Image dimensions scale with sqrt of the multiplier to keep the stencil
  // cost roughly linear in `scale`.
  const double side_scale = std::sqrt(std::max(0.0625, p.scale));
  const std::size_t width =
      std::max<std::size_t>(32, static_cast<std::size_t>(192 * side_scale));
  const std::size_t height =
      std::max<std::size_t>(32, static_cast<std::size_t>(144 * side_scale));

  TracedArray<std::uint8_t> image(rec, space, width * height, "image_in");
  TracedArray<std::uint8_t> smoothed(rec, space, width * height, "image_out");
  TracedArray<std::uint16_t> lut(rec, space, 512, "brightness_lut");

  {
    RecordingPause pause(rec);
    // A synthetic scene: smooth gradients with step edges, like the SUSAN
    // test images (edges are what the brightness LUT discriminates).
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const std::size_t block = (x / 24 + y / 24);
        const std::uint8_t base =
            static_cast<std::uint8_t>((block * 40) & 0xff);
        image.raw(y * width + x) = static_cast<std::uint8_t>(
            base + static_cast<std::uint8_t>(rng.below(12)));
      }
    }
    // exp(-(dI/t)^2) table, quantized — the SUSAN brightness function.
    for (int d = -256; d < 256; ++d) {
      const double v = std::exp(-(d / 27.0) * (d / 27.0)) * 1024.0;
      lut.raw(static_cast<std::size_t>(d + 256)) =
          static_cast<std::uint16_t>(v);
    }
  }

  // Circular mask of radius 2 (13 pixels, the "small" SUSAN mask).
  static constexpr int kMask[][2] = {
      {0, -2}, {-1, -1}, {0, -1}, {1, -1}, {-2, 0}, {-1, 0}, {0, 0},
      {1, 0},  {2, 0},   {-1, 1}, {0, 1},  {1, 1},  {0, 2}};

  for (std::size_t y = 2; y + 2 < height; ++y) {
    for (std::size_t x = 2; x + 2 < width; ++x) {
      const std::uint8_t centre = image.load(y * width + x);
      std::uint32_t weight_sum = 0;
      std::uint32_t value_sum = 0;
      for (const auto& off : kMask) {
        const std::size_t yy = y + static_cast<std::size_t>(off[1] + 2) - 2;
        const std::size_t xx = x + static_cast<std::size_t>(off[0] + 2) - 2;
        const std::uint8_t pix = image.load(yy * width + xx);
        const std::uint16_t wgt = lut.load(static_cast<std::size_t>(
            static_cast<int>(pix) - static_cast<int>(centre) + 256));
        weight_sum += wgt;
        value_sum += wgt * pix;
      }
      smoothed.store(y * width + x,
                     static_cast<std::uint8_t>(
                         weight_sum ? value_sum / weight_sum : centre));
    }
  }
}

}  // namespace canu::mibench
