// MiBench jpeg: the DCT/quantization core of JPEG compression.
//
// Access pattern: 8x8 blocks gathered from a row-major image (eight reads
// at image-width stride per block column), separable DCT over a small
// scratch block, quantization-table reads, and a zigzag run-length output
// whose write positions are data-dependent.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

// Zigzag order of an 8x8 block (standard JPEG scan).
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace

void jpeg(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x09e6);

  const double side_scale = std::sqrt(std::max(0.0625, p.scale));
  const std::size_t width = std::max<std::size_t>(
      64, (static_cast<std::size_t>(256 * side_scale) / 8) * 8);
  const std::size_t height = std::max<std::size_t>(
      64, (static_cast<std::size_t>(192 * side_scale) / 8) * 8);

  TracedArray<std::uint8_t> image(rec, space, width * height, "image");
  TracedArray<double> block(rec, space, 64, "dct_block");
  TracedArray<double> scratch(rec, space, 64, "dct_scratch");
  TracedArray<double> cosines(rec, space, 64, "cos_table");
  TracedArray<std::uint8_t> quant(rec, space, 64, "quant_table");
  TracedArray<std::int16_t> coeffs(rec, space, width * height, "coefficients");
  TracedArray<std::int16_t> rle(rec, space, width * height / 2, "rle_out");

  {
    RecordingPause pause(rec);
    // Photographic-ish content: smooth gradients + texture noise.
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double v = 96.0 + 64.0 * std::sin(x * 0.05) *
                                     std::cos(y * 0.03) +
                         static_cast<double>(rng.below(24));
        image.raw(y * width + x) = static_cast<std::uint8_t>(
            std::clamp(v, 0.0, 255.0));
      }
    }
    for (int u = 0; u < 8; ++u) {
      for (int x = 0; x < 8; ++x) {
        cosines.raw(static_cast<std::size_t>(u * 8 + x)) =
            std::cos((2 * x + 1) * u * M_PI / 16.0) *
            (u == 0 ? std::sqrt(0.125) : 0.5);
      }
    }
    // Luminance quantization table (scaled standard values).
    static const std::uint8_t kQuant[64] = {
        16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
        14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
        18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
    for (std::size_t i = 0; i < 64; ++i) quant.raw(i) = kQuant[i];
  }

  std::size_t rle_pos = 0;
  for (std::size_t by = 0; by < height; by += 8) {
    for (std::size_t bx = 0; bx < width; bx += 8) {
      // Gather the block (strided rows).
      for (std::size_t y = 0; y < 8; ++y) {
        for (std::size_t x = 0; x < 8; ++x) {
          block.store(y * 8 + x,
                      static_cast<double>(
                          image.load((by + y) * width + bx + x)) -
                          128.0);
        }
      }
      // Separable DCT: rows then columns.
      for (int u = 0; u < 8; ++u) {
        for (int y = 0; y < 8; ++y) {
          double acc = 0;
          for (int x = 0; x < 8; ++x) {
            acc += block.load(static_cast<std::size_t>(y * 8 + x)) *
                   cosines.load(static_cast<std::size_t>(u * 8 + x));
          }
          scratch.store(static_cast<std::size_t>(y * 8 + u), acc);
        }
      }
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          double acc = 0;
          for (int y = 0; y < 8; ++y) {
            acc += scratch.load(static_cast<std::size_t>(y * 8 + u)) *
                   cosines.load(static_cast<std::size_t>(v * 8 + y));
          }
          // Quantize and store in zigzag position.
          const std::size_t zz = static_cast<std::size_t>(kZigzag[v * 8 + u]);
          const double q = quant.load(zz);
          coeffs.store((by * width + bx * 8) / 8 + zz,
                       static_cast<std::int16_t>(acc / q));
        }
      }
      // Run-length pass over the zigzag coefficients (data-dependent
      // output positions, like the entropy coder's symbol stream).
      const std::size_t cbase = (by * width + bx * 8) / 8;
      int zero_run = 0;
      for (std::size_t i = 0; i < 64; ++i) {
        const std::int16_t c = coeffs.load(cbase + i);
        if (c == 0) {
          ++zero_run;
        } else {
          if (rle_pos + 2 < rle.size()) {
            rle.store(rle_pos++, static_cast<std::int16_t>(zero_run));
            rle.store(rle_pos++, c);
          }
          zero_run = 0;
        }
      }
    }
  }
}

}  // namespace canu::mibench
