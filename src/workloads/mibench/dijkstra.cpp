// MiBench dijkstra: single-source shortest paths over an adjacency matrix
// (the MiBench program runs an O(V^2) Dijkstra on a 100x100 matrix for many
// source/destination pairs).
//
// Access pattern: row-major scans of the adjacency matrix (fixed stride per
// row) interleaved with repeated sweeps of the distance and visited arrays.
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void dijkstra(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xd1d5);

  const std::size_t v = scaled(p, 100);  // vertices
  const std::size_t sources = scaled(p, 16);
  constexpr std::uint32_t kInf = 0x7fffffff;

  TracedArray<std::uint32_t> adj(rec, space, v * v, "adjacency");
  TracedArray<std::uint32_t> dist(rec, space, v, "dist");
  TracedArray<std::uint8_t> visited(rec, space, v, "visited");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < v * v; ++i) {
      adj.raw(i) = static_cast<std::uint32_t>(rng.below(100)) + 1;
    }
  }

  for (std::size_t s = 0; s < sources; ++s) {
    const std::size_t src = s % v;
    for (std::size_t i = 0; i < v; ++i) {
      dist.store(i, kInf);
      visited.store(i, 0);
    }
    dist.store(src, 0);

    for (std::size_t iter = 0; iter < v; ++iter) {
      // Select the unvisited vertex with the smallest distance (linear scan,
      // as the MiBench implementation does with its queue walk).
      std::size_t u = v;
      std::uint32_t best = kInf;
      for (std::size_t i = 0; i < v; ++i) {
        if (!visited.load(i) && dist.load(i) < best) {
          best = dist.load(i);
          u = i;
        }
      }
      if (u == v) break;
      visited.store(u, 1);
      const std::uint32_t du = dist.load(u);
      // Relax along row u of the adjacency matrix.
      for (std::size_t w = 0; w < v; ++w) {
        const std::uint32_t edge = adj.load(u * v + w);
        if (!visited.load(w) && du + edge < dist.load(w)) {
          dist.store(w, du + edge);
        }
      }
    }
  }
}

}  // namespace canu::mibench
