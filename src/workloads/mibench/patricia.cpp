// MiBench patricia: Patricia trie insertion and lookup of IPv4-style keys
// (the MiBench program builds a routing trie and queries it).
//
// Access pattern: pointer chasing through trie nodes scattered across the
// heap — each probe walks a data-dependent chain of node records, the
// canonical irregular-access benchmark.
#include "workloads/detail.hpp"
#include "workloads/mibench.hpp"

namespace canu::mibench {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

constexpr std::uint32_t kNil = 0xffffffffu;

/// Bit `b` (0 = MSB) of an IPv4-style key.
inline std::uint32_t key_bit(std::uint32_t key, std::uint32_t b) {
  return (key >> (31 - b)) & 1u;
}

}  // namespace

void patricia(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x9a72);

  const std::size_t inserts = scaled(p, 12'000);
  const std::size_t lookups = scaled(p, 24'000);
  const std::size_t cap = inserts + 2;

  // Node pool in structure-of-arrays form (a node record is 16 bytes in the
  // original program; here the four fields live in four parallel arrays).
  TracedArray<std::uint32_t> node_key(rec, space, cap, "node_key");
  TracedArray<std::int32_t> node_bit(rec, space, cap, "node_bit");
  TracedArray<std::uint32_t> node_left(rec, space, cap, "node_left");
  TracedArray<std::uint32_t> node_right(rec, space, cap, "node_right");

  std::uint32_t count = 0;
  std::uint32_t root = kNil;

  auto alloc_node = [&](std::uint32_t key, std::int32_t bit) {
    const std::uint32_t idx = count++;
    node_key.store(idx, key);
    node_bit.store(idx, bit);
    node_left.store(idx, idx);   // self-links, patricia-style
    node_right.store(idx, idx);
    return idx;
  };

  // Search: walk down until a node's bit index does not increase.
  auto search = [&](std::uint32_t key) -> std::uint32_t {
    if (root == kNil) return kNil;
    std::uint32_t parent = root;
    std::uint32_t cur = key_bit(key, 0) ? node_right.load(root)
                                        : node_left.load(root);
    std::int32_t parent_bit = node_bit.load(root);
    while (node_bit.load(cur) > parent_bit) {
      parent_bit = node_bit.load(cur);
      cur = key_bit(key, static_cast<std::uint32_t>(parent_bit))
                ? node_right.load(cur)
                : node_left.load(cur);
    }
    (void)parent;
    return cur;
  };

  auto insert = [&](std::uint32_t key) {
    if (root == kNil) {
      root = alloc_node(key, 0);
      return;
    }
    const std::uint32_t t = search(key);
    const std::uint32_t existing = node_key.load(t);
    if (existing == key) return;
    // First differing bit.
    std::int32_t diff_bit = 0;
    while (diff_bit < 32 &&
           key_bit(key, static_cast<std::uint32_t>(diff_bit)) ==
               key_bit(existing, static_cast<std::uint32_t>(diff_bit))) {
      ++diff_bit;
    }
    if (diff_bit >= 32) return;
    // Walk again to the insertion point.
    std::uint32_t parent = kNil;
    std::uint32_t cur = root;
    std::int32_t cur_bit = -1;
    for (;;) {
      const std::int32_t b = node_bit.load(cur);
      if (b <= cur_bit || b >= diff_bit) break;
      cur_bit = b;
      parent = cur;
      cur = key_bit(key, static_cast<std::uint32_t>(b)) ? node_right.load(cur)
                                                        : node_left.load(cur);
    }
    const std::uint32_t node = alloc_node(key, diff_bit);
    if (key_bit(key, static_cast<std::uint32_t>(diff_bit))) {
      node_right.store(node, node);
      node_left.store(node, cur);
    } else {
      node_left.store(node, node);
      node_right.store(node, cur);
    }
    if (parent == kNil) {
      root = node;
    } else if (key_bit(key, static_cast<std::uint32_t>(node_bit.load(parent)))) {
      node_right.store(parent, node);
    } else {
      node_left.store(parent, node);
    }
  };

  // Build phase: insert random /16-clustered addresses (routing tables
  // cluster by prefix, which shapes the trie's depth distribution).
  std::vector<std::uint32_t> keys;
  keys.reserve(inserts);
  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < inserts; ++i) {
      const std::uint32_t prefix = static_cast<std::uint32_t>(rng.below(4096));
      const std::uint32_t host = static_cast<std::uint32_t>(rng.next());
      keys.push_back((prefix << 20) | (host & 0xfffffu));
    }
  }
  for (std::uint32_t key : keys) insert(key);

  // Query phase: mix of hits (existing keys) and misses (random keys).
  for (std::size_t i = 0; i < lookups; ++i) {
    const std::uint32_t key = (i % 3 == 0)
                                  ? static_cast<std::uint32_t>(rng.next())
                                  : keys[rng.below(keys.size())];
    (void)search(key);
  }
}

}  // namespace canu::mibench
