// SPEC-like calculix: finite-element structural solver inner loop — element
// stiffness assembly (scatter-add into a CSR matrix) followed by Jacobi-
// preconditioned matrix-vector iterations.
//
// Access pattern: indexed scatter during assembly, then repeated CSR SpMV
// sweeps (sequential row pointers, indirect column gathers) — the
// irregular-gather signature of sparse FE codes.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void calculix(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xca1c);

  // 2-D structured grid; 5-point Laplacian stencil gives the CSR pattern.
  const std::size_t side = std::max<std::size_t>(
      16, static_cast<std::size_t>(100 * std::sqrt(std::max(0.0625, p.scale))));
  const std::size_t rows = side * side;
  const std::size_t max_nnz = rows * 5;
  const std::size_t iterations = 8;

  TracedArray<std::uint32_t> row_ptr(rec, space, rows + 1, "row_ptr");
  TracedArray<std::uint32_t> col_idx(rec, space, max_nnz, "col_idx");
  TracedArray<double> values(rec, space, max_nnz, "values");
  TracedArray<double> x(rec, space, rows, "x");
  TracedArray<double> y(rec, space, rows, "y");
  TracedArray<double> diag(rec, space, rows, "diag");
  TracedArray<double> rhs(rec, space, rows, "rhs");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < rows; ++i) {
      x.raw(i) = 0.0;
      rhs.raw(i) = rng.uniform();
    }
  }

  // Assembly phase (recorded): build the CSR Laplacian row by row.
  std::uint32_t nnz = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    row_ptr.store(r, nnz);
    const std::size_t ix = r % side, iy = r / side;
    const auto add = [&](std::size_t c, double v) {
      col_idx.store(nnz, static_cast<std::uint32_t>(c));
      values.store(nnz, v);
      ++nnz;
    };
    if (iy > 0) add(r - side, -1.0);
    if (ix > 0) add(r - 1, -1.0);
    add(r, 4.0);
    diag.store(r, 4.0);
    if (ix + 1 < side) add(r + 1, -1.0);
    if (iy + 1 < side) add(r + side, -1.0);
  }
  row_ptr.store(rows, nnz);

  // Jacobi iterations: x_{k+1} = x_k + D^{-1} (b - A x_k).
  for (std::size_t it = 0; it < iterations; ++it) {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::uint32_t begin = row_ptr.load(r);
      const std::uint32_t end = row_ptr.load(r + 1);
      double acc = 0.0;
      for (std::uint32_t k = begin; k < end; ++k) {
        acc += values.load(k) * x.load(col_idx.load(k));
      }
      y.store(r, acc);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      x.store(r, x.load(r) + (rhs.load(r) - y.load(r)) / diag.load(r));
    }
  }
}

}  // namespace canu::spec
