// SPEC-like hmmer: profile-HMM Viterbi dynamic programming (the P7Viterbi
// inner loop that dominates 456.hmmer).
//
// Access pattern: for each sequence position, a sequential sweep across all
// model states reading three previous-row DP arrays and the transition/
// emission tables — long unit-stride streams re-read every row.
#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void hmmer(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x4e12);

  const std::size_t m = scaled(p, 320);  // model states
  const std::size_t l = scaled(p, 280);  // sequence length
  constexpr std::int32_t kNegInf = -1'000'000'000;

  TracedArray<std::int32_t> match_prev(rec, space, m + 1, "match_prev");
  TracedArray<std::int32_t> match_cur(rec, space, m + 1, "match_cur");
  TracedArray<std::int32_t> insert_prev(rec, space, m + 1, "insert_prev");
  TracedArray<std::int32_t> insert_cur(rec, space, m + 1, "insert_cur");
  TracedArray<std::int32_t> delete_cur(rec, space, m + 1, "delete_cur");
  TracedArray<std::int32_t> tr_mm(rec, space, m + 1, "trans_mm");
  TracedArray<std::int32_t> tr_im(rec, space, m + 1, "trans_im");
  TracedArray<std::int32_t> tr_dm(rec, space, m + 1, "trans_dm");
  TracedArray<std::int32_t> tr_mi(rec, space, m + 1, "trans_mi");
  TracedArray<std::int32_t> tr_md(rec, space, m + 1, "trans_md");
  TracedArray<std::int32_t> emit(rec, space, 20 * (m + 1), "emissions");
  TracedArray<std::uint8_t> seq(rec, space, l, "sequence");

  {
    RecordingPause pause(rec);
    for (std::size_t k = 0; k <= m; ++k) {
      tr_mm.raw(k) = -static_cast<std::int32_t>(rng.below(100));
      tr_im.raw(k) = -static_cast<std::int32_t>(rng.below(400)) - 100;
      tr_dm.raw(k) = -static_cast<std::int32_t>(rng.below(400)) - 100;
      tr_mi.raw(k) = -static_cast<std::int32_t>(rng.below(600)) - 200;
      tr_md.raw(k) = -static_cast<std::int32_t>(rng.below(600)) - 200;
      match_prev.raw(k) = kNegInf;
      insert_prev.raw(k) = kNegInf;
    }
    for (std::size_t e = 0; e < 20 * (m + 1); ++e) {
      emit.raw(e) = -static_cast<std::int32_t>(rng.below(500));
    }
    for (std::size_t i = 0; i < l; ++i) {
      seq.raw(i) = static_cast<std::uint8_t>(rng.below(20));
    }
    match_prev.raw(0) = 0;
  }

  const auto max3 = [](std::int32_t a, std::int32_t b, std::int32_t c) {
    return std::max(a, std::max(b, c));
  };

  for (std::size_t i = 0; i < l; ++i) {
    const std::uint8_t residue = seq.load(i);
    match_cur.store(0, kNegInf);
    insert_cur.store(0, kNegInf);
    delete_cur.store(0, kNegInf);
    for (std::size_t k = 1; k <= m; ++k) {
      // Match state: best of M/I/D at k-1 plus transition, plus emission.
      const std::int32_t mscore =
          max3(match_prev.load(k - 1) + tr_mm.load(k - 1),
               insert_prev.load(k - 1) + tr_im.load(k - 1),
               delete_cur.load(k - 1) + tr_dm.load(k - 1)) +
          emit.load(static_cast<std::size_t>(residue) * (m + 1) + k);
      match_cur.store(k, mscore);
      // Insert state.
      insert_cur.store(k, std::max(match_prev.load(k) + tr_mi.load(k),
                                   insert_prev.load(k) - 50));
      // Delete state (within-row recurrence).
      delete_cur.store(k, std::max(match_cur.load(k - 1) + tr_md.load(k - 1),
                                   delete_cur.load(k - 1) - 50));
    }
    // Row swap: current becomes previous.
    for (std::size_t k = 0; k <= m; ++k) {
      match_prev.store(k, match_cur.load(k));
      insert_prev.store(k, insert_cur.load(k));
    }
  }
}

}  // namespace canu::spec
