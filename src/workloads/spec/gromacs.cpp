// SPEC-like gromacs: molecular-dynamics non-bonded force loop with cell
// lists.
//
// Access pattern: per particle, gather the positions of neighbours found via
// a spatial cell grid and scatter force updates back — spatially correlated
// but irregular pairs, the signature of MD kernels.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void gromacs(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x602a);

  const std::size_t n = scaled(p, 4'000);  // particles
  constexpr double kBox = 10.0;
  constexpr double kCut2 = 1.44;  // squared cutoff
  const std::size_t cells_per_dim = 8;
  const std::size_t n_cells = cells_per_dim * cells_per_dim * cells_per_dim;

  // Split coordinate arrays, as gromacs stores them.
  TracedArray<double> px(rec, space, n, "pos_x");
  TracedArray<double> py(rec, space, n, "pos_y");
  TracedArray<double> pz(rec, space, n, "pos_z");
  TracedArray<double> fx(rec, space, n, "force_x");
  TracedArray<double> fy(rec, space, n, "force_y");
  TracedArray<double> fz(rec, space, n, "force_z");
  TracedArray<std::uint32_t> cell_head(rec, space, n_cells, "cell_head");
  TracedArray<std::uint32_t> cell_next(rec, space, n, "cell_next");
  constexpr std::uint32_t kNil = 0xffffffffu;

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n; ++i) {
      px.raw(i) = rng.uniform() * kBox;
      py.raw(i) = rng.uniform() * kBox;
      pz.raw(i) = rng.uniform() * kBox;
      fx.raw(i) = fy.raw(i) = fz.raw(i) = 0.0;
    }
  }

  const auto cell_of = [&](double cx, double cy, double cz) {
    const auto clampc = [&](double v) {
      return std::min(cells_per_dim - 1,
                      static_cast<std::size_t>(v / kBox *
                                               static_cast<double>(cells_per_dim)));
    };
    return (clampc(cx) * cells_per_dim + clampc(cy)) * cells_per_dim +
           clampc(cz);
  };

  constexpr std::size_t kSteps = 2;
  for (std::size_t step = 0; step < kSteps; ++step) {
    // Build cell lists (linked lists threaded through cell_next).
    for (std::size_t c = 0; c < n_cells; ++c) cell_head.store(c, kNil);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = cell_of(px.load(i), py.load(i), pz.load(i));
      cell_next.store(i, cell_head.load(c));
      cell_head.store(c, static_cast<std::uint32_t>(i));
    }

    // Force loop: each particle against its own and +1-neighbour cells.
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = px.load(i), yi = py.load(i), zi = pz.load(i);
      double fxi = fx.load(i), fyi = fy.load(i), fzi = fz.load(i);
      const std::size_t ci = cell_of(xi, yi, zi);
      const std::size_t cx = ci / (cells_per_dim * cells_per_dim);
      const std::size_t cy = (ci / cells_per_dim) % cells_per_dim;
      const std::size_t cz = ci % cells_per_dim;
      for (std::size_t dx = 0; dx < 2; ++dx) {
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dz = 0; dz < 2; ++dz) {
            const std::size_t nc =
                ((cx + dx) % cells_per_dim * cells_per_dim +
                 (cy + dy) % cells_per_dim) *
                    cells_per_dim +
                (cz + dz) % cells_per_dim;
            for (std::uint32_t j = cell_head.load(nc); j != kNil;
                 j = cell_next.load(j)) {
              if (j <= i) continue;
              const double ddx = xi - px.load(j);
              const double ddy = yi - py.load(j);
              const double ddz = zi - pz.load(j);
              const double r2 = ddx * ddx + ddy * ddy + ddz * ddz;
              if (r2 > kCut2 || r2 == 0.0) continue;
              // Lennard-Jones force magnitude.
              const double inv2 = 1.0 / r2;
              const double inv6 = inv2 * inv2 * inv2;
              const double f = (48.0 * inv6 * inv6 - 24.0 * inv6) * inv2;
              fxi += f * ddx;
              fyi += f * ddy;
              fzi += f * ddz;
              fx.store(j, fx.load(j) - f * ddx);
              fy.store(j, fy.load(j) - f * ddy);
              fz.store(j, fz.load(j) - f * ddz);
            }
          }
        }
      }
      fx.store(i, fxi);
      fy.store(i, fyi);
      fz.store(i, fzi);
    }

    // Position integration (leapfrog step, forces as pseudo-velocities).
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = 1e-4;
      px.store(i, std::fmod(px.load(i) + scale * fx.load(i) + kBox, kBox));
      py.store(i, std::fmod(py.load(i) + scale * fy.load(i) + kBox, kBox));
      pz.store(i, std::fmod(pz.load(i) + scale * fz.load(i) + kBox, kBox));
    }
  }
}

}  // namespace canu::spec
