// SPEC-like sjeng: game-tree search with a Zobrist-hashed transposition
// table (458.sjeng's dominant memory behaviour).
//
// Access pattern: random-looking probes into a multi-megabit hash table
// keyed by incrementally updated Zobrist hashes, against a backdrop of tiny
// hot board/history arrays — near-uniform random access over a large
// footprint, the worst case for any indexing trick.
#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

// Transposition-table entry: packed key + score + depth (16 bytes).
struct TtPacked {
  std::uint64_t key;
  std::uint64_t data;
};

}  // namespace

void sjeng(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x53e6);

  const std::size_t tt_entries = 1u << 15;  // 512 KB of 16-byte entries
  const std::size_t probes = scaled(p, 120'000);

  TracedArray<std::uint64_t> zobrist(rec, space, 64 * 12, "zobrist_keys");
  TracedArray<std::uint8_t> board(rec, space, 64, "board");
  TracedArray<std::uint64_t> tt_key(rec, space, tt_entries, "tt_keys");
  TracedArray<std::uint64_t> tt_data(rec, space, tt_entries, "tt_data");
  TracedArray<std::uint32_t> history(rec, space, 64 * 64, "history_table");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < 64 * 12; ++i) zobrist.raw(i) = rng.next();
    for (std::size_t i = 0; i < 64; ++i) {
      board.raw(i) = static_cast<std::uint8_t>(rng.below(13));  // 0 = empty
    }
    for (std::size_t i = 0; i < tt_entries; ++i) {
      tt_key.raw(i) = 0;
      tt_data.raw(i) = 0;
    }
  }

  // Compute the initial hash (a recorded scan of the board).
  std::uint64_t hash = 0;
  for (std::size_t sq = 0; sq < 64; ++sq) {
    const std::uint8_t piece = board.load(sq);
    if (piece) hash ^= zobrist.load((piece - 1) * 64 + sq);
  }

  // Search loop: make a pseudo-move (incremental hash update), probe the
  // transposition table, update history on "cutoffs", then unmake the move
  // — exactly the make/probe/unmake rhythm of a real alpha-beta search, so
  // the board never drains of pieces and the hash keeps full entropy.
  for (std::size_t n = 0; n < probes; ++n) {
    // Pick a random occupied square and a destination.
    const std::size_t from = rng.below(64);
    const std::size_t to = rng.below(64);
    const std::uint8_t piece = board.load(from);
    const std::uint64_t saved_hash = hash;
    std::uint8_t captured = 0;
    if (piece && to != from) {
      hash ^= zobrist.load((piece - 1) * 64 + from);
      hash ^= zobrist.load((piece - 1) * 64 + to);
      captured = board.load(to);
      if (captured) hash ^= zobrist.load((captured - 1) * 64 + to);
      board.store(to, piece);
      board.store(from, 0);
    }

    // Transposition-table probe (always-replace policy, as sjeng's default).
    const std::size_t slot = hash & (tt_entries - 1);
    const std::uint64_t stored = tt_key.load(slot);
    if (stored == hash) {
      (void)tt_data.load(slot);  // TT hit: read the stored bound
    } else {
      tt_key.store(slot, hash);
      tt_data.store(slot, (hash >> 16) ^ n);
    }

    // History-heuristic update on a simulated beta cutoff.
    if (rng.below(4) == 0) {
      const std::size_t h = from * 64 + to;
      history.store(h, history.load(h) + 1);
    }

    // Unmake the move (restore board and hash).
    if (piece && to != from) {
      board.store(from, piece);
      board.store(to, captured);
      hash = saved_hash;
    }
  }
}

}  // namespace canu::spec
