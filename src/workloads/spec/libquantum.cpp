// SPEC-like libquantum: gate application over a quantum register's
// amplitude vector.
//
// Access pattern: a Hadamard on qubit k touches amplitude pairs (i, i ^ 2^k)
// — pure power-of-two-strided pair accesses whose stride grows gate by gate.
// Like fft, this folds whole passes onto few cache sets, and is one of the
// benchmarks where alternative index functions shine.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void libquantum(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x11b0);

  // Register width scales logarithmically with the multiplier.
  std::size_t qubits = 13;
  double s = p.scale;
  while (s >= 2.0 && qubits < 22) {
    ++qubits;
    s /= 2.0;
  }
  while (s <= 0.5 && qubits > 8) {
    --qubits;
    s *= 2.0;
  }
  const std::size_t n = std::size_t{1} << qubits;

  TracedArray<double> amp_re(rec, space, n, "amp_real");
  TracedArray<double> amp_im(rec, space, n, "amp_imag");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < n; ++i) {
      amp_re.raw(i) = (i == 0) ? 1.0 : 0.0;
      amp_im.raw(i) = 0.0;
    }
  }

  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);

  const auto hadamard = [&](std::size_t q) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t i = 0; i < n; ++i) {
      if (i & stride) continue;
      const std::size_t j = i | stride;
      const double ar = amp_re.load(i), ai = amp_im.load(i);
      const double br = amp_re.load(j), bi = amp_im.load(j);
      amp_re.store(i, (ar + br) * inv_sqrt2);
      amp_im.store(i, (ai + bi) * inv_sqrt2);
      amp_re.store(j, (ar - br) * inv_sqrt2);
      amp_im.store(j, (ai - bi) * inv_sqrt2);
    }
  };

  const auto cnot = [&](std::size_t control, std::size_t target) {
    const std::size_t cbit = std::size_t{1} << control;
    const std::size_t tbit = std::size_t{1} << target;
    for (std::size_t i = 0; i < n; ++i) {
      if ((i & cbit) && !(i & tbit)) {
        const std::size_t j = i | tbit;
        const double tr = amp_re.load(i), ti = amp_im.load(i);
        amp_re.store(i, amp_re.load(j));
        amp_im.store(i, amp_im.load(j));
        amp_re.store(j, tr);
        amp_im.store(j, ti);
      }
    }
  };

  // A Shor-like circuit sketch: Hadamard wall, entangling ladder, second
  // Hadamard wall (the access pattern, not the algorithm, is the point).
  for (std::size_t q = 0; q < qubits; ++q) hadamard(q);
  for (std::size_t q = 0; q + 1 < qubits; ++q) cnot(q, q + 1);
  for (std::size_t q = 0; q < qubits; ++q) hadamard(qubits - 1 - q);
  (void)rng;
}

}  // namespace canu::spec
