// SPEC-like astar: A* search on an obstacle grid.
//
// Access pattern: a binary-heap open list (log-depth strided accesses into a
// growing array), random-ish neighbour probes into the cost/closed grids,
// and g-score updates — the mix of regular and data-driven accesses that
// characterizes 473.astar.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void astar(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xa57a);

  const std::size_t side = std::max<std::size_t>(
      32, static_cast<std::size_t>(180 * std::sqrt(std::max(0.0625, p.scale))));
  const std::size_t cells = side * side;
  constexpr std::uint32_t kInf = 0x7fffffffu;

  TracedArray<std::uint8_t> blocked(rec, space, cells, "obstacles");
  TracedArray<std::uint32_t> gscore(rec, space, cells, "g_score");
  TracedArray<std::uint8_t> closed(rec, space, cells, "closed");
  TracedArray<std::uint32_t> heap(rec, space, cells * 2, "open_heap");
  TracedArray<std::uint32_t> heap_key(rec, space, cells * 2, "open_keys");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < cells; ++i) {
      blocked.raw(i) = rng.below(100) < 28 ? 1 : 0;  // ~28% obstacle density
      gscore.raw(i) = kInf;
      closed.raw(i) = 0;
    }
  }

  std::size_t heap_size = 0;
  auto heap_push = [&](std::uint32_t cell, std::uint32_t key) {
    std::size_t i = heap_size++;
    heap.store(i, cell);
    heap_key.store(i, key);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_key.load(parent) <= heap_key.load(i)) break;
      const std::uint32_t tc = heap.load(parent), tk = heap_key.load(parent);
      heap.store(parent, heap.load(i));
      heap_key.store(parent, heap_key.load(i));
      heap.store(i, tc);
      heap_key.store(i, tk);
      i = parent;
    }
  };
  auto heap_pop = [&]() -> std::uint32_t {
    const std::uint32_t top = heap.load(0);
    --heap_size;
    heap.store(0, heap.load(heap_size));
    heap_key.store(0, heap_key.load(heap_size));
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      std::size_t smallest = i;
      if (l < heap_size && heap_key.load(l) < heap_key.load(smallest)) smallest = l;
      if (r < heap_size && heap_key.load(r) < heap_key.load(smallest)) smallest = r;
      if (smallest == i) break;
      const std::uint32_t tc = heap.load(i), tk = heap_key.load(i);
      heap.store(i, heap.load(smallest));
      heap_key.store(i, heap_key.load(smallest));
      heap.store(smallest, tc);
      heap_key.store(smallest, tk);
      i = smallest;
    }
    return top;
  };

  // The SPEC benchmark runs a stream of path queries over one map; we do
  // the same with random unblocked start/goal pairs. Each query begins with
  // recorded sweeps resetting the per-query arrays (the real program
  // reinitializes its waymaps too).
  const std::size_t queries = std::max<std::size_t>(2, scaled(p, 8) / 2);
  for (std::size_t q = 0; q < queries; ++q) {
    std::size_t start = rng.below(cells);
    while (blocked.raw(start)) start = rng.below(cells);
    std::size_t goal = rng.below(cells);
    while (blocked.raw(goal) || goal == start) goal = rng.below(cells);
    const std::size_t gx = goal % side, gy = goal / side;
    const auto heuristic = [&](std::size_t cell) -> std::uint32_t {
      const std::size_t x = cell % side, y = cell / side;
      const std::size_t dx = x > gx ? x - gx : gx - x;
      const std::size_t dy = y > gy ? y - gy : gy - y;
      return static_cast<std::uint32_t>(dx + dy);
    };

    for (std::size_t i = 0; i < cells; ++i) {
      gscore.store(i, kInf);
      closed.store(i, 0);
    }
    heap_size = 0;
    gscore.store(start, 0);
    heap_push(static_cast<std::uint32_t>(start), heuristic(start));
    while (heap_size > 0) {
      const std::uint32_t cur = heap_pop();
      if (cur == goal) break;
      if (closed.load(cur)) continue;
      closed.store(cur, 1);
      const std::size_t x = cur % side, y = cur / side;
      const std::uint32_t g = gscore.load(cur);
      const long long dx[4] = {1, -1, 0, 0};
      const long long dy[4] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        const long long nx = static_cast<long long>(x) + dx[d];
        const long long ny = static_cast<long long>(y) + dy[d];
        if (nx < 0 || ny < 0 || nx >= static_cast<long long>(side) ||
            ny >= static_cast<long long>(side)) {
          continue;
        }
        const std::size_t n = static_cast<std::size_t>(ny) * side +
                              static_cast<std::size_t>(nx);
        if (blocked.load(n) || closed.load(n)) continue;
        const std::uint32_t ng = g + 1;
        if (ng < gscore.load(n)) {
          gscore.store(n, ng);
          heap_push(static_cast<std::uint32_t>(n), ng + heuristic(n));
        }
      }
    }
  }
}

}  // namespace canu::spec
