// SPEC-like namd: molecular dynamics with precomputed pair lists
// (444.namd's selfComputes/pairComputes iterate explicit neighbour lists).
//
// Access pattern: a long indirection list driving paired gathers into an
// array-of-structures particle layout (position + force interleaved, unlike
// the gromacs kernel's split arrays) — the same physics, a different memory
// layout, hence a different per-set pressure signature.
#include <cmath>

#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

// AoS record: x, y, z, fx, fy, fz packed per atom.
constexpr std::size_t kFields = 6;

}  // namespace

void namd(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x4a3d);

  const std::size_t atoms = scaled(p, 3'000);
  const std::size_t pairs_per_atom = 24;
  const std::size_t n_pairs = atoms * pairs_per_atom;
  constexpr double kBox = 12.0;

  TracedArray<double> atom(rec, space, atoms * kFields, "atoms_aos");
  TracedArray<std::uint32_t> pair_i(rec, space, n_pairs, "pairlist_i");
  TracedArray<std::uint32_t> pair_j(rec, space, n_pairs, "pairlist_j");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < atoms; ++i) {
      atom.raw(i * kFields + 0) = rng.uniform() * kBox;
      atom.raw(i * kFields + 1) = rng.uniform() * kBox;
      atom.raw(i * kFields + 2) = rng.uniform() * kBox;
      atom.raw(i * kFields + 3) = 0.0;
      atom.raw(i * kFields + 4) = 0.0;
      atom.raw(i * kFields + 5) = 0.0;
    }
    // Pair lists are spatially local in real runs: neighbours are mostly
    // nearby indexes (atoms are sorted by cell), with a random remainder.
    std::size_t pl = 0;
    for (std::size_t i = 0; i < atoms; ++i) {
      for (std::size_t k = 0; k < pairs_per_atom; ++k) {
        std::size_t j;
        if (rng.below(100) < 80) {
          j = std::min(atoms - 1, i + 1 + rng.below(32));
        } else {
          j = rng.below(atoms);
        }
        pair_i.raw(pl) = static_cast<std::uint32_t>(i);
        pair_j.raw(pl) = static_cast<std::uint32_t>(j == i ? (i + 1) % atoms : j);
        ++pl;
      }
    }
  }

  constexpr std::size_t kSteps = 2;
  for (std::size_t step = 0; step < kSteps; ++step) {
    for (std::size_t pr = 0; pr < n_pairs; ++pr) {
      const std::size_t i = pair_i.load(pr);
      const std::size_t j = pair_j.load(pr);
      const double dx = atom.load(i * kFields) - atom.load(j * kFields);
      const double dy =
          atom.load(i * kFields + 1) - atom.load(j * kFields + 1);
      const double dz =
          atom.load(i * kFields + 2) - atom.load(j * kFields + 2);
      const double r2 = dx * dx + dy * dy + dz * dz + 0.01;
      if (r2 > 2.25) continue;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double f = (48.0 * inv6 * inv6 - 24.0 * inv6) * inv2;
      atom.store(i * kFields + 3, atom.load(i * kFields + 3) + f * dx);
      atom.store(i * kFields + 4, atom.load(i * kFields + 4) + f * dy);
      atom.store(i * kFields + 5, atom.load(i * kFields + 5) + f * dz);
      atom.store(j * kFields + 3, atom.load(j * kFields + 3) - f * dx);
      atom.store(j * kFields + 4, atom.load(j * kFields + 4) - f * dy);
      atom.store(j * kFields + 5, atom.load(j * kFields + 5) - f * dz);
    }
    // Integration sweep.
    for (std::size_t i = 0; i < atoms; ++i) {
      for (std::size_t d = 0; d < 3; ++d) {
        const double x = atom.load(i * kFields + d) +
                         1e-5 * atom.load(i * kFields + 3 + d);
        atom.store(i * kFields + d, std::fmod(x + kBox, kBox));
      }
    }
  }
}

}  // namespace canu::spec
