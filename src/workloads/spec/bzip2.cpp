// SPEC-like bzip2: block-sorting compression front end — counting sort of
// rotations by leading bytes, move-to-front coding and run-length output.
//
// Access pattern: multiple full passes over a ~100 KB block at byte
// granularity, a 256-bucket histogram/scatter phase with data-dependent
// targets, and the MTF table's shifting reads — bursty, re-walking streams.
#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void bzip2(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0xb21b);

  const std::size_t n = scaled(p, 100'000);
  TracedArray<std::uint8_t> block(rec, space, n, "block");
  TracedArray<std::uint32_t> counts(rec, space, 256, "bucket_counts");
  TracedArray<std::uint32_t> starts(rec, space, 257, "bucket_starts");
  TracedArray<std::uint32_t> order(rec, space, n, "rotation_order");
  TracedArray<std::uint8_t> mtf_table(rec, space, 256, "mtf_table");
  TracedArray<std::uint8_t> output(rec, space, n + 16, "compressed");

  {
    RecordingPause pause(rec);
    // Text-like input: skewed byte distribution with runs.
    std::uint8_t prev = 'e';
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.below(100) < 35) {
        block.raw(i) = prev;  // runs, as natural text has
      } else {
        static const char alphabet[] = " etaoinshrdlucmfwypvbgkjqxz.,\n";
        prev = static_cast<std::uint8_t>(
            alphabet[rng.below(sizeof(alphabet) - 1)]);
        block.raw(i) = prev;
      }
    }
  }

  // Pass 1: histogram of leading bytes.
  for (std::size_t i = 0; i < 256; ++i) counts.store(i, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = block.load(i);
    counts.store(b, counts.load(b) + 1);
  }
  // Prefix sums into bucket starts.
  std::uint32_t running = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    starts.store(i, running);
    running += counts.load(i);
  }
  starts.store(256, running);

  // Pass 2: scatter rotation indexes into their first-byte buckets (the
  // radix step that seeds bzip2's rotation sort).
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = block.load(i);
    const std::uint32_t pos = starts.load(b);
    order.store(pos, static_cast<std::uint32_t>(i));
    starts.store(b, pos + 1);
  }

  // Pass 3: refine each bucket by second byte (insertion sort on the
  // second character, bounded — stands in for the full rotation sort).
  std::uint32_t bucket_start = 0;
  for (std::size_t b = 0; b < 256; ++b) {
    const std::uint32_t bucket_end = bucket_start + counts.load(b);
    const std::uint32_t limit = std::min<std::uint32_t>(
        bucket_end, bucket_start + 64);  // bounded refinement
    for (std::uint32_t i = bucket_start + 1; i < limit; ++i) {
      const std::uint32_t rot = order.load(i);
      const std::uint8_t key = block.load((rot + 1) % n);
      std::uint32_t j = i;
      while (j > bucket_start &&
             block.load((order.load(j - 1) + 1) % n) > key) {
        order.store(j, order.load(j - 1));
        --j;
      }
      order.store(j, rot);
    }
    bucket_start = bucket_end;
  }

  // Pass 4: last-column extraction + move-to-front + RLE write.
  for (std::size_t i = 0; i < 256; ++i) {
    mtf_table.store(i, static_cast<std::uint8_t>(i));
  }
  std::size_t out_pos = 0;
  std::uint8_t run_char = 0;
  std::uint32_t run_len = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t rot = order.load(i);
    const std::uint8_t last = block.load((rot + n - 1) % n);
    // Move-to-front: find the symbol's rank, shift the prefix down.
    std::uint8_t rank = 0;
    while (mtf_table.load(rank) != last) ++rank;
    for (std::uint8_t r = rank; r > 0; --r) {
      mtf_table.store(r, mtf_table.load(r - 1));
    }
    mtf_table.store(0, last);
    // RLE of ranks.
    if (rank == run_char && run_len < 255) {
      ++run_len;
    } else {
      if (out_pos + 2 < n) {
        output.store(out_pos++, run_char);
        output.store(out_pos++, static_cast<std::uint8_t>(run_len));
      }
      run_char = rank;
      run_len = 1;
    }
  }
}

}  // namespace canu::spec
