// SPEC-like milc: 4-D lattice QCD link update — SU(3)-style 3x3 complex
// matrix multiplies between each site and its forward neighbours.
//
// Access pattern: sweeps over a 4-D lattice where the neighbour in each
// dimension sits at a different power-of-two-ish stride (x: 1 site, y: Lx,
// z: Lx*Ly, t: Lx*Ly*Lz sites of 144 bytes each) — multi-stride streaming
// over a footprint far larger than L1.
#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

namespace {

constexpr std::size_t kMat = 18;  // 3x3 complex doubles per link matrix

}  // namespace

void milc(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x311c);

  // Lattice side scales with the 4th root of the multiplier.
  std::size_t side = 6;
  double s = p.scale;
  while (s >= 4.0 && side < 12) {
    side += 2;
    s /= 4.0;
  }
  while (s <= 0.25 && side > 4) {
    side -= 2;
    s *= 4.0;
  }
  const std::size_t sites = side * side * side * side;

  TracedArray<double> links(rec, space, sites * kMat, "gauge_links");
  TracedArray<double> staples(rec, space, sites * kMat, "staples");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < sites * kMat; ++i) {
      links.raw(i) = rng.uniform() - 0.5;
      staples.raw(i) = 0.0;
    }
  }

  const std::size_t stride[4] = {1, side, side * side, side * side * side};

  // 3x3 complex multiply C += A * B over the instrumented arrays.
  const auto mat_mul_acc = [&](std::size_t a_base, std::size_t b_base,
                               std::size_t c_base) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        double cr = staples.load(c_base + (i * 3 + j) * 2);
        double ci = staples.load(c_base + (i * 3 + j) * 2 + 1);
        for (std::size_t k = 0; k < 3; ++k) {
          const double ar = links.load(a_base + (i * 3 + k) * 2);
          const double ai = links.load(a_base + (i * 3 + k) * 2 + 1);
          const double br = links.load(b_base + (k * 3 + j) * 2);
          const double bi = links.load(b_base + (k * 3 + j) * 2 + 1);
          cr += ar * br - ai * bi;
          ci += ar * bi + ai * br;
        }
        staples.store(c_base + (i * 3 + j) * 2, cr);
        staples.store(c_base + (i * 3 + j) * 2 + 1, ci);
      }
    }
  };

  // One staple-accumulation sweep per dimension.
  for (std::size_t mu = 0; mu < 4; ++mu) {
    for (std::size_t site = 0; site < sites; ++site) {
      const std::size_t fwd = (site + stride[mu]) % sites;
      mat_mul_acc(site * kMat, fwd * kMat, site * kMat);
    }
  }
}

}  // namespace canu::spec
