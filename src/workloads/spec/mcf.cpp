// SPEC-like mcf: minimum-cost-flow network simplex pricing and tree walks.
//
// Access pattern: full sweeps over the arc arrays reading the endpoint
// nodes' potentials (two dependent random-ish gathers per arc), followed by
// parent-pointer chasing up the spanning tree — the cache-hostile pointer
// workload 429.mcf is famous for.
#include "workloads/detail.hpp"
#include "workloads/spec.hpp"

namespace canu::spec {

using workloads_detail::make_rng;
using workloads_detail::make_space;
using workloads_detail::scaled;

void mcf(TraceSink& sink, const WorkloadParams& p) {
  TraceRecorder rec(sink);
  AddressSpace space = make_space(p);
  Xoshiro256 rng = make_rng(p, 0x3cf);

  const std::size_t nodes = scaled(p, 12'000);
  const std::size_t arcs = nodes * 4;
  const std::size_t iterations = 6;

  TracedArray<std::int64_t> potential(rec, space, nodes, "node_potential");
  TracedArray<std::uint32_t> parent(rec, space, nodes, "node_parent");
  TracedArray<std::uint32_t> depth(rec, space, nodes, "node_depth");
  TracedArray<std::uint32_t> arc_from(rec, space, arcs, "arc_from");
  TracedArray<std::uint32_t> arc_to(rec, space, arcs, "arc_to");
  TracedArray<std::int32_t> arc_cost(rec, space, arcs, "arc_cost");
  TracedArray<std::int32_t> arc_flow(rec, space, arcs, "arc_flow");

  {
    RecordingPause pause(rec);
    for (std::size_t i = 0; i < nodes; ++i) {
      potential.raw(i) = static_cast<std::int64_t>(rng.below(10'000));
      // Random spanning forest with shallow-ish depths.
      parent.raw(i) = i == 0 ? 0 : static_cast<std::uint32_t>(rng.below(i));
      depth.raw(i) = 0;
    }
    for (std::size_t a = 0; a < arcs; ++a) {
      arc_from.raw(a) = static_cast<std::uint32_t>(rng.below(nodes));
      arc_to.raw(a) = static_cast<std::uint32_t>(rng.below(nodes));
      arc_cost.raw(a) = static_cast<std::int32_t>(rng.below(1000)) - 500;
      arc_flow.raw(a) = 0;
    }
  }

  for (std::size_t it = 0; it < iterations; ++it) {
    // Pricing sweep: find the most negative reduced cost arc.
    std::size_t best_arc = 0;
    std::int64_t best_reduced = 0;
    for (std::size_t a = 0; a < arcs; ++a) {
      const std::uint32_t u = arc_from.load(a);
      const std::uint32_t v = arc_to.load(a);
      const std::int64_t reduced =
          arc_cost.load(a) + potential.load(u) - potential.load(v);
      if (reduced < best_reduced) {
        best_reduced = reduced;
        best_arc = a;
      }
    }
    if (best_reduced == 0) break;

    // Pivot: walk both endpoints up the tree to (approximately) their join,
    // augmenting flow along the way.
    std::uint32_t u = arc_from.load(best_arc);
    std::uint32_t v = arc_to.load(best_arc);
    arc_flow.store(best_arc, arc_flow.load(best_arc) + 1);
    for (std::size_t hops = 0; hops < 64 && u != v; ++hops) {
      if (u > v) {
        u = parent.load(u);
      } else {
        v = parent.load(v);
      }
    }
    // Potential update over a contiguous block of nodes (the subtree cut
    // in the real code; approximated by the pivot node's neighbourhood).
    const std::size_t start = arc_to.load(best_arc) % nodes;
    const std::size_t span = std::min<std::size_t>(nodes - start, 2'048);
    for (std::size_t i = start; i < start + span; ++i) {
      potential.store(i, potential.load(i) + best_reduced);
    }
  }
}

}  // namespace canu::spec
