#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "workloads/mibench.hpp"
#include "workloads/spec.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/workload.hpp"

namespace canu {

namespace {

std::vector<WorkloadInfo> build_registry() {
  std::vector<WorkloadInfo> w;
  const auto add = [&w](std::string name, std::string suite,
                        std::string description,
                        void (*fn)(TraceSink&, const WorkloadParams&)) {
    w.push_back(WorkloadInfo{std::move(name), std::move(suite),
                             std::move(description), fn});
  };

  // MiBench (paper Figures 4, 6, 7, 9-12).
  add("adpcm", "mibench", "IMA ADPCM speech encoding", &mibench::adpcm);
  add("basicmath", "mibench", "cubic roots, isqrt, angle conversion",
      &mibench::basicmath);
  add("bitcount", "mibench", "bit-count algorithm battery",
      &mibench::bitcount);
  add("crc", "mibench", "CRC-32 over a byte buffer", &mibench::crc);
  add("dijkstra", "mibench", "adjacency-matrix shortest paths",
      &mibench::dijkstra);
  add("fft", "mibench", "iterative radix-2 FFT + inverse", &mibench::fft);
  add("patricia", "mibench", "Patricia trie routing lookups",
      &mibench::patricia);
  add("qsort", "mibench", "quicksort of string records", &mibench::qsort);
  add("rijndael", "mibench", "AES-128 T-table encryption",
      &mibench::rijndael);
  add("sha", "mibench", "SHA-1 digest of a buffer", &mibench::sha);
  add("susan", "mibench", "SUSAN image smoothing stencil", &mibench::susan);

  // Additional MiBench programs, beyond the 11 the paper's figures use.
  add("stringsearch", "mibench_extra", "Horspool multi-pattern search",
      &mibench::stringsearch);
  add("blowfish", "mibench_extra", "Blowfish CBC encryption",
      &mibench::blowfish);
  add("gsm", "mibench_extra", "GSM LPC/LTP speech encoding", &mibench::gsm);
  add("jpeg", "mibench_extra", "JPEG 8x8 DCT + quantization + RLE",
      &mibench::jpeg);

  // SPEC 2006-like (paper Figure 8).
  add("astar", "spec2006", "grid A* path search", &spec::astar);
  add("bzip2", "spec2006", "block-sort + MTF + RLE compression",
      &spec::bzip2);
  add("calculix", "spec2006", "FE assembly + CSR Jacobi sweeps",
      &spec::calculix);
  add("gromacs", "spec2006", "cell-list molecular dynamics",
      &spec::gromacs);
  add("hmmer", "spec2006", "profile-HMM Viterbi DP", &spec::hmmer);
  add("libquantum", "spec2006", "quantum register gate strides",
      &spec::libquantum);
  add("mcf", "spec2006", "network-simplex pricing + tree walks",
      &spec::mcf);
  add("milc", "spec2006", "4-D lattice link update", &spec::milc);
  add("namd", "spec2006", "pairlist molecular dynamics (AoS)", &spec::namd);
  add("sjeng", "spec2006", "game-tree search + transposition table",
      &spec::sjeng);

  // Synthetic (tests and ablations).
  add("synthetic_uniform", "synthetic", "uniform random lines",
      &synthetic::uniform);
  add("synthetic_hotset", "synthetic", "90/10 hot-set skew",
      &synthetic::hotset);
  add("synthetic_strided", "synthetic", "cache-size power-of-two stride",
      &synthetic::strided);
  add("synthetic_gaussian", "synthetic", "drifting gaussian locality",
      &synthetic::gaussian);
  add("synthetic_sequential", "synthetic", "pure sequential sweep",
      &synthetic::sequential);

  std::sort(w.begin(), w.end(), [](const WorkloadInfo& a, const WorkloadInfo& b) {
    return std::tie(a.suite, a.name) < std::tie(b.suite, b.name);
  });
  return w;
}

}  // namespace

const std::vector<WorkloadInfo>& all_workloads() {
  static const std::vector<WorkloadInfo> registry = build_registry();
  return registry;
}

const WorkloadInfo* find_workload(const std::string& name) {
  for (const WorkloadInfo& w : all_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

Trace generate_workload(const std::string& name, const WorkloadParams& params) {
  Trace trace(name);
  generate_workload_into(name, trace, params);
  return trace;
}

namespace {

/// Pass-through sink that tallies references for the metrics registry.
class CountingSink final : public TraceSink {
 public:
  explicit CountingSink(TraceSink& inner) : inner_(&inner) {}
  void write(std::span<const MemRef> refs) override {
    total_ += refs.size();
    inner_->write(refs);
  }
  std::uint64_t total() const noexcept { return total_; }

 private:
  TraceSink* inner_;
  std::uint64_t total_ = 0;
};

}  // namespace

void generate_workload_into(const std::string& name, TraceSink& sink,
                            const WorkloadParams& params) {
  const WorkloadInfo* info = find_workload(name);
  CANU_CHECK_MSG(info != nullptr, "unknown workload: " << name);
  if (obs::metrics_on() || obs::spans_on()) {
    obs::Span span("generate", "generate " + name);
    CountingSink counting(sink);
    info->generate(counting, params);
    obs::count(obs::Counter::kTraceRecordsGenerated, counting.total());
    return;
  }
  info->generate(sink, params);
}

std::string workload_cache_key(const std::string& name,
                               const WorkloadParams& params) {
  char scale[32];
  std::snprintf(scale, sizeof scale, "%.17g", params.scale);
  std::ostringstream key;
  key << name << "-s" << params.seed << "-x" << scale << "-b" << std::hex
      << params.address_base;
  return key.str();
}

Trace cached_workload_trace(const std::string& name,
                            const WorkloadParams& params,
                            const TraceCache* cache) {
  if (cache == nullptr) return generate_workload(name, params);
  const std::string key = workload_cache_key(name, params);
  Trace trace(name);
  if (cache->load(key, trace)) return trace;
  generate_workload_into(name, trace, params);
  cache->store(trace, key);
  return trace;
}

std::vector<std::string> workload_names(const std::string& suite) {
  std::vector<std::string> names;
  for (const WorkloadInfo& w : all_workloads()) {
    if (suite.empty() || w.suite == suite) names.push_back(w.name);
  }
  return names;
}

const std::vector<std::string>& paper_mibench_set() {
  static const std::vector<std::string> set = {
      "adpcm", "basicmath", "bitcount", "crc",      "dijkstra", "fft",
      "patricia", "qsort",  "rijndael", "sha",      "susan"};
  return set;
}

const std::vector<std::string>& paper_spec_set() {
  static const std::vector<std::string> set = {
      "astar", "bzip2",      "calculix", "gromacs", "hmmer",
      "libquantum", "mcf",   "milc",     "namd",    "sjeng"};
  return set;
}

}  // namespace canu
