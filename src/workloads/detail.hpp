// Shared helpers for workload kernels (internal to src/workloads).
#pragma once

#include <algorithm>
#include <cstdint>

#include "trace/address_space.hpp"
#include "trace/traced_memory.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace canu::workloads_detail {

/// Scale an element count by the workload's size multiplier (min 16).
inline std::size_t scaled(const WorkloadParams& p, std::size_t base) {
  const double v = static_cast<double>(base) * p.scale;
  return std::max<std::size_t>(16, static_cast<std::size_t>(v));
}

/// Address space rooted at the workload's configured base.
inline AddressSpace make_space(const WorkloadParams& p) {
  AddressSpace::Options opt;
  opt.base = p.address_base;
  return AddressSpace(opt);
}

/// Per-kernel RNG stream: decorrelates kernels sharing one seed.
inline Xoshiro256 make_rng(const WorkloadParams& p, std::uint64_t salt) {
  return Xoshiro256(p.seed * 0x9e3779b97f4a7c15ULL + salt);
}

}  // namespace canu::workloads_detail
