// MiBench-like instrumented kernels (DESIGN.md §1): each function executes
// the algorithm its MiBench namesake is built around, against instrumented
// arrays, and returns the recorded data-reference trace.
#pragma once

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace canu::mibench {

void adpcm(TraceSink& sink, const WorkloadParams& p);      ///< ADPCM speech encode/decode
void basicmath(TraceSink& sink, const WorkloadParams& p);  ///< cubic roots, isqrt, deg->rad
void bitcount(TraceSink& sink, const WorkloadParams& p);   ///< bit-count algorithm battery
void crc(TraceSink& sink, const WorkloadParams& p);        ///< CRC-32 over a file buffer
void dijkstra(TraceSink& sink, const WorkloadParams& p);   ///< adjacency-matrix Dijkstra
void fft(TraceSink& sink, const WorkloadParams& p);        ///< iterative radix-2 FFT
void patricia(TraceSink& sink, const WorkloadParams& p);   ///< Patricia trie of IPv4 routes
void qsort(TraceSink& sink, const WorkloadParams& p);      ///< quicksort of string keys
void rijndael(TraceSink& sink, const WorkloadParams& p);   ///< AES-128 T-table encryption
void sha(TraceSink& sink, const WorkloadParams& p);        ///< SHA-1 digest of a buffer
void susan(TraceSink& sink, const WorkloadParams& p);      ///< SUSAN image smoothing stencil

// Additional MiBench programs beyond the paper's evaluated set (suite
// "mibench_extra" in the registry).
void stringsearch(TraceSink& sink, const WorkloadParams& p);  ///< Horspool pattern search
void blowfish(TraceSink& sink, const WorkloadParams& p);      ///< Blowfish CBC encryption
void gsm(TraceSink& sink, const WorkloadParams& p);           ///< GSM LPC/LTP speech encode
void jpeg(TraceSink& sink, const WorkloadParams& p);          ///< 8x8 DCT + quant + RLE

}  // namespace canu::mibench
