// MiBench-like instrumented kernels (DESIGN.md §1): each function executes
// the algorithm its MiBench namesake is built around, against instrumented
// arrays, and returns the recorded data-reference trace.
#pragma once

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace canu::mibench {

Trace adpcm(const WorkloadParams& p);      ///< ADPCM speech encode/decode
Trace basicmath(const WorkloadParams& p);  ///< cubic roots, isqrt, deg->rad
Trace bitcount(const WorkloadParams& p);   ///< bit-count algorithm battery
Trace crc(const WorkloadParams& p);        ///< CRC-32 over a file buffer
Trace dijkstra(const WorkloadParams& p);   ///< adjacency-matrix Dijkstra
Trace fft(const WorkloadParams& p);        ///< iterative radix-2 FFT
Trace patricia(const WorkloadParams& p);   ///< Patricia trie of IPv4 routes
Trace qsort(const WorkloadParams& p);      ///< quicksort of string keys
Trace rijndael(const WorkloadParams& p);   ///< AES-128 T-table encryption
Trace sha(const WorkloadParams& p);        ///< SHA-1 digest of a buffer
Trace susan(const WorkloadParams& p);      ///< SUSAN image smoothing stencil

// Additional MiBench programs beyond the paper's evaluated set (suite
// "mibench_extra" in the registry).
Trace stringsearch(const WorkloadParams& p);  ///< Horspool pattern search
Trace blowfish(const WorkloadParams& p);      ///< Blowfish CBC encryption
Trace gsm(const WorkloadParams& p);           ///< GSM LPC/LTP speech encode
Trace jpeg(const WorkloadParams& p);          ///< 8x8 DCT + quant + RLE

}  // namespace canu::mibench
