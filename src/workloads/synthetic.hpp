// Synthetic trace generators with analytically known properties — used by
// property tests (e.g. "a uniform stream has near-zero per-set skewness")
// and by the ablation benches.
#pragma once

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace canu::synthetic {

/// Uniform random line-granularity accesses over a configurable footprint.
void uniform(TraceSink& sink, const WorkloadParams& p);

/// Hot-set pattern: 90% of accesses hit 10% of the footprint.
void hotset(TraceSink& sink, const WorkloadParams& p);

/// Fixed power-of-two stride walk (the worst case for modulo indexing).
void strided(TraceSink& sink, const WorkloadParams& p);

/// Gaussian-centred accesses drifting across the footprint.
void gaussian(TraceSink& sink, const WorkloadParams& p);

/// Pure sequential sweep (compulsory misses only).
void sequential(TraceSink& sink, const WorkloadParams& p);

}  // namespace canu::synthetic
