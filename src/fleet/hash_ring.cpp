#include "fleet/hash_ring.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace canu::fleet {

namespace {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finalizer: FNV-1a of short, similar strings ("s#0", "s#1")
/// clusters in the low bits; the avalanche spreads vnode positions across
/// the whole 64-bit ring.
std::uint64_t avalanche(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t HashRing::point(std::string_view s) noexcept {
  return avalanche(fnv1a64(s));
}

HashRing::HashRing(unsigned vnodes) : vnodes_(vnodes) {
  CANU_CHECK_MSG(vnodes_ > 0, "hash ring needs at least one virtual node");
}

void HashRing::add(const std::string& shard) {
  CANU_CHECK_MSG(!shard.empty(), "hash ring shard name must be non-empty");
  if (contains(shard)) return;
  shards_.push_back(shard);
  rebuild();
}

void HashRing::remove(std::string_view shard) {
  const auto it = std::find(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end()) return;
  shards_.erase(it);
  rebuild();
}

bool HashRing::contains(std::string_view shard) const noexcept {
  return std::find(shards_.begin(), shards_.end(), shard) != shards_.end();
}

void HashRing::rebuild() {
  ring_.clear();
  ring_.reserve(shards_.size() * vnodes_);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    for (std::uint32_t i = 0; i < vnodes_; ++i) {
      const std::string vname = shards_[s] + "#" + std::to_string(i);
      ring_.push_back(Vnode{point(vname), s, i});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [this](const Vnode& a, const Vnode& b) {
              if (a.pos != b.pos) return a.pos < b.pos;
              if (shards_[a.shard] != shards_[b.shard]) {
                return shards_[a.shard] < shards_[b.shard];
              }
              return a.index < b.index;
            });
}

const std::string& HashRing::owner(std::string_view key) const {
  CANU_CHECK_MSG(!ring_.empty(), "hash ring has no shards");
  const std::uint64_t p = point(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), p,
      [](const Vnode& v, std::uint64_t value) { return v.pos < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return shards_[it->shard];
}

std::vector<std::string> HashRing::owners(std::string_view key,
                                          std::size_t n) const {
  CANU_CHECK_MSG(!ring_.empty(), "hash ring has no shards");
  const std::uint64_t p = point(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), p,
      [](const Vnode& v, std::uint64_t value) { return v.pos < value; });
  std::vector<std::string> result;
  const std::size_t want = std::min(n, shards_.size());
  std::vector<bool> seen(shards_.size(), false);
  for (std::size_t step = 0; step < ring_.size() && result.size() < want;
       ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (seen[it->shard]) continue;
    seen[it->shard] = true;
    result.push_back(shards_[it->shard]);
  }
  return result;
}

}  // namespace canu::fleet
