// Fleet-aware client (DESIGN.md §16): routes each request to the shard
// owning its canonical 128-bit key on the consistent-hash ring, and fails
// over along the ring's succession order when a shard is down — the same
// ring the daemons build from `--peers`, so client-side routing and the
// server-side `route` forward always agree.
//
// Failover contract: transport failures (connect refused, connection died
// mid-call) advance to the next distinct shard after exhausting the
// per-shard retry policy; server-side outcomes (verb errors, overloaded
// after retries, deadline_exceeded) are real answers and return as-is.
// A non-owner shard reached via failover serves the request itself (its
// own forward to the dead owner fails and it falls back to local
// execution), so a fleet with any live shard still answers.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/hash_ring.hpp"
#include "svc/client.hpp"

namespace canu::fleet {

struct FleetOptions {
  unsigned vnodes = HashRing::kDefaultVnodes;
  /// Per-shard retry policy (svc::RetryPolicy semantics); failover to the
  /// next shard happens after one shard's attempts are exhausted.
  svc::RetryPolicy retry;
};

class FleetClient {
 public:
  explicit FleetClient(std::vector<svc::Endpoint> endpoints,
                       FleetOptions options = {});

  /// Route `req` by canonical key and call the owning shard, failing over
  /// along the ring on transport errors. `shard_used` (optional) reports
  /// the canonical name of the shard that answered. Throws canu::Error
  /// when every shard is unreachable.
  svc::Response call(const svc::Request& req,
                     std::string* shard_used = nullptr) const;

  /// Streaming variant: chunk frames are handed to `sink` as they arrive
  /// and the end-of-stream response is returned; Response.output carries
  /// only the bytes not already delivered as chunks, so
  /// chunks + Response.output == the verb's full stdout.
  svc::Response call_streamed(
      const svc::Request& req,
      const std::function<void(std::string_view)>& sink,
      std::string* shard_used = nullptr) const;

  /// Canonical name of the shard owning this request's key.
  const std::string& owner_for(const svc::Request& req) const;

  const HashRing& ring() const noexcept { return ring_; }
  const std::vector<svc::Endpoint>& endpoints() const noexcept {
    return endpoints_;
  }
  const svc::Endpoint& endpoint_of(std::string_view shard) const;

 private:
  svc::Response dispatch(
      const svc::Request& req,
      const std::function<void(std::string_view)>* sink,
      std::string* shard_used) const;

  std::vector<svc::Endpoint> endpoints_;
  std::vector<std::string> names_;  ///< canonical, parallel to endpoints_
  FleetOptions options_;
  HashRing ring_;
};

/// Build the ServerOptions::route_owner hook for a daemon that is itself a
/// fleet shard: given a canonical request key, return the owning peer's
/// endpoint, or nullopt when the owner is this daemon (`self_name`, its
/// canonical endpoint string). Throws canu::Error when `self_name` is not
/// one of `peers` — a shard must appear in its own ring, or every request
/// would forward forever. The ring built here is the same one FleetClient
/// builds from the same list, so client and servers always agree.
std::function<std::optional<svc::Endpoint>(const std::string&)> make_router(
    const std::vector<svc::Endpoint>& peers, const std::string& self_name,
    unsigned vnodes = HashRing::kDefaultVnodes);

}  // namespace canu::fleet
