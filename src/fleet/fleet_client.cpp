#include "fleet/fleet_client.hpp"

#include <memory>

#include "fleet/endpoints.hpp"
#include "svc/verbs.hpp"
#include "util/error.hpp"

namespace canu::fleet {

FleetClient::FleetClient(std::vector<svc::Endpoint> endpoints,
                         FleetOptions options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      ring_(options.vnodes) {
  CANU_CHECK_MSG(!endpoints_.empty(), "fleet client needs >= 1 endpoint");
  for (const svc::Endpoint& ep : endpoints_) {
    std::string name = endpoint_name(ep);
    CANU_CHECK_MSG(!ring_.contains(name), "duplicate endpoint " << name);
    ring_.add(name);
    names_.push_back(std::move(name));
  }
}

const svc::Endpoint& FleetClient::endpoint_of(std::string_view shard) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == shard) return endpoints_[i];
  }
  throw Error("unknown fleet shard '" + std::string(shard) + "'");
}

const std::string& FleetClient::owner_for(const svc::Request& req) const {
  // Uncacheable verbs (ping, status, metrics) have no canonical result key;
  // routing them by verb name still spreads them deterministically.
  return ring_.owner(svc::verb_is_cacheable(req.verb)
                         ? svc::canonical_request_key(req)
                         : req.verb);
}

svc::Response FleetClient::call(const svc::Request& req,
                                std::string* shard_used) const {
  return dispatch(req, nullptr, shard_used);
}

svc::Response FleetClient::call_streamed(
    const svc::Request& req,
    const std::function<void(std::string_view)>& sink,
    std::string* shard_used) const {
  return dispatch(req, &sink, shard_used);
}

svc::Response FleetClient::dispatch(
    const svc::Request& req,
    const std::function<void(std::string_view)>* sink,
    std::string* shard_used) const {
  const std::string key = svc::verb_is_cacheable(req.verb)
                              ? svc::canonical_request_key(req)
                              : req.verb;
  const std::vector<std::string> order = ring_.owners(key, ring_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const bool last = i + 1 == order.size();
    const svc::Client client(endpoint_of(order[i]));
    try {
      svc::Response resp =
          sink != nullptr
              ? client.call_streamed(req, *sink, options_.retry)
              : client.call_with_retry(req, options_.retry);
      if (shard_used != nullptr) *shard_used = order[i];
      return resp;
    } catch (const Error& e) {
      // Shard down (connect refused / died mid-call): advance along the
      // ring. The last candidate's failure is the fleet's failure.
      if (last) {
        throw Error("no fleet shard reachable for this request (last tried " +
                    order[i] + "): " + e.what());
      }
    }
  }
  throw Error("fleet ring is empty");  // unreachable: ctor requires >= 1
}

std::function<std::optional<svc::Endpoint>(const std::string&)> make_router(
    const std::vector<svc::Endpoint>& peers, const std::string& self_name,
    unsigned vnodes) {
  struct Ring {
    HashRing ring;
    std::vector<std::string> names;
    std::vector<svc::Endpoint> endpoints;
    std::string self;
  };
  auto shared = std::make_shared<Ring>();
  shared->ring = HashRing(vnodes);
  shared->self = self_name;
  bool self_found = false;
  for (const svc::Endpoint& ep : peers) {
    std::string name = endpoint_name(ep);
    CANU_CHECK_MSG(!shared->ring.contains(name),
                   "duplicate peer endpoint " << name);
    if (name == self_name) self_found = true;
    shared->ring.add(name);
    shared->names.push_back(std::move(name));
    shared->endpoints.push_back(ep);
  }
  CANU_CHECK_MSG(self_found, "--peers must include this daemon's own "
                             "endpoint ("
                                 << self_name << ")");
  return [shared](const std::string& key) -> std::optional<svc::Endpoint> {
    const std::string& owner = shared->ring.owner(key);
    if (owner == shared->self) return std::nullopt;
    for (std::size_t i = 0; i < shared->names.size(); ++i) {
      if (shared->names[i] == owner) return shared->endpoints[i];
    }
    return std::nullopt;  // unreachable: ring only holds peer names
  };
}

}  // namespace canu::fleet
