// Endpoint-list parsing for the fleet layer: one comma-separated
// `--endpoints`/`--peers` flag mixing every address form the daemon can
// listen on — filesystem Unix sockets, '@'-prefixed abstract-namespace
// sockets, IPv4 host:port, and bracketed IPv6 ([::1]:7070). Validation
// reuses the svc socket-layer parsers (resolve_unix/resolve_tcp), so a
// token the fleet accepts is exactly a token the daemon can bind or the
// client can connect — no second address grammar.
//
// Canonical names: endpoint_name() returns Endpoint::describe()
// ("unix:/run/a.sock", "tcp:::1:7070" with brackets stripped), the string
// both clients and daemons feed to the hash ring — identical lists parse
// to identical rings everywhere.
#pragma once

#include <string>
#include <vector>

#include "svc/client.hpp"

namespace canu::fleet {

/// Parse one endpoint token. Accepted forms:
///   /path/to.sock   @abstract    unix:/path    unix:@abstract
///   host:port       [v6]:port    tcp:host:port tcp:[v6]:port
/// Throws canu::Error on anything else (missing port, bad literal, bare
/// IPv6 without brackets, port outside 1..65535).
svc::Endpoint parse_endpoint(const std::string& token);

/// Parse a comma-separated endpoint list; rejects empty lists, empty
/// tokens, and duplicate endpoints (same canonical name).
std::vector<svc::Endpoint> parse_endpoint_list(const std::string& csv);

/// The endpoint's canonical ring name (Endpoint::describe()).
std::string endpoint_name(const svc::Endpoint& ep);

}  // namespace canu::fleet
