#include "fleet/endpoints.hpp"

#include <algorithm>

#include "svc/socket.hpp"
#include "util/cli_flags.hpp"
#include "util/error.hpp"

namespace canu::fleet {

namespace {

svc::Endpoint unix_endpoint(const std::string& path,
                            const std::string& token) {
  CANU_CHECK_MSG(!path.empty(), "endpoint '" << token
                                             << "' has an empty socket path");
  svc::resolve_unix(path);  // validates length/abstract form; throws if bad
  svc::Endpoint ep;
  ep.unix_path = path;
  return ep;
}

svc::Endpoint tcp_endpoint(const std::string& hostport,
                           const std::string& token) {
  std::string host;
  std::string port_text;
  if (!hostport.empty() && hostport[0] == '[') {
    // Bracketed IPv6: [::1]:7070 — the only unambiguous way to attach a
    // port to a multi-colon literal.
    const std::size_t close = hostport.find(']');
    CANU_CHECK_MSG(close != std::string::npos,
                   "endpoint '" << token << "' has an unterminated '['");
    host = hostport.substr(1, close - 1);
    CANU_CHECK_MSG(close + 1 < hostport.size() && hostport[close + 1] == ':',
                   "endpoint '" << token << "' needs ':port' after ']'");
    port_text = hostport.substr(close + 2);
  } else {
    const std::size_t colon = hostport.rfind(':');
    CANU_CHECK_MSG(colon != std::string::npos,
                   "endpoint '" << token
                                << "' needs a port (host:port) or a Unix "
                                   "path (/path or @name)");
    host = hostport.substr(0, colon);
    // A second colon means a bare IPv6 literal swallowed the port split.
    CANU_CHECK_MSG(host.find(':') == std::string::npos,
                   "endpoint '" << token << "' is ambiguous: bracket IPv6 "
                                << "literals as [" << host << "]:port");
    port_text = hostport.substr(colon + 1);
  }
  std::string error;
  const auto port = parse_u64(port_text, "endpoint port", &error);
  CANU_CHECK_MSG(port && *port >= 1 && *port <= 65535,
                 "endpoint '" << token << "' has an invalid port '"
                              << port_text << "' (want 1..65535)");
  // Validates the literal exactly as connect/bind would; throws if bad.
  svc::resolve_tcp(host, static_cast<std::uint16_t>(*port));
  svc::Endpoint ep;
  ep.host = host;
  ep.port = static_cast<int>(*port);
  return ep;
}

}  // namespace

svc::Endpoint parse_endpoint(const std::string& token) {
  CANU_CHECK_MSG(!token.empty(), "empty endpoint token");
  if (token.rfind("unix:", 0) == 0) {
    return unix_endpoint(token.substr(5), token);
  }
  if (token[0] == '/' || token[0] == '@') return unix_endpoint(token, token);
  if (token.rfind("tcp:", 0) == 0) return tcp_endpoint(token.substr(4), token);
  return tcp_endpoint(token, token);
}

std::vector<svc::Endpoint> parse_endpoint_list(const std::string& csv) {
  std::vector<svc::Endpoint> endpoints;
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    CANU_CHECK_MSG(!token.empty(),
                   "empty endpoint in list '" << csv << "'");
    svc::Endpoint ep = parse_endpoint(token);
    const std::string name = endpoint_name(ep);
    CANU_CHECK_MSG(std::find(names.begin(), names.end(), name) == names.end(),
                   "duplicate endpoint '" << name << "' in list");
    names.push_back(name);
    endpoints.push_back(std::move(ep));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  CANU_CHECK_MSG(!endpoints.empty(), "endpoint list is empty");
  return endpoints;
}

std::string endpoint_name(const svc::Endpoint& ep) { return ep.describe(); }

}  // namespace canu::fleet
