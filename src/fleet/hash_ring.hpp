// Consistent-hash ring over the canonical 128-bit request key
// (DESIGN.md §16): the fleet layer's routing primitive, shared by the
// fleet-aware client (`canu submit --endpoints=...`), the daemon's route
// capability (`canu serve --peers=...`) and the drain tool — all three must
// agree on every key's owner, so the ring is deterministic by construction:
//
//  * Positions come from an explicit FNV-1a-64 hash with a splitmix-style
//    avalanche finalizer — never std::hash, whose value is implementation-
//    defined and would let two builds route one key to different shards.
//  * Each shard contributes `vnodes` virtual nodes ("<shard>#<i>"), so key
//    ownership spreads evenly (max/min share within 1.25x across 4 shards
//    at >= 128 vnodes, pinned by tests/fleet_test.cpp) and membership
//    changes remap only the keys adjacent to the joining/leaving shard's
//    points (~1/N of the space), never reshuffle the whole ring.
//  * Position ties (astronomically rare) break by shard name, then vnode
//    index, keeping the sort total and the ring identical on every host.
//
// Shards are plain strings; the fleet layer uses canonical endpoint names
// ("unix:/run/a.sock", "tcp:127.0.0.1:7070") so client and servers derive
// identical rings from identical --endpoints/--peers lists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace canu::fleet {

class HashRing {
 public:
  /// Enough virtual nodes for the 1.25x distribution bound at small fleet
  /// sizes; rebuild cost is O(shards * vnodes * log) and membership changes
  /// are rare, so more is cheap.
  static constexpr unsigned kDefaultVnodes = 128;

  explicit HashRing(unsigned vnodes = kDefaultVnodes);

  /// Add one shard (duplicates are ignored). Rebuilds the ring.
  void add(const std::string& shard);
  /// Remove one shard (missing names are ignored). Rebuilds the ring.
  void remove(std::string_view shard);

  bool contains(std::string_view shard) const noexcept;
  std::size_t size() const noexcept { return shards_.size(); }
  bool empty() const noexcept { return shards_.empty(); }
  unsigned vnodes() const noexcept { return vnodes_; }
  /// Member shards in insertion order (the --endpoints order).
  const std::vector<std::string>& shards() const noexcept { return shards_; }

  /// The shard owning `key`: the first virtual node at or clockwise after
  /// the key's point. Throws canu::Error on an empty ring.
  const std::string& owner(std::string_view key) const;

  /// Up to `n` distinct shards in ring-succession order starting at the
  /// owner — the fleet client's failover sequence for `key`.
  std::vector<std::string> owners(std::string_view key, std::size_t n) const;

  /// Ring position of an arbitrary string: avalanche(fnv1a64(s)). Exposed
  /// so tests can pin cross-build determinism to exact constants.
  static std::uint64_t point(std::string_view s) noexcept;

 private:
  struct Vnode {
    std::uint64_t pos;
    std::uint32_t shard;  ///< index into shards_
    std::uint32_t index;  ///< vnode index, the final tie-break
  };

  void rebuild();

  unsigned vnodes_;
  std::vector<std::string> shards_;
  std::vector<Vnode> ring_;  ///< sorted by (pos, shard name, index)
};

}  // namespace canu::fleet
