// SIMD probe kernel for the set-associative hot path (DESIGN.md §13).
//
// The tag probe and the invalid-way search in SetAssocCache are both
// "find the first element equal to `key` in a short contiguous u64 array"
// — over the SoA flat tag columns introduced in PR 2. find_u64() is that
// primitive, vectorized with AVX2 (4 tags per compare, movemask for the
// first-match index) behind runtime dispatch: the binary always carries
// the scalar kernel, probes CPUID once on first use, and upgrades to the
// AVX2 kernel only when the host supports it. Building with
// -DCANU_NO_AVX2=ON compiles the vector kernel out entirely (the CI
// scalar-fallback leg), leaving pure standard C++.
//
// First-match semantics are part of the contract: kInvalidTag may appear
// in several ways of a set and fills must pick the lowest one, so both
// kernels return the smallest matching index — which is also what makes
// the AVX2 path bit-for-bit equal to the scalar path in every simulation.
#pragma once

#include <cstdint>

namespace canu::simd {

using FindU64Fn = unsigned (*)(const std::uint64_t*, unsigned,
                               std::uint64_t) noexcept;

namespace detail {
/// Dispatch target for wide searches; resolved on first call (util/simd.cpp).
unsigned find_u64_dispatch(const std::uint64_t* data, unsigned n,
                           std::uint64_t key) noexcept;
}  // namespace detail

/// Width below which vectorization cannot pay for itself; searched with the
/// inline scalar loop regardless of the selected kernel. Direct-mapped and
/// 2-way probes never leave the header.
inline constexpr unsigned kSimdMinLanes = 4;

/// Index of the FIRST element equal to `key` in [data, data + n), or `n`
/// when absent.
inline unsigned find_u64(const std::uint64_t* data, unsigned n,
                         std::uint64_t key) noexcept {
  if (n >= kSimdMinLanes) return detail::find_u64_dispatch(data, n, key);
  unsigned i = 0;
  while (i < n && data[i] != key) ++i;
  return i;
}

/// Name of the kernel wide searches dispatch to: "avx2" or "scalar".
const char* find_u64_kernel() noexcept;

/// Test hook: pin the dispatch kernel by name ("avx2" | "scalar").
/// Returns false (and changes nothing) if the kernel is unavailable on
/// this host or was compiled out. Not thread-safe against concurrent
/// simulations — flip it only from test setup code.
bool set_find_u64_kernel(const char* name) noexcept;

}  // namespace canu::simd
