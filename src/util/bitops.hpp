// Bit-manipulation helpers used by index functions and cache geometry code.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace canu {

/// True if `v` is a (nonzero) power of two.
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Floor of log2(v); requires v > 0.
constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/// Exact log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) noexcept { return log2_floor(v); }

/// Extract bit `pos` (0 = LSB) of `v`.
constexpr unsigned get_bit(std::uint64_t v, unsigned pos) noexcept {
  return static_cast<unsigned>((v >> pos) & 1u);
}

/// Extract `count` contiguous bits of `v` starting at bit `lo`.
constexpr std::uint64_t bit_field(std::uint64_t v, unsigned lo,
                                  unsigned count) noexcept {
  if (count == 0) return 0;
  if (count >= 64) return v >> lo;
  return (v >> lo) & ((std::uint64_t{1} << count) - 1);
}

/// Mask with the lowest `count` bits set.
constexpr std::uint64_t low_mask(unsigned count) noexcept {
  return count >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
}

/// Gather the bits of `v` at the given positions (positions[0] becomes the
/// LSB of the result). Used by trained index functions (Givargis, Patel)
/// that select arbitrary address bits as the set index.
std::uint64_t gather_bits(std::uint64_t v, const std::vector<unsigned>& positions) noexcept;

/// Next power of two >= v (v=0 yields 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  return std::uint64_t{1} << (64u - static_cast<unsigned>(std::countl_zero(v - 1)));
}

}  // namespace canu
