#include "util/fault.hpp"

#ifndef CANU_FAULT_DISABLED

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/error.hpp"

namespace canu::fault {

namespace {

enum class Action { kThrow, kKill };

struct Site {
  std::uint64_t fail_at = 0;  ///< 1-based hit index that fails (0 = never)
  Action action = Action::kThrow;
  std::uint64_t hits = 0;
  bool fired = false;
};

std::atomic<bool> g_armed{false};
std::mutex g_mutex;
std::map<std::string, Site>& registry() {
  static std::map<std::string, Site> sites;
  return sites;
}

void parse_into(const std::string& spec, std::map<std::string, Site>* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t c1 = entry.find(':');
    CANU_CHECK_MSG(c1 != std::string::npos && c1 > 0,
                   "fault spec entry '" << entry << "' wants <site>:<n>");
    Site site;
    const std::size_t c2 = entry.find(':', c1 + 1);
    const std::string count =
        entry.substr(c1 + 1, (c2 == std::string::npos ? entry.size() : c2) -
                                 c1 - 1);
    char* parse_end = nullptr;
    site.fail_at = std::strtoull(count.c_str(), &parse_end, 10);
    CANU_CHECK_MSG(parse_end != count.c_str() && *parse_end == '\0' &&
                       site.fail_at > 0,
                   "fault spec entry '" << entry
                                        << "' wants a positive hit count");
    if (c2 != std::string::npos) {
      const std::string action = entry.substr(c2 + 1);
      if (action == "kill") {
        site.action = Action::kKill;
      } else {
        CANU_CHECK_MSG(action == "throw",
                       "unknown fault action '" << action << "'");
      }
    }
    (*out)[entry.substr(0, c1)] = site;
  }
}

/// Consult CANU_FAULT exactly once, the first time any hook runs.
void arm_from_env_once() {
  static const bool done = [] {
    if (const char* spec = std::getenv("CANU_FAULT")) {
      if (spec[0] != '\0') arm(spec);
    }
    return true;
  }();
  (void)done;
}

}  // namespace

void arm(const std::string& spec) {
  std::map<std::string, Site> sites;
  parse_into(spec, &sites);
  std::lock_guard<std::mutex> lock(g_mutex);
  registry() = std::move(sites);
  g_armed.store(!registry().empty(), std::memory_order_release);
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  registry().clear();
  g_armed.store(false, std::memory_order_release);
}

bool armed() noexcept {
  arm_from_env_once();
  return g_armed.load(std::memory_order_acquire);
}

bool should_fail(const char* site) noexcept {
  if (!armed()) return false;
  Action action = Action::kThrow;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = registry().find(site);
    if (it == registry().end()) return false;
    Site& s = it->second;
    ++s.hits;
    if (s.fired || s.hits != s.fail_at) return false;
    s.fired = true;
    action = s.action;
  }
  if (action == Action::kKill) {
    // Crash-recovery tests: die exactly as `kill -9` would, mid-operation,
    // with whatever bytes the caller already pushed into kernel buffers.
    ::raise(SIGKILL);
  }
  return true;
}

std::uint64_t hits(const char* site) noexcept {
  if (!armed()) return 0;
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

void inject(const char* site) {
  if (should_fail(site)) {
    throw Error(std::string("injected fault at ") + site);
  }
}

}  // namespace canu::fault

#endif  // CANU_FAULT_DISABLED
