// Primality helpers for the prime-modulo indexing scheme (Kharbutli et al.,
// HPCA 2004): the cache index is computed as address mod p where p is the
// largest prime not exceeding the number of sets.
#pragma once

#include <cstdint>

namespace canu {

/// Deterministic primality test (trial division up to sqrt; inputs are cache
/// set counts, i.e. small, so this is never a bottleneck).
bool is_prime(std::uint64_t n) noexcept;

/// Largest prime p <= n. Requires n >= 2.
std::uint64_t largest_prime_le(std::uint64_t n);

/// Smallest prime p >= n. Requires n >= 2.
std::uint64_t smallest_prime_ge(std::uint64_t n);

}  // namespace canu
