#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace canu {

void TextTable::set_header(std::vector<std::string> header) {
  CANU_CHECK_MSG(!header.empty(), "table header must have at least one column");
  CANU_CHECK_MSG(rows_.empty(), "header must be set before adding rows");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  CANU_CHECK_MSG(row.size() == header_.size(),
                 "row has " << row.size() << " cells, header has "
                            << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  if (std::isnan(v)) return "n/a";
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      } else {
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace canu
