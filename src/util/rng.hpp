// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in CANU (synthetic workloads, random replacement,
// stochastic trace interleaving) is driven by these generators so that every
// experiment is bit-reproducible across runs and platforms. We deliberately
// avoid std::mt19937 + std::uniform_int_distribution because distribution
// implementations differ across standard libraries.
#pragma once

#include <cstdint>

namespace canu {

/// SplitMix64: used for seeding and cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator for workload synthesis.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (bias negligible for 64-bit state; deterministic across platforms).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __extension__ typedef unsigned __int128 u128;
    return static_cast<std::uint64_t>((static_cast<u128>(next()) * bound) >>
                                      64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Approximate standard normal via sum of 4 uniforms (Irwin–Hall, rescaled).
  /// Adequate for shaping synthetic access distributions.
  double normal() noexcept {
    double s = uniform() + uniform() + uniform() + uniform();
    return (s - 2.0) * 1.7320508075688772;  // variance 4/12 -> rescale to 1
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace canu
