// Error handling primitives shared by all CANU subsystems.
//
// CANU_CHECK is used for precondition/invariant validation on public API
// boundaries; violations throw canu::Error so callers (tests, tools) can
// observe them without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace canu {

/// Exception type thrown on precondition or invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CANU_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace canu

/// Validate `expr`; on failure throw canu::Error with location information.
#define CANU_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::canu::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (0)

/// Validate `expr` with an explanatory message (streamed, e.g. "n=" << n).
#define CANU_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream canu_check_os_;                                     \
      canu_check_os_ << msg;                                                 \
      ::canu::detail::throw_check_failure(#expr, __FILE__, __LINE__,         \
                                          canu_check_os_.str());             \
    }                                                                        \
  } while (0)
