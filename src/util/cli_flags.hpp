// Shared command-line flag parsing for the canu CLI and the benchmarks.
// Factors the strtod/strtoul handling of --scale/--seed/--threads (and the
// observability flags) into one place so both frontends agree on syntax
// and error reporting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace canu {

/// If `arg` is `--name=value`, store the value and return true.
/// `--name` with no '=' is NOT matched (callers handle space-separated
/// forms themselves where they support them).
bool flag_value(const std::string& arg, const char* name, std::string* value);

/// Parse a strictly positive double ("0.25"); on failure returns nullopt
/// and describes the problem in *error.
std::optional<double> parse_positive_double(const std::string& text,
                                            const char* what,
                                            std::string* error);

/// Parse a non-negative u64 ("42"); on failure returns nullopt and
/// describes the problem in *error.
std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       const char* what, std::string* error);

/// Parse a thread count in [1, 4095]; on failure returns nullopt and
/// describes the problem in *error.
std::optional<unsigned> parse_thread_count(const std::string& text,
                                           std::string* error);

}  // namespace canu
