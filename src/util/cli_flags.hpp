// Shared command-line flag parsing for the canu CLI and the benchmarks.
// Factors the strtod/strtoul handling of --scale/--seed/--threads (and the
// observability flags) into one place so both frontends agree on syntax
// and error reporting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace canu {

/// If `arg` is `--name=value`, store the value and return true.
/// `--name` with no '=' is NOT matched (callers handle space-separated
/// forms themselves where they support them).
bool flag_value(const std::string& arg, const char* name, std::string* value);

/// Parse a strictly positive double ("0.25"); on failure returns nullopt
/// and describes the problem in *error.
std::optional<double> parse_positive_double(const std::string& text,
                                            const char* what,
                                            std::string* error);

/// Parse a non-negative u64 ("42"); on failure returns nullopt and
/// describes the problem in *error.
std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       const char* what, std::string* error);

/// Parse a thread count in [1, 4095]; on failure returns nullopt and
/// describes the problem in *error.
std::optional<unsigned> parse_thread_count(const std::string& text,
                                           std::string* error);

// --------------------------------------------------------------------------
// Verb / flag help tables — the single source of the canu usage text. Both
// the CLI driver and the canud service print from these, so a verb added in
// one place can never be missing from the other's help again.

struct VerbHelp {
  const char* name;     ///< verb, e.g. "evaluate"
  const char* args;     ///< positional signature, e.g. "<suite> [group]"
  const char* summary;  ///< one-line description
  const char* flags;    ///< space-separated flag names the verb accepts
};

struct FlagHelp {
  const char* name;     ///< e.g. "--scale"
  const char* value;    ///< value placeholder, e.g. "<f>" ("" = no value)
  const char* summary;  ///< one-line description
};

/// Every canu verb in display order.
const std::vector<VerbHelp>& canu_verbs();

/// Every canu flag (described once, shared across verbs).
const std::vector<FlagHelp>& canu_flags();

/// Look up a verb's help entry; nullptr if unknown.
const VerbHelp* find_verb_help(const std::string& verb);

/// Full usage text: one line per verb, then the flag glossary.
void print_canu_usage(std::ostream& os);

/// One verb's "usage:" line plus the flags it accepts; falls back to the
/// full usage text when the verb is unknown.
void print_verb_usage(std::ostream& os, const std::string& verb);

}  // namespace canu
