#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/obs.hpp"

namespace canu {

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("CANU_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 4096) {
      return static_cast<unsigned>(v);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = resolve_thread_count(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (obs::metrics_on()) {
    // Observe enqueue→execute latency; the wrapper runs on the worker, so
    // both counters land in the executing thread's block.
    task = [enq_ns = obs::now_ns(), task = std::move(task)] {
      const std::uint64_t run_ns = obs::now_ns();
      const std::uint64_t wait = run_ns > enq_ns ? run_ns - enq_ns : 0;
      obs::count(obs::Counter::kPoolTasksExecuted);
      obs::count(obs::Counter::kPoolQueueWaitNs, wait);
      obs::observe(obs::Hist::kPoolQueueWaitNs, wait);
      task();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::run_one_queued() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();  // wrappers capture exceptions; see enqueue()
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  TaskGroup group(this);
  for (std::size_t i = 0; i < n; ++i) {
    group.run([&fn, i] { fn(i); });
  }
  group.wait();
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    // Serial mode: execute in place, with the same defer-to-wait() error
    // semantics as the pooled path.
    try {
      fn();
    } catch (...) {
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_->enqueue([this, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    finish_one(error);
  });
}

void TaskGroup::finish_one(std::exception_ptr error) noexcept {
  // Notify while still holding the mutex: the waiter may destroy this
  // group the moment it observes pending_ == 0, and it cannot do so
  // before we release the lock — which keeps done_ alive for the
  // notify_all call.
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !first_error_) first_error_ = error;
  --pending_;
  done_.notify_all();
}

void TaskGroup::wait_all() noexcept {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_ == 0) return;
    }
    // Help: run queued work instead of blocking, so a group waited on from
    // inside a pool task cannot starve the fixed worker set. Once the queue
    // is empty, every task of this group has been dequeued — each is either
    // finished or running on some thread — so blocking until pending_ hits
    // zero is safe.
    if (pool_ != nullptr && pool_->run_one_queued()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    return;
  }
}

void TaskGroup::wait() {
  wait_all();
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace canu
