#include "util/bitops.hpp"

namespace canu {

std::uint64_t gather_bits(std::uint64_t v,
                          const std::vector<unsigned>& positions) noexcept {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    out |= static_cast<std::uint64_t>(get_bit(v, positions[i])) << i;
  }
  return out;
}

}  // namespace canu
