// Cooperative cancellation for long-running verb executions (DESIGN.md
// §12): a CancelToken carries an optional deadline and an explicit cancel
// flag, and the simulation engines check it at chunk boundaries — the
// natural quantum of work (tens of thousands of simulated accesses), coarse
// enough that the disarmed check never shows up in a profile, fine enough
// that a timed-out request releases its pool slots within one chunk.
//
// Cancellation is observed by throwing Cancelled, which unwinds the verb
// through the ordinary exception path (TaskGroup captures and rethrows, the
// streaming generators clean up their temp files) and is converted into a
// typed `deadline_exceeded` / `cancelled` reply by the daemon.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/error.hpp"

namespace canu {

/// Thrown when a CancelToken fires; `deadline` distinguishes a server-
/// enforced timeout from an explicit cancellation (client disconnect).
class Cancelled : public Error {
 public:
  explicit Cancelled(bool deadline)
      : Error(deadline ? "deadline exceeded" : "request cancelled"),
        deadline_(deadline) {}

  bool deadline_exceeded() const noexcept { return deadline_; }

 private:
  bool deadline_;
};

/// Shared between the thread that owns a request (which sets the deadline
/// or cancels) and the workers executing it (which poll). All members are
/// safe to call concurrently.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arm a wall-clock deadline `timeout_ms` from now (0 = none).
  void set_timeout_ms(std::uint64_t timeout_ms) {
    if (timeout_ms == 0) return;
    deadline_ns_.store(
        ns_since_epoch(Clock::now()) + timeout_ms * 1'000'000ull,
        std::memory_order_relaxed);
  }

  /// Explicit cancellation (e.g. the client disconnected).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once the armed deadline has passed (false when no deadline).
  bool expired() const noexcept {
    const std::uint64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && ns_since_epoch(Clock::now()) >= d;
  }

  /// The chunk-boundary poll: throws Cancelled when cancelled or expired.
  /// Explicit cancellation wins over the deadline when both apply.
  void check() const {
    if (cancel_requested()) throw Cancelled(false);
    if (expired()) throw Cancelled(true);
  }

 private:
  static std::uint64_t ns_since_epoch(Clock::time_point t) noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count());
  }

  std::atomic<std::uint64_t> deadline_ns_{0};  ///< 0 = no deadline
  std::atomic<bool> cancelled_{false};
};

}  // namespace canu
