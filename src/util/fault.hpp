// Deterministic fault-injection harness (DESIGN.md §12): named injection
// points compiled into the I/O and scheduling layers that do nothing until
// armed, then fail on an exact, reproducible hit count — so every recovery
// path in tests/fault_test.cpp is exercised by construction, not by luck.
//
// Arming: programmatic (fault::arm("socket.read:2")) or via the CANU_FAULT
// environment variable at first use. A spec is a comma-separated list of
//   <site>:<n>          throw canu::Error on the n-th hit (1-based)
//   <site>:<n>:kill     raise SIGKILL on the n-th hit (crash-recovery tests)
// Each site fires once, then stays quiet (counters keep advancing), so a
// recovery path that retries the operation observes it succeeding.
//
// Cost when disarmed: one relaxed atomic load per hit — the global `armed`
// flag — on paths that are I/O-bound anyway (socket reads/writes, journal
// appends, request dispatch). Defining CANU_FAULT_DISABLED compiles every
// hook to nothing for builds that want the hooks provably absent.
#pragma once

#include <cstdint>
#include <string>

namespace canu::fault {

#ifndef CANU_FAULT_DISABLED

/// Arm from a spec string; replaces any previous arming. Throws canu::Error
/// on a malformed spec.
void arm(const std::string& spec);

/// Return to the fully quiet state (counters reset).
void disarm();

/// True when any site is armed (after consulting CANU_FAULT once).
bool armed() noexcept;

/// Record one hit of `site`; true when this hit is the armed failure (a
/// `kill` action never returns — it raises SIGKILL after flushing nothing).
bool should_fail(const char* site) noexcept;

/// Hits observed for `site` since arming (0 when disarmed; diagnostics).
std::uint64_t hits(const char* site) noexcept;

/// should_fail + throw: the standard injection point for error-path sites.
void inject(const char* site);

#else  // CANU_FAULT_DISABLED: hooks compile to nothing.

inline void arm(const std::string&) {}
inline void disarm() {}
inline constexpr bool armed() noexcept { return false; }
inline bool should_fail(const char*) noexcept { return false; }
inline std::uint64_t hits(const char*) noexcept { return 0; }
inline void inject(const char*) {}

#endif  // CANU_FAULT_DISABLED

}  // namespace canu::fault
