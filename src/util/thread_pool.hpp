// Fixed-size thread pool shared by every parallel stage of the framework:
// workload-level tasks (core/evaluator.hpp) and the per-chunk pipeline
// shards of the parallel batch engine (sim/parallel_batch_runner.hpp).
//
// Design notes (see DESIGN.md §9): simulations share no mutable state, so
// parallelism does not affect determinism — each task owns its cache model
// and trace. The pool is a plain mutex+condvar queue; tasks are coarse
// (tens of thousands of simulated accesses at minimum), so queue overhead
// is irrelevant.
//
// Nesting: a task running on a pool worker may itself fan work out to the
// same pool via a TaskGroup. Waiting threads *help* — while a group has
// unfinished tasks, its waiter pops and executes queued pool tasks instead
// of blocking — so nested waits can never deadlock the fixed worker set,
// and the number of running tasks never exceeds workers + waiters (no
// oversubscription from nesting).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace canu {

/// Worker count for a requested thread setting: an explicit request wins,
/// else the CANU_THREADS environment variable (a positive integer), else
/// hardware concurrency. Always returns >= 1.
unsigned resolve_thread_count(unsigned requested);

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = resolve_thread_count(0),
  /// i.e. CANU_THREADS or hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result. Exceptions thrown by
  /// the task are captured into the future (std::packaged_task semantics),
  /// so a throwing task never takes down a worker or stalls the queue.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// The calling thread participates (it executes queued tasks while
  /// waiting), so this is safe to call from inside a pool task. Every index
  /// is executed even if some throw; the first exception encountered is
  /// rethrown after all n complete.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  friend class TaskGroup;

  /// Push an already-wrapped task. Wrappers must not let exceptions escape
  /// (submit/TaskGroup both capture them); see run_one_queued().
  void enqueue(std::function<void()> task);

  /// Pop and execute one queued task if any; false if the queue was empty.
  /// Used by TaskGroup waiters to help instead of blocking.
  bool run_one_queued();

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// A batch of tasks submitted to a pool and awaited together — the unit of
/// structured fan-out used by parallel_for and by the batch engine's
/// per-chunk shard replay.
///
/// run() never executes the task inline when a pool is present; wait()
/// executes queued pool tasks (any group's) until this group's tasks have
/// all finished, then rethrows the first captured exception. With a null
/// pool the group degenerates to immediate serial execution, which keeps a
/// single code path for callers offering a `--threads 1` mode.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Blocks until all tasks finish; never throws (use wait() to observe
  /// task exceptions).
  ~TaskGroup() { wait_all(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task to the group.
  void run(std::function<void()> fn);

  /// Wait for every submitted task, helping the pool while blocked, then
  /// rethrow the first exception any task threw (if any).
  void wait();

 private:
  void wait_all() noexcept;
  void finish_one(std::exception_ptr error) noexcept;

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace canu
