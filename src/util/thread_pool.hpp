// Fixed-size thread pool used to run independent (workload × scheme)
// simulations in parallel.
//
// Design notes (see DESIGN.md §5.6): simulations share no mutable state, so
// parallelism does not affect determinism — each task owns its cache model
// and trace. The pool is a plain mutex+condvar queue; experiment tasks are
// coarse (millions of simulated accesses), so queue overhead is irrelevant.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace canu {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace canu
