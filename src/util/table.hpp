// Aligned plain-text table rendering for experiment reports.
//
// Every figure-reproduction bench prints its rows through TextTable so output
// is uniform and machine-greppable; the same data can be exported as CSV via
// util/csv.hpp.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace canu {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// A simple monospace table: set a header row, append data rows, print.
class TextTable {
 public:
  TextTable() = default;

  /// Define the header; column count is fixed from this call on.
  void set_header(std::vector<std::string> header);

  /// Append one row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

  /// Render with a header separator; first column left-aligned, the rest
  /// right-aligned (the common layout for benchmark-per-row tables).
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace canu
