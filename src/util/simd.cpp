#include "util/simd.hpp"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) && !defined(CANU_NO_AVX2)
#define CANU_BUILD_AVX2 1
#include <immintrin.h>
#else
#define CANU_BUILD_AVX2 0
#endif

namespace canu::simd {
namespace {

unsigned find_u64_scalar(const std::uint64_t* data, unsigned n,
                         std::uint64_t key) noexcept {
  unsigned i = 0;
  while (i < n && data[i] != key) ++i;
  return i;
}

#if CANU_BUILD_AVX2
__attribute__((target("avx2"))) unsigned find_u64_avx2(
    const std::uint64_t* data, unsigned n, std::uint64_t key) noexcept {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(key));
  unsigned i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i lanes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i eq = _mm256_cmpeq_epi64(lanes, needle);
    // One sign bit per 64-bit lane; the lowest set bit is the first match.
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (mask != 0) {
      return i + static_cast<unsigned>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  while (i < n && data[i] != key) ++i;
  return i;
}

bool host_has_avx2() noexcept { return __builtin_cpu_supports("avx2") != 0; }
#endif

FindU64Fn pick_kernel() noexcept {
#if CANU_BUILD_AVX2
  if (host_has_avx2()) return &find_u64_avx2;
#endif
  return &find_u64_scalar;
}

unsigned find_u64_resolve(const std::uint64_t* data, unsigned n,
                          std::uint64_t key) noexcept;

// Starts at the resolver so the very first call — even from another
// translation unit's static initialization, before this one ran — picks
// the kernel and rebinds. constinit keeps that safe: the atomic is ready
// at load time, no dynamic-init ordering involved.
constinit std::atomic<FindU64Fn> g_find{&find_u64_resolve};

unsigned find_u64_resolve(const std::uint64_t* data, unsigned n,
                          std::uint64_t key) noexcept {
  FindU64Fn kernel = pick_kernel();
  g_find.store(kernel, std::memory_order_relaxed);
  return kernel(data, n, key);
}

/// The currently bound kernel, resolving first if still on the trampoline.
FindU64Fn current_kernel() noexcept {
  FindU64Fn f = g_find.load(std::memory_order_relaxed);
  if (f == &find_u64_resolve) {
    f = pick_kernel();
    g_find.store(f, std::memory_order_relaxed);
  }
  return f;
}

}  // namespace

namespace detail {
unsigned find_u64_dispatch(const std::uint64_t* data, unsigned n,
                           std::uint64_t key) noexcept {
  return g_find.load(std::memory_order_relaxed)(data, n, key);
}
}  // namespace detail

const char* find_u64_kernel() noexcept {
#if CANU_BUILD_AVX2
  if (current_kernel() == &find_u64_avx2) return "avx2";
#endif
  (void)current_kernel();
  return "scalar";
}

bool set_find_u64_kernel(const char* name) noexcept {
  if (std::strcmp(name, "scalar") == 0) {
    g_find.store(&find_u64_scalar, std::memory_order_relaxed);
    return true;
  }
#if CANU_BUILD_AVX2
  if (std::strcmp(name, "avx2") == 0 && host_has_avx2()) {
    g_find.store(&find_u64_avx2, std::memory_order_relaxed);
    return true;
  }
#endif
  return false;
}

}  // namespace canu::simd
