// Minimal RFC-4180-style CSV writer for exporting experiment results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace canu {

/// Streams rows as CSV, quoting cells that contain separators/quotes/newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Write one row; cells are escaped as needed.
  void write_row(const std::vector<std::string>& cells);

  /// Escape a single cell per RFC 4180.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace canu
