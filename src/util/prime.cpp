#include "util/prime.hpp"

#include "util/error.hpp"

namespace canu {

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  if (n < 4) return true;
  if (n % 2 == 0) return false;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

std::uint64_t largest_prime_le(std::uint64_t n) {
  CANU_CHECK_MSG(n >= 2, "no prime <= " << n);
  for (std::uint64_t p = n;; --p) {
    if (is_prime(p)) return p;
  }
}

std::uint64_t smallest_prime_ge(std::uint64_t n) {
  CANU_CHECK(n >= 2);
  for (std::uint64_t p = n;; ++p) {
    if (is_prime(p)) return p;
  }
}

}  // namespace canu
