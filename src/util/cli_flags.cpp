#include "util/cli_flags.hpp"

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace canu {

bool flag_value(const std::string& arg, const char* name, std::string* value) {
  const std::size_t name_len = std::strlen(name);
  if (arg.compare(0, name_len, name) != 0) return false;
  if (arg.size() <= name_len || arg[name_len] != '=') return false;
  *value = arg.substr(name_len + 1);
  return true;
}

std::optional<double> parse_positive_double(const std::string& text,
                                            const char* what,
                                            std::string* error) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v <= 0.0) {
    if (error != nullptr) {
      *error = std::string("invalid ") + what + " '" + text +
               "' (want a positive number)";
    }
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       const char* what, std::string* error) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || text[0] == '-') {
    if (error != nullptr) {
      *error = std::string("invalid ") + what + " '" + text +
               "' (want a non-negative integer)";
    }
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

std::optional<unsigned> parse_thread_count(const std::string& text,
                                           std::string* error) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 1 || v > 4095) {
    if (error != nullptr) {
      *error = "invalid thread count '" + text + "' (want 1..4095)";
    }
    return std::nullopt;
  }
  return static_cast<unsigned>(v);
}

const std::vector<VerbHelp>& canu_verbs() {
  static const std::vector<VerbHelp> verbs = {
      {"list", "", "workloads and schemes", ""},
      {"run", "<workload> <scheme>", "one simulation, full statistics",
       "--scale --seed --threads"},
      {"evaluate",
       "<suite|workload> [indexing|assoc|extensions|all] | "
       "--grid [sets=..] [ways=..] [line=..] [scheme=..]",
       "comparison table over a suite, or a one-pass config-grid sweep",
       "--scale --seed --threads --progress --grid --sample --sample-seed "
       "--max-error"},
      {"advise", "<workload>", "per-application scheme selection",
       "--scale --seed --threads --sample --sample-seed --max-error"},
      {"trace", "<workload> <file>", "record a trace (.ctrc = compressed)",
       "--scale --seed"},
      {"threec", "<workload> [scheme]", "3C miss decomposition",
       "--scale --seed --threads"},
      {"serve", "", "run the canud simulation daemon",
       "--socket --port --host --threads --queue --result-cache "
       "--cache-file --metrics-out --trace-events --slow-log-ms --slow-log "
       "--shard-id --peers --vnodes"},
      {"submit", "<verb> [args...]", "send a request to a running daemon",
       "--socket --port --host --endpoints --stream --vnodes --scale --seed "
       "--threads --timeout-ms --retry --meta-out --format --recent"},
      {"status", "", "query a running daemon's counters",
       "--socket --port --host --meta-out --recent"},
      {"metrics", "", "print a daemon's live telemetry",
       "--socket --port --host --meta-out --format"},
      {"top", "", "poll a daemon's metrics as a refreshing dashboard",
       "--socket --port --host --interval-ms --count"},
      {"drain", "<journal-file>",
       "replay a cache journal onto a fleet (shard handoff)",
       "--endpoints --vnodes --retry --timeout-ms"},
      {"version", "", "print the canu build version", ""},
  };
  return verbs;
}

const std::vector<FlagHelp>& canu_flags() {
  static const std::vector<FlagHelp> flags = {
      {"--scale", "<f>", "problem-size multiplier (default 1.0)"},
      {"--seed", "<n>", "input-data RNG seed (default 1)"},
      {"--threads", "<n>",
       "worker threads (default CANU_THREADS, else hardware; 1 = serial "
       "engine)"},
      {"--progress", "[=force]",
       "stderr heartbeat during evaluate (TTY only unless forced)"},
      {"--grid", "",
       "evaluate a sets/ways/line/scheme grid in one trace sweep "
       "(dimension lists like sets=512,1024; omitted dims = paper L1)"},
      {"--sample", "[=k]",
       "sampled-interval replay: cluster trace intervals (k-means, k "
       "clusters; omitted = auto) and extrapolate from representatives "
       "with 95% CIs"},
      {"--sample-seed", "<n>", "clustering seed for --sample (default 1)"},
      {"--max-error", "<pct>",
       "target miss-rate CI95 half-width in %-points; exceeded once -> "
       "re-run with doubled clusters, then annotate"},
      {"--metrics-out", "<file>",
       "write a run-manifest JSON artifact (serve: whole-process rollup on "
       "SIGHUP and shutdown)"},
      {"--trace-events", "<file>", "write Chrome/Perfetto trace-event spans"},
      {"--socket", "<path>",
       "Unix-domain socket of the daemon ('@name' = abstract namespace)"},
      {"--port", "<n>", "TCP port of the daemon (0 = ephemeral for serve)"},
      {"--host", "<addr>", "TCP host, IPv4 or IPv6 (default 127.0.0.1)"},
      {"--queue", "<n>",
       "serve: max queued+running requests before `overloaded` (default 64)"},
      {"--result-cache", "<n>",
       "serve: max cached results before FIFO eviction (default 256)"},
      {"--meta-out", "<file>",
       "write the response metadata (cache hit, version, counters) as JSON"},
      {"--timeout-ms", "<n>",
       "submit: server-enforced deadline; expired work answers "
       "deadline_exceeded (exit 124)"},
      {"--retry", "<n>",
       "submit: extra attempts on overload/connect failure, exponential "
       "backoff with jitter (default 0)"},
      {"--cache-file", "<file>",
       "serve: crash-safe result-cache journal, replayed on restart"},
      {"--format", "<fmt>",
       "metrics: output format, json (default) or prometheus"},
      {"--recent", "[=n]",
       "status: append the last n completed requests (default 20)"},
      {"--interval-ms", "<n>", "top: refresh period (default 1000)"},
      {"--count", "<n>", "top: frames to render before exiting (0 = forever)"},
      {"--slow-log-ms", "<n>",
       "serve: log requests slower than n ms as one JSON line each "
       "(0 logs every request)"},
      {"--slow-log", "<file>",
       "serve: slow-request log destination (default stderr)"},
      {"--endpoints", "<list>",
       "submit/drain: comma-separated fleet addresses (unix paths, @abstract, "
       "host:port, [v6]:port); requests route by consistent hash"},
      {"--peers", "<list>",
       "serve: the fleet's full endpoint list (same syntax as --endpoints, "
       "must include this daemon); misrouted requests forward to their owner"},
      {"--shard-id", "<name>",
       "serve: shard label stamped on metrics/status output"},
      {"--vnodes", "<n>",
       "virtual nodes per shard on the hash ring (default 128; all fleet "
       "members and clients must agree)"},
      {"--stream", "",
       "submit: stream the reply as chunk frames (first bytes arrive before "
       "the verb finishes; assembled output is byte-identical)"},
      {"--version", "", "print the canu build version and exit"},
  };
  return flags;
}

const VerbHelp* find_verb_help(const std::string& verb) {
  for (const VerbHelp& v : canu_verbs()) {
    if (verb == v.name) return &v;
  }
  return nullptr;
}

namespace {

/// "--scale" listed in a verb's space-separated flag set?
bool verb_accepts_flag(const VerbHelp& verb, const char* flag) {
  const char* hay = verb.flags;
  const std::size_t len = std::strlen(flag);
  while ((hay = std::strstr(hay, flag)) != nullptr) {
    const bool end_ok = hay[len] == '\0' || hay[len] == ' ';
    if (end_ok) return true;
    hay += len;
  }
  return false;
}

void print_flag_lines(std::ostream& os, const VerbHelp* only_verb) {
  for (const FlagHelp& f : canu_flags()) {
    if (only_verb != nullptr && !verb_accepts_flag(*only_verb, f.name)) {
      continue;
    }
    std::string head = std::string(f.name);
    // A value spec starting with '[' is an optional suffix that already
    // carries its own '=' (e.g. --progress[=force]).
    if (f.value[0] == '[') {
      head += f.value;
    } else if (f.value[0] != '\0') {
      head += std::string("=") + f.value;
    }
    os << "  " << std::left << std::setw(22) << head + " " << f.summary
       << "\n";
  }
}

}  // namespace

void print_canu_usage(std::ostream& os) {
  os << "usage: canu <verb> [args...] [flags]\n\nverbs:\n";
  for (const VerbHelp& v : canu_verbs()) {
    std::string head = v.name;
    if (v.args[0] != '\0') head += std::string(" ") + v.args;
    os << "  " << std::left << std::setw(40) << head + " " << v.summary
       << "\n";
  }
  os << "\nflags (--flag=value):\n";
  print_flag_lines(os, nullptr);
}

void print_verb_usage(std::ostream& os, const std::string& verb) {
  const VerbHelp* v = find_verb_help(verb);
  if (v == nullptr) {
    print_canu_usage(os);
    return;
  }
  os << "usage: canu " << v->name;
  if (v->args[0] != '\0') os << " " << v->args;
  os << "\n  " << v->summary << "\n";
  if (v->flags[0] != '\0') {
    os << "flags:\n";
    print_flag_lines(os, v);
  }
}

}  // namespace canu
