#include "util/cli_flags.hpp"

#include <cstdlib>
#include <cstring>

namespace canu {

bool flag_value(const std::string& arg, const char* name, std::string* value) {
  const std::size_t name_len = std::strlen(name);
  if (arg.compare(0, name_len, name) != 0) return false;
  if (arg.size() <= name_len || arg[name_len] != '=') return false;
  *value = arg.substr(name_len + 1);
  return true;
}

std::optional<double> parse_positive_double(const std::string& text,
                                            const char* what,
                                            std::string* error) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v <= 0.0) {
    if (error != nullptr) {
      *error = std::string("invalid ") + what + " '" + text +
               "' (want a positive number)";
    }
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       const char* what, std::string* error) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || text[0] == '-') {
    if (error != nullptr) {
      *error = std::string("invalid ") + what + " '" + text +
               "' (want a non-negative integer)";
    }
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

std::optional<unsigned> parse_thread_count(const std::string& text,
                                           std::string* error) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 1 || v > 4095) {
    if (error != nullptr) {
      *error = "invalid thread count '" + text + "' (want 1..4095)";
    }
    return std::nullopt;
  }
  return static_cast<unsigned>(v);
}

}  // namespace canu
