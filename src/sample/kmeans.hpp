// Deterministic seeded k-means for interval feature vectors.
//
// Reproducibility is a hard requirement: the sampler's cluster assignment
// decides which intervals are replayed, and canud caches sampled results
// under a key that includes only (workload, sampling params) — so the same
// inputs must always produce the same clusters on any machine at any
// thread count. Hence: our own splitmix64/xorshift PRNG (no libstdc++
// distribution variance), k-means++ seeding with fixed scan order, Lloyd
// iterations with a fixed point order, and all ties broken toward the
// lowest index. The solver itself is single-threaded — clustering a few
// hundred 24-dim points costs microseconds, so parallelism would only buy
// nondeterminism.
#pragma once

#include <cstdint>
#include <vector>

namespace canu {

struct KMeansResult {
  /// Cluster index per input point (size = number of points).
  std::vector<std::uint32_t> assignment;
  /// Flattened centroids: k rows of `dim` doubles.
  std::vector<double> centroids;
  std::size_t clusters = 0;
  std::size_t iterations = 0;  ///< Lloyd iterations until convergence/cap
};

/// Cluster `points` (row-major, `points.size() / dim` rows) into at most
/// `k` clusters. Requires at least one point and k >= 1; when there are
/// fewer points than clusters, the effective k is the point count. Fully
/// deterministic for a given (points, dim, k, seed).
KMeansResult kmeans(const std::vector<double>& points, std::size_t dim,
                    std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations = 50);

}  // namespace canu
