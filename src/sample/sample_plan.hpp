// Representative-interval selection (SimPoint-style) over per-interval
// feature vectors: standardize the vectors, cluster them with deterministic
// k-means, and pick each cluster's closest-to-centroid interval as the
// representative, weighted by the cluster's interval population. Sampled
// replay then simulates only the representatives (each primed by a short
// warm-up prefix) and extrapolates full-trace metrics with cluster-variance
// confidence intervals. See DESIGN.md §14.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/chunk_features.hpp"

namespace canu {

struct SampleOptions {
  /// Cluster count; 0 selects automatically: start at a small base
  /// (see auto_cluster_count) and double until the clustering's predicted
  /// probe-cache extrapolation bias is small (phased traces escalate,
  /// homogeneous ones stay cheap).
  std::size_t clusters = 0;
  std::uint64_t seed = 1;  ///< k-means seed (part of the result-cache key)
  /// Target half-width for the miss-rate CI95 in percentage points;
  /// 0 disables the check. When the achieved CI exceeds this, the planner
  /// is re-run once with doubled clusters (bounded escalation), then the
  /// result is accepted and annotated.
  double max_error_pct = 0.0;
  /// Intervals replayed (unmeasured) before each representative to prime
  /// cache state after the per-segment flush.
  std::size_t warmup_intervals = 2;
  /// Measured intervals per segment: the window starts at the
  /// representative and extends forward through consecutive intervals of
  /// the same cluster, up to this many. Longer windows amortize residual
  /// cold-start distortion over more measured references.
  std::size_t measure_intervals = 3;
};

/// One replay segment: a cache flush, `warmup` priming intervals, then a
/// measured window of `measure_intervals` consecutive intervals starting at
/// the representative (all assigned to the representative's cluster, so
/// windows never overlap another segment). The flush makes every segment's
/// measurement independent of segment order and of which other segments
/// run — stitched-together stale state otherwise biases measured intervals
/// in either direction. Segments are emitted in ascending interval order.
struct SampleSegment {
  std::size_t rep_interval = 0;   ///< measured window's first interval
  std::size_t first_interval = 0; ///< rep_interval - warmup (clamped to 0)
  std::size_t warmup = 0;         ///< priming intervals actually available
  std::size_t measure_intervals = 1;  ///< window length in intervals
  /// Cluster population divided by the window length: scaling each
  /// window's counter deltas by this weight keeps cluster proportions
  /// correct when windows differ in length.
  double weight = 0;
  /// Per-probe misses the measured window incurs with fully warm
  /// (persistent, whole-trace) probe state — from the feature sidecar.
  /// Replay re-simulates the same bank from the segment's flushed start;
  /// each scheme's matching probe's excess over this value estimates the
  /// segment's cold-start distortion for that scheme, subtracted from its
  /// measured misses.
  std::array<double, kProbeCount> probe_warm_misses{};
  std::uint32_t cluster = 0;
};

struct SamplePlan {
  /// True when sampling was refused (degenerate trace) — callers must run
  /// the exact engine and annotate the report with `reason`.
  bool exact = false;
  std::string reason;

  std::size_t clusters = 0;
  std::uint64_t seed = 1;
  std::size_t interval_refs = 0;
  std::uint64_t total_refs = 0;
  std::size_t total_intervals = 0;
  std::size_t warmup_intervals = 0;
  /// Line granularity the features (and thus the probe cache) used; the
  /// replay-side cold-start probe must fold addresses identically.
  unsigned offset_bits = 5;
  /// Segments sorted by first_interval; weights sum to total_intervals.
  std::vector<SampleSegment> segments;

  /// References fed to the engine (warm-up + measured), for speedup and
  /// fed-fraction accounting.
  std::uint64_t fed_refs = 0;
  /// References inside measured intervals only.
  std::uint64_t measured_refs = 0;
  /// Fraction of standardized feature variance the final clustering
  /// explains (1 - WCSS/TSS); 1.0 for fixed-K and degenerate plans.
  double explained_variance = 1.0;
  /// Whole-trace per-probe miss counts (sum over every interval of the
  /// sidecar's probe miss fraction times the interval's refs). Replay uses
  /// them as difference estimators: the plan's probe-projected prediction
  /// minus this known total is the clustering's drift bias on that probe,
  /// subtracted from each matching scheme's extrapolated miss rate.
  std::array<double, kProbeCount> probe_true_misses{};
};

/// Automatic *starting* cluster count for `intervals` feature vectors; the
/// planner doubles it until the predicted probe-cache extrapolation bias
/// drops below its target (see build_sample_plan).
std::size_t auto_cluster_count(std::size_t intervals);

/// Build a sampling plan from a feature set. Degenerate inputs (fewer
/// intervals than clusters would make meaningful, or an empty set) yield
/// plan.exact = true with a human-readable reason instead of a plan.
SamplePlan build_sample_plan(const FeatureSet& features,
                             const SampleOptions& options);

/// Conservative 95% confidence half-width for a weighted per-cluster
/// metric: 1.96 * sqrt(sum_c (w_c/W)^2 * s_c^2) where s_c^2 is the
/// between-interval variance of the metric within cluster c, estimated
/// from the feature-space spread. Exposed for tests; the replay layer
/// computes it from per-cluster replayed statistics.
double stratified_ci95(const std::vector<double>& weights,
                       const std::vector<double>& variances,
                       double total_weight);

}  // namespace canu
