#include "sample/sample_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sample/kmeans.hpp"
#include "util/error.hpp"

namespace canu {

std::size_t auto_cluster_count(std::size_t intervals) {
  // One starting cluster per ~256 K references (128 intervals of 2 K refs)
  // — deliberately independent of the interval granularity so refining
  // kSampleIntervalRefs sharpens clusters without inflating the base cost.
  return std::clamp<std::size_t>(intervals / 128, 6, 96);
}

namespace {

/// Adaptive-K stopping rule: the spread (max minus min) across the probe
/// bank of each probe's signed predicted extrapolation bias,
/// sum_c (n_c/n) * (probe_mean(window_c) - mean_c(probe)), must drop below
/// this before the planner accepts the clustering. Each probe's own bias
/// is removed exactly at replay time by a per-scheme difference estimator,
/// so a large but *uniform* bias (smooth drift — qsort, patricia) is
/// harmless and needs no extra clusters. What escalation must catch is
/// probe DISAGREEMENT: clusters mixing phases that alias differently under
/// different index functions (FFT's butterfly stages), where a correction
/// derived from one probe cannot stand in for schemes the bank does not
/// model (the trained Givargis family). 0.006 = 0.6 miss-rate points of
/// disagreement — calibrated so drifting traces whose spread plateaus near
/// 0.003–0.005 (patricia, qsort: noise, not phases) stay at base K, while
/// genuinely phased traces (FFT starts near 0.035) still escalate hard.
constexpr double kProbeSpreadTarget = 0.006;

double sq_dist(const double* a, const double* b, std::size_t dim) {
  double d = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

SamplePlan build_sample_plan(const FeatureSet& features,
                             const SampleOptions& options) {
  SamplePlan plan;
  plan.seed = options.seed;
  plan.interval_refs = static_cast<std::size_t>(features.interval_refs);
  plan.total_refs = features.total_refs;
  plan.total_intervals = features.intervals.size();
  plan.warmup_intervals = options.warmup_intervals;
  plan.offset_bits = features.offset_bits;
  for (const IntervalFeatures& iv : features.intervals) {
    for (std::size_t p = 0; p < kProbeCount; ++p) {
      plan.probe_true_misses[p] +=
          iv.values[kProbeMissDim + p] * static_cast<double>(iv.refs);
    }
  }

  const std::size_t n = features.intervals.size();
  const std::size_t k =
      options.clusters != 0 ? options.clusters : auto_cluster_count(n);
  plan.clusters = k;

  // Sampling only pays when there are meaningfully more intervals than
  // clusters; below that every cluster is a singleton and the "sample" is
  // the whole trace plus warm-up overhead.
  if (n == 0 || n <= k) {
    plan.exact = true;
    std::ostringstream os;
    os << "trace too small to sample (" << n << " interval"
       << (n == 1 ? "" : "s") << " of " << features.interval_refs
       << " refs vs " << k << " clusters); replayed exactly";
    plan.reason = os.str();
    return plan;
  }

  // Standardize each feature dimension to zero mean / unit variance so the
  // clustering is not dominated by whichever raw feature has the widest
  // numeric range. Constant dimensions are dropped (scale 0).
  std::vector<double> mean(kFeatureDim, 0.0), scale(kFeatureDim, 0.0);
  for (const IntervalFeatures& iv : features.intervals) {
    for (std::size_t d = 0; d < kFeatureDim; ++d) mean[d] += iv.values[d];
  }
  for (double& m : mean) m /= static_cast<double>(n);
  for (const IntervalFeatures& iv : features.intervals) {
    for (std::size_t d = 0; d < kFeatureDim; ++d) {
      const double diff = iv.values[d] - mean[d];
      scale[d] += diff * diff;
    }
  }
  for (double& s : scale) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s > 0) s = 1.0 / s;
  }

  std::vector<double> points;
  points.reserve(n * kFeatureDim);
  for (const IntervalFeatures& iv : features.intervals) {
    for (std::size_t d = 0; d < kFeatureDim; ++d) {
      points.push_back((iv.values[d] - mean[d]) * scale[d]);
    }
  }

  const auto point_at = [&](std::size_t i) {
    return points.data() + i * kFeatureDim;
  };
  const auto wcss_of = [&](const KMeansResult& r) {
    double w = 0;
    for (std::size_t i = 0; i < n; ++i) {
      w += sq_dist(point_at(i),
                   r.centroids.data() + r.assignment[i] * kFeatureDim,
                   kFeatureDim);
    }
    return w;
  };

  // Representatives + measured windows per cluster. The representative is
  // the interval nearest its centroid (ties toward the lowest index —
  // strict < keeps first-found); its window extends forward through
  // consecutive intervals of the same cluster, up to measure_intervals.
  // Windows therefore never contain another cluster's representative.
  struct RepWindow {
    std::size_t rep = 0;
    std::size_t len = 0;       // 0 = empty cluster
    double population = 0;     // intervals in the cluster
  };
  const std::size_t measure = std::max<std::size_t>(1,
                                                    options.measure_intervals);
  const auto reps_of = [&](const KMeansResult& r) {
    std::vector<RepWindow> win(r.clusters);
    std::vector<double> rep_dist(r.clusters,
                                 std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = r.assignment[i];
      win[c].population += 1.0;
      const double d = sq_dist(point_at(i),
                               r.centroids.data() + c * kFeatureDim,
                               kFeatureDim);
      if (d < rep_dist[c]) {
        rep_dist[c] = d;
        win[c].rep = i;
        win[c].len = 1;
      }
    }
    for (std::size_t c = 0; c < r.clusters; ++c) {
      RepWindow& w = win[c];
      while (w.len > 0 && w.len < measure && w.rep + w.len < n &&
             r.assignment[w.rep + w.len] == c) {
        ++w.len;
      }
    }
    return win;
  };

  // Signed predicted extrapolation bias per probe:
  // sum_c (n_c/n) * (probe_mean(window_c) - mean_c(probe)) — the error
  // this plan would make predicting that probe's full-trace miss rate, a
  // quantity whose ground truth the planner holds. Signed accumulation is
  // deliberate: smooth within-cluster drift leaves windows scattered on
  // both sides of their cluster means (errors cancel, as they do in the
  // real extrapolation), while clusters mixing distinct phases push
  // windows systematically into one mode.
  const auto probe_of = [&](std::size_t i, std::size_t p) {
    return features.intervals[i].values[kProbeMissDim + p];
  };
  const auto probe_biases_of = [&](const KMeansResult& r,
                                   const std::vector<RepWindow>& win) {
    std::array<double, kProbeCount> bias{};
    for (std::size_t p = 0; p < kProbeCount; ++p) {
      std::vector<double> sum(r.clusters, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        sum[r.assignment[i]] += probe_of(i, p);
      }
      for (std::size_t c = 0; c < r.clusters; ++c) {
        const RepWindow& w = win[c];
        if (w.population == 0 || w.len == 0) continue;
        double window_mean = 0;
        for (std::size_t i = w.rep; i < w.rep + w.len; ++i) {
          window_mean += probe_of(i, p);
        }
        window_mean /= static_cast<double>(w.len);
        bias[p] += (w.population / static_cast<double>(n)) *
                   (window_mean - sum[c] / w.population);
      }
    }
    return bias;
  };
  const auto probe_spread_of = [&](const KMeansResult& r,
                                   const std::vector<RepWindow>& win) {
    const std::array<double, kProbeCount> bias = probe_biases_of(r, win);
    const auto [lo, hi] = std::minmax_element(bias.begin(), bias.end());
    return *hi - *lo;
  };

  KMeansResult km = kmeans(points, kFeatureDim, k, options.seed);
  std::vector<RepWindow> windows = reps_of(km);
  if (options.clusters == 0) {
    // Adaptive K: double the cluster count until the probes agree on the
    // plan's drift bias (or the cap is hit) — phased traces whose phases
    // alias differently under different index functions (FFT's butterfly
    // stages) need far more representatives than drifting-but-uniform
    // ones, and a fixed ratio either misses their phases or wastes replay
    // time everywhere else.
    const std::size_t cap = std::min<std::size_t>(96, std::max(k, n / 12));
    const bool debug = std::getenv("CANU_SAMPLE_DEBUG") != nullptr;
    while (probe_spread_of(km, windows) > kProbeSpreadTarget &&
           km.clusters < cap) {
      if (debug) {
        std::fprintf(stderr, "[sample]   k=%zu spread=%.5f -> escalate\n",
                     km.clusters, probe_spread_of(km, windows));
      }
      km = kmeans(points, kFeatureDim,
                  std::min(cap, km.clusters * 2), options.seed);
      windows = reps_of(km);
    }
  }
  {
    // Explained fraction of the standardized feature variance — reported
    // in plan provenance, not used as the stopping rule.
    double tss = 0;
    for (const double v : points) tss += v * v;
    plan.explained_variance = tss > 0 ? 1.0 - wcss_of(km) / tss : 1.0;
  }
  if (std::getenv("CANU_SAMPLE_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[sample] n=%zu k=%zu explained=%.4f probe_spread=%.5f\n",
                 n, km.clusters, plan.explained_variance,
                 probe_spread_of(km, windows));
  }
  plan.clusters = km.clusters;

  for (std::size_t c = 0; c < km.clusters; ++c) {
    const RepWindow& w = windows[c];
    if (w.len == 0) continue;  // empty cluster contributes nothing
    SampleSegment seg;
    seg.rep_interval = w.rep;
    seg.warmup = std::min(options.warmup_intervals, w.rep);
    seg.first_interval = w.rep - seg.warmup;
    seg.measure_intervals = w.len;
    seg.weight = w.population / static_cast<double>(w.len);
    for (std::size_t i = w.rep; i < w.rep + w.len; ++i) {
      for (std::size_t p = 0; p < kProbeCount; ++p) {
        seg.probe_warm_misses[p] +=
            probe_of(i, p) * static_cast<double>(features.intervals[i].refs);
      }
    }
    seg.cluster = static_cast<std::uint32_t>(c);
    plan.segments.push_back(seg);
  }
  std::sort(plan.segments.begin(), plan.segments.end(),
            [](const SampleSegment& a, const SampleSegment& b) {
              return a.first_interval < b.first_interval;
            });

  // Account fed references. Every segment replays from a flushed cache, so
  // warm-up intervals are re-fed even when segments overlap.
  const auto interval_refs_at = [&](std::size_t i) {
    return features.intervals[i].refs;
  };
  for (const SampleSegment& seg : plan.segments) {
    const std::size_t end = seg.rep_interval + seg.measure_intervals;
    for (std::size_t i = seg.first_interval; i < end; ++i) {
      plan.fed_refs += interval_refs_at(i);
    }
    for (std::size_t i = seg.rep_interval; i < end; ++i) {
      plan.measured_refs += interval_refs_at(i);
    }
  }
  return plan;
}

double stratified_ci95(const std::vector<double>& weights,
                       const std::vector<double>& variances,
                       double total_weight) {
  CANU_CHECK_MSG(weights.size() == variances.size(),
                 "weights/variances size mismatch");
  if (total_weight <= 0) return 0;
  double sum = 0;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    const double frac = weights[c] / total_weight;
    sum += frac * frac * std::max(0.0, variances[c]);
  }
  return 1.96 * std::sqrt(sum);
}

}  // namespace canu
