#include "sample/kmeans.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace canu {

namespace {

/// splitmix64: seeds the generator from any 64-bit value, including 0.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xorshift64*: the per-draw generator. Identical sequence everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    state_ = splitmix64(s);
    if (state_ == 0) state_ = 0x2545f4914f6cdd1dULL;
  }

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

double sq_dist(const double* a, const double* b, std::size_t dim) {
  double d = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

KMeansResult kmeans(const std::vector<double>& points, std::size_t dim,
                    std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations) {
  CANU_CHECK_MSG(dim > 0, "feature dimension must be positive");
  CANU_CHECK_MSG(points.size() % dim == 0,
                 "point array size " << points.size()
                                     << " not a multiple of dim " << dim);
  const std::size_t n = points.size() / dim;
  CANU_CHECK_MSG(n > 0, "kmeans needs at least one point");
  CANU_CHECK_MSG(k > 0, "kmeans needs at least one cluster");
  if (k > n) k = n;

  const auto point = [&](std::size_t i) { return points.data() + i * dim; };

  // k-means++ seeding: first centroid drawn uniformly, each further one
  // with probability proportional to squared distance from the nearest
  // chosen centroid. Scan order is the fixed point order, so the choice is
  // reproducible bit-for-bit.
  Rng rng(seed);
  KMeansResult result;
  result.clusters = k;
  result.centroids.resize(k * dim);
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());

  std::size_t first = static_cast<std::size_t>(rng.next() % n);
  for (std::size_t d = 0; d < dim; ++d) {
    result.centroids[d] = point(first)[d];
  }
  for (std::size_t c = 1; c < k; ++c) {
    const double* prev = result.centroids.data() + (c - 1) * dim;
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = sq_dist(point(i), prev, dim);
      if (d < min_dist[i]) min_dist[i] = d;
      total += min_dist[i];
    }
    std::size_t chosen = 0;
    if (total > 0) {
      const double target = rng.uniform() * total;
      double running = 0;
      chosen = n - 1;  // guard against rounding leaving the loop unmatched
      for (std::size_t i = 0; i < n; ++i) {
        running += min_dist[i];
        if (running >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points coincide with chosen centroids; duplicate point 0.
      chosen = 0;
    }
    for (std::size_t d = 0; d < dim; ++d) {
      result.centroids[c * dim + d] = point(chosen)[d];
    }
  }

  // Lloyd iterations in fixed point order; nearest-centroid ties go to the
  // lowest cluster index. An empty cluster re-seeds from the point farthest
  // from its own centroid (deterministic: first-found maximum).
  result.assignment.assign(n, 0);
  std::vector<double> sums(k * dim);
  std::vector<std::uint64_t> counts(k);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d =
            sq_dist(point(i), result.centroids.data() + c * dim, dim);
        if (d < best_d) {
          best_d = d;
          best = static_cast<std::uint32_t>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
      ++counts[best];
      double* sum = sums.data() + best * dim;
      const double* p = point(i);
      for (std::size_t d = 0; d < dim; ++d) sum[d] += p[d];
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed the empty cluster with the point worst served by its
        // current assignment.
        std::size_t worst = 0;
        double worst_d = -1;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sq_dist(
              point(i),
              result.centroids.data() + result.assignment[i] * dim, dim);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        for (std::size_t d = 0; d < dim; ++d) {
          result.centroids[c * dim + d] = point(worst)[d];
        }
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c * dim + d] = sums[c * dim + d] * inv;
      }
    }
  }
  return result;
}

}  // namespace canu
