// Always-on service telemetry primitives (DESIGN.md §15): a lock-free
// log-bucketed latency histogram with linear sub-buckets (accurate
// p50/p90/p99/p999 by interpolation inside the exact bucket), and a
// sliding-window rate estimator over per-second ring slots.
//
// Cost model: unlike the session-scoped registry in obs.hpp (off by
// default, per-thread blocks), these types are built to run *unconditionally*
// inside the daemon — every write is a handful of relaxed atomic adds, no
// locks, no allocation, no clock reads (callers pass time in). The
// simulation hot path keeps its off-by-default contract: nothing here is
// touched per simulated access, only per service request.
//
// Defining CANU_OBS_DISABLED compiles the recording paths to no-ops so the
// telemetry-overhead bench (tools/bench_timings.sh) can compare a live
// daemon against a provably instrumentation-free build.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace canu::obs {

// --------------------------------------------------------------------------
// Latency histogram

/// Bucket layout: bucket 0 holds zeros; values v >= 1 map to major bucket
/// bit_width(v) (range [2^(m-1), 2^m)) split into kLatencySub linear
/// sub-buckets. 48 majors cover any nanosecond duration we can see; 16
/// sub-buckets bound the within-bucket relative error of an interpolated
/// quantile at ~1/16.
inline constexpr unsigned kLatencyMajor = 48;
inline constexpr unsigned kLatencySub = 16;
inline constexpr unsigned kLatencyBuckets = 1 + kLatencyMajor * kLatencySub;

/// Index of the bucket holding `v`.
unsigned latency_bucket(std::uint64_t v) noexcept;
/// Inclusive lower bound of bucket `b`.
std::uint64_t latency_bucket_lower(unsigned b) noexcept;
/// Exclusive upper bound of bucket `b` (always > lower).
std::uint64_t latency_bucket_upper(unsigned b) noexcept;

/// A point-in-time copy of a LatencyHistogram: plain integers, safe to
/// merge, interpolate and serialize without further synchronization.
struct LatencySnapshot {
  std::array<std::uint64_t, kLatencyBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Interpolated quantile (q in [0,1]): walks the cumulative counts to the
  /// bucket containing rank q*count and interpolates linearly between the
  /// bucket's exact bounds. Returns 0 for an empty histogram.
  double quantile(double q) const noexcept;
  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  void merge(const LatencySnapshot& other) noexcept;
};

/// Concurrent histogram: record() is wait-free relaxed atomic adds from any
/// thread; snapshot() is a racy-but-consistent-enough read (telemetry, not
/// accounting — a snapshot taken mid-record may be off by the in-flight
/// sample).
class LatencyHistogram {
 public:
  void record(std::uint64_t v) noexcept {
#ifndef CANU_OBS_DISABLED
    buckets_[latency_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  LatencySnapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// --------------------------------------------------------------------------
// Sliding-window rate estimator

/// Ring of per-second slots. record(now_s) adds to the slot for the current
/// second (lazily resetting a slot the ring has wrapped past); sum(now_s, w)
/// totals the slots covering (now_s - w, now_s]. Callers supply the clock —
/// the daemon passes seconds-since-start, tests pass a fake clock.
class RateWindow {
 public:
  /// Must exceed the largest window queried (300 s) by enough slack that a
  /// slot is never simultaneously "current" and "about to be summed as old".
  static constexpr unsigned kSlots = 512;

  void record(std::uint64_t now_s, std::uint64_t n = 1) noexcept {
#ifndef CANU_OBS_DISABLED
    Slot& slot = slots_[now_s % kSlots];
    std::uint64_t stamped = slot.second.load(std::memory_order_relaxed);
    if (stamped != now_s) {
      // One racer wins the restamp and zeroes the slot; losers just add.
      // A concurrent add can slip between the restamp and the zero — an
      // acceptable under-count of one sample at a second boundary.
      if (slot.second.compare_exchange_strong(stamped, now_s,
                                              std::memory_order_relaxed)) {
        slot.count.store(0, std::memory_order_relaxed);
      }
    }
    slot.count.fetch_add(n, std::memory_order_relaxed);
    total_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)now_s;
    (void)n;
#endif
  }

  /// Events recorded in the window (now_s - window_s, now_s].
  std::uint64_t sum(std::uint64_t now_s, unsigned window_s) const noexcept;
  /// Events per second over the window.
  double rate(std::uint64_t now_s, unsigned window_s) const noexcept {
    return window_s == 0 ? 0.0
                         : static_cast<double>(sum(now_s, window_s)) /
                               static_cast<double>(window_s);
  }
  /// All events ever recorded (monotonic, window-independent).
  std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> second{kEmpty};
    std::atomic<std::uint64_t> count{0};
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::array<Slot, kSlots> slots_{};
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace canu::obs
