// Minimal JSON support for the observability artifacts: a streaming writer
// (run manifests, Chrome trace-event files) and a small recursive-descent
// parser (the manifest reader used by tests and tooling).
//
// Deliberately tiny rather than general: objects preserve no duplicate
// keys, numbers are IEEE doubles (counters in practice stay far below
// 2^53), and the parser exists so a manifest can round-trip without an
// external dependency — the container bakes in no JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace canu::obs {

/// Parsed JSON value. Accessors throw canu::Error on kind mismatch, so a
/// malformed manifest fails loudly instead of reading zeros.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const noexcept;
  bool is_bool() const noexcept;
  bool is_number() const noexcept;
  bool is_string() const noexcept;
  bool is_array() const noexcept;
  bool is_object() const noexcept;

  bool as_bool() const;
  double as_number() const;
  std::uint64_t as_u64() const;  ///< as_number, checked non-negative integral
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent (throws if not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws canu::Error when absent.
  const JsonValue& at(const std::string& key) const;

  /// Parse a complete JSON document; throws canu::Error on malformed input
  /// or trailing garbage.
  static JsonValue parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Quote + escape a string for JSON output.
std::string json_quote(std::string_view s);

/// Streaming JSON writer with two-space indentation. Callers drive the
/// nesting (begin/end must balance); keys apply to the enclosing object.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::uint64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool b);

  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  void pre_value();
  void newline_indent();

  std::ostream* os_;
  /// One entry per open container: whether it already holds an element.
  std::vector<bool> has_elems_;
  bool pending_key_ = false;
};

}  // namespace canu::obs
