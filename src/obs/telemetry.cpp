#include "obs/telemetry.hpp"

namespace canu::obs {

unsigned latency_bucket(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  unsigned m = static_cast<unsigned>(std::bit_width(v));
  if (m > kLatencyMajor) return kLatencyBuckets - 1;  // clamp huge values
  const std::uint64_t lo = std::uint64_t{1} << (m - 1);
  // Sub-bucket = top bits after the leading one; (v - lo) < lo <= 2^47 so
  // the multiply cannot overflow.
  const unsigned sub = static_cast<unsigned>((v - lo) * kLatencySub / lo);
  return 1 + (m - 1) * kLatencySub + sub;
}

std::uint64_t latency_bucket_lower(unsigned b) noexcept {
  if (b == 0) return 0;
  const unsigned m = (b - 1) / kLatencySub + 1;
  const unsigned sub = (b - 1) % kLatencySub;
  const std::uint64_t lo = std::uint64_t{1} << (m - 1);
  return lo + lo * sub / kLatencySub;
}

std::uint64_t latency_bucket_upper(unsigned b) noexcept {
  if (b == 0) return 1;
  const unsigned m = (b - 1) / kLatencySub + 1;
  const unsigned sub = (b - 1) % kLatencySub;
  const std::uint64_t lo = std::uint64_t{1} << (m - 1);
  const std::uint64_t upper = lo + lo * (sub + 1) / kLatencySub;
  const std::uint64_t lower = lo + lo * sub / kLatencySub;
  // Narrow majors (lo < kLatencySub) produce zero-width sub-buckets; keep
  // every bucket at least one wide so interpolation never divides by zero.
  return upper > lower ? upper : lower + 1;
}

double LatencySnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  std::uint64_t cumulative = 0;
  unsigned last_nonzero = 0;
  for (unsigned b = 0; b < kLatencyBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[b];
    last_nonzero = b;
    if (static_cast<double>(cumulative) >= target) {
      const double lo = static_cast<double>(latency_bucket_lower(b));
      const double hi = static_cast<double>(latency_bucket_upper(b));
      const double frac = (target - static_cast<double>(before)) /
                          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
  }
  return static_cast<double>(latency_bucket_upper(last_nonzero));
}

void LatencySnapshot::merge(const LatencySnapshot& other) noexcept {
  for (unsigned b = 0; b < kLatencyBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
}

LatencySnapshot LatencyHistogram::snapshot() const noexcept {
  LatencySnapshot snap;
  for (unsigned b = 0; b < kLatencyBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t RateWindow::sum(std::uint64_t now_s,
                              unsigned window_s) const noexcept {
  if (window_s == 0) return 0;
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t stamped = slot.second.load(std::memory_order_relaxed);
    if (stamped == kEmpty || stamped > now_s) continue;
    if (now_s - stamped < window_s) {
      total += slot.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

}  // namespace canu::obs
