#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace canu::obs {

// --------------------------------------------------------------------------
// JsonValue

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool JsonValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(value_);
}
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(value_);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(value_);
}
bool JsonValue::is_array() const noexcept {
  return std::holds_alternative<Array>(value_);
}
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<Object>(value_);
}

bool JsonValue::as_bool() const {
  CANU_CHECK_MSG(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}
double JsonValue::as_number() const {
  CANU_CHECK_MSG(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}
std::uint64_t JsonValue::as_u64() const {
  const double d = as_number();
  CANU_CHECK_MSG(d >= 0 && d == std::floor(d),
                 "JSON number is not a non-negative integer: " << d);
  return static_cast<std::uint64_t>(d);
}
const std::string& JsonValue::as_string() const {
  CANU_CHECK_MSG(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}
const JsonValue::Array& JsonValue::as_array() const {
  CANU_CHECK_MSG(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}
const JsonValue::Object& JsonValue::as_object() const {
  CANU_CHECK_MSG(is_object(), "JSON value is not an object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  CANU_CHECK_MSG(v != nullptr, "JSON object has no member '" << key << "'");
  return *v;
}

// --------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    CANU_CHECK_MSG(pos_ == text_.size(),
                   "trailing characters after JSON document at offset "
                       << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; decode them as-is if ever seen).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("invalid number '" + num + "'");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// --------------------------------------------------------------------------
// Writer

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::newline_indent() {
  *os_ << '\n';
  for (std::size_t i = 0; i < has_elems_.size(); ++i) *os_ << "  ";
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_elems_.empty()) return;
  if (has_elems_.back()) *os_ << ',';
  has_elems_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  pre_value();
  *os_ << '{';
  has_elems_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had = has_elems_.back();
  has_elems_.pop_back();
  if (had) newline_indent();
  *os_ << '}';
}

void JsonWriter::begin_array() {
  pre_value();
  *os_ << '[';
  has_elems_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had = has_elems_.back();
  has_elems_.pop_back();
  if (had) newline_indent();
  *os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  if (has_elems_.back()) *os_ << ',';
  has_elems_.back() = true;
  newline_indent();
  *os_ << json_quote(k) << ": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  pre_value();
  *os_ << json_quote(s);
}

void JsonWriter::value(double d) {
  pre_value();
  char buf[64];
  // %.17g round-trips doubles; JSON has no NaN/Inf, clamp to null.
  if (std::isfinite(d)) {
    std::snprintf(buf, sizeof buf, "%.17g", d);
    *os_ << buf;
  } else {
    *os_ << "null";
  }
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  *os_ << v;
}

void JsonWriter::value(bool b) {
  pre_value();
  *os_ << (b ? "true" : "false");
}

}  // namespace canu::obs
