#include "obs/obs.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "util/error.hpp"

namespace canu::obs {

// --------------------------------------------------------------------------
// Names

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kTraceRecordsGenerated: return "trace_records_generated";
    case Counter::kChunksProduced: return "chunks_produced";
    case Counter::kChunksConsumed: return "chunks_consumed";
    case Counter::kChunkReplays: return "chunk_replays";
    case Counter::kBufferFullStallNs: return "buffer_full_stall_ns";
    case Counter::kBufferEmptyStallNs: return "buffer_empty_stall_ns";
    case Counter::kTraceCacheHits: return "trace_cache_hits";
    case Counter::kTraceCacheMisses: return "trace_cache_misses";
    case Counter::kTraceCacheStores: return "trace_cache_stores";
    case Counter::kTraceCacheBytesRead: return "trace_cache_bytes_read";
    case Counter::kTraceCacheBytesWritten: return "trace_cache_bytes_written";
    case Counter::kPoolTasksExecuted: return "pool_tasks_executed";
    case Counter::kPoolQueueWaitNs: return "pool_queue_wait_ns";
    case Counter::kGivargisTrainings: return "givargis_trainings";
    case Counter::kWorkloadsEvaluated: return "workloads_evaluated";
    case Counter::kL1Accesses: return "l1_accesses";
    case Counter::kL1Hits: return "l1_hits";
    case Counter::kL1Misses: return "l1_misses";
    case Counter::kL1Evictions: return "l1_evictions";
    case Counter::kL1Writebacks: return "l1_writebacks";
    case Counter::kL2Accesses: return "l2_accesses";
    case Counter::kL2Misses: return "l2_misses";
    case Counter::kL2Evictions: return "l2_evictions";
    case Counter::kL2Writebacks: return "l2_writebacks";
    case Counter::kSvcRequests: return "svc_requests";
    case Counter::kSvcOverloadRejections: return "svc_overload_rejections";
    case Counter::kSvcResultCacheHits: return "svc_result_cache_hits";
    case Counter::kSvcResultCacheMisses: return "svc_result_cache_misses";
    case Counter::kSvcCoalescedRequests: return "svc_coalesced_requests";
    case Counter::kSvcDeadlineExceeded: return "svc_deadline_exceeded";
    case Counter::kSvcCancelled: return "svc_cancelled";
    case Counter::kSvcJournalRestored: return "svc_journal_restored";
    case Counter::kSvcJournalRecoveries: return "svc_journal_recoveries";
    case Counter::kSvcJournalCompactions: return "svc_journal_compactions";
    case Counter::kGridCellsEvaluated: return "grid_cells_evaluated";
    case Counter::kPlanClassesFormed: return "plan_classes_formed";
    case Counter::kSamplePlansTrained: return "sample_plans_trained";
    case Counter::kFeatureSidecarHits: return "feature_sidecar_hits";
    case Counter::kFeatureSidecarMisses: return "feature_sidecar_misses";
    case Counter::kFeatureSidecarRegens: return "feature_sidecar_regens";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) noexcept {
  switch (h) {
    case Hist::kPoolQueueWaitNs: return "pool_queue_wait_ns";
    case Hist::kChunkReplayNs: return "chunk_replay_ns";
    case Hist::kSvcRequestNs: return "svc_request_ns";
    case Hist::kCount: break;
  }
  return "unknown";
}

// --------------------------------------------------------------------------
// Session plumbing

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<Session*> g_session{nullptr};
/// Bumped on every install/uninstall so cached thread-local slot pointers
/// from an earlier session are never reused for a later one.
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::uint64_t> g_start_ns{0};

}  // namespace

/// One span recorded on some thread's track.
struct SpanEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* cat = nullptr;
  const char* name = nullptr;   ///< static name, or nullptr → dyn_name
  std::string dyn_name;
  const char* arg_name = nullptr;
  std::uint64_t arg_value = 0;
};

struct Session::ThreadSlot {
  CounterBlock block;
  std::vector<SpanEvent> spans;
  std::uint64_t tid = 0;  ///< registration order; 0 is the installing thread
};

/// Thread-local cache of this thread's slot in the active session; the
/// epoch check re-registers the thread after a session change.
struct SpanSink {
  static thread_local Session::ThreadSlot* slot;
  static thread_local std::uint64_t epoch;

  static Session::ThreadSlot* current() {
    const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
    if (epoch != e) {
      Session* s = g_session.load(std::memory_order_acquire);
      slot = s ? s->slot_for_this_thread() : nullptr;
      epoch = e;
    }
    return slot;
  }
};
thread_local Session::ThreadSlot* SpanSink::slot = nullptr;
thread_local std::uint64_t SpanSink::epoch = 0;

#ifndef CANU_OBS_DISABLED
namespace detail {
std::atomic<bool> metrics_flag{false};
std::atomic<bool> spans_flag{false};

CounterBlock* local_block() {
  if (auto* slot = SpanSink::current()) return &slot->block;
  // Session torn down between the flag check and here; drop into a scratch
  // block rather than crash (install/uninstall normally happen with no
  // workers running, so this is a safety net, not a code path).
  static thread_local CounterBlock scratch;
  return &scratch;
}
}  // namespace detail

std::uint64_t now_ns() noexcept {
  const std::uint64_t base = g_start_ns.load(std::memory_order_relaxed);
  if (base == 0) return 0;
  const std::uint64_t now = steady_now_ns();
  return now > base ? now - base : 0;
}

void Span::start(const char* arg_name, std::uint64_t arg_value) {
  arg_name_ = arg_name;
  arg_value_ = arg_value;
  start_ns_ = now_ns();
  active_ = true;
}

void Span::finish() noexcept {
  active_ = false;
  if (!spans_on()) return;
  auto* slot = SpanSink::current();
  if (slot == nullptr) return;
  const std::uint64_t end = now_ns();
  try {
    slot->spans.push_back(SpanEvent{
        start_ns_, end > start_ns_ ? end - start_ns_ : 0, cat_, name_,
        std::move(dynamic_name_), arg_name_, arg_value_});
  } catch (...) {
    // Out of memory while recording a span: drop the event.
  }
}
#endif  // CANU_OBS_DISABLED

// --------------------------------------------------------------------------
// Session

Session::Session(SessionOptions options)
    : options_(options), start_ns_(steady_now_ns()) {}

Session::~Session() = default;

Session* Session::active() noexcept {
  return g_session.load(std::memory_order_acquire);
}

Session* Session::install(SessionOptions options) {
  CANU_CHECK_MSG(g_session.load(std::memory_order_acquire) == nullptr,
                 "an observability session is already active");
  auto* session = new Session(options);
  g_start_ns.store(session->start_ns_, std::memory_order_relaxed);
  g_session.store(session, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
#ifndef CANU_OBS_DISABLED
  detail::metrics_flag.store(options.metrics, std::memory_order_release);
  detail::spans_flag.store(options.spans, std::memory_order_release);
#endif
  return session;
}

void Session::uninstall() {
#ifndef CANU_OBS_DISABLED
  detail::metrics_flag.store(false, std::memory_order_release);
  detail::spans_flag.store(false, std::memory_order_release);
#endif
  Session* session = g_session.exchange(nullptr, std::memory_order_acq_rel);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  g_start_ns.store(0, std::memory_order_relaxed);
  delete session;
}

Session::ThreadSlot* Session::slot_for_this_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto slot = std::make_unique<ThreadSlot>();
  slot->tid = slots_.size();
  slots_.push_back(std::move(slot));
  return slots_.back().get();
}

CounterBlock* Session::register_thread() {
  if (Session::ThreadSlot* slot = SpanSink::current();
      slot != nullptr && active() == this) {
    return &slot->block;
  }
  return &slot_for_this_thread()->block;
}

MetricsSnapshot Session::metrics_snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& slot : slots_) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      snap.counters[i] += slot->block.counters[i];
    }
    for (std::size_t i = 0; i < kHistCount; ++i) {
      snap.hists[i].merge(slot->block.hists[i]);
    }
  }
  return snap;
}

void Session::write_trace_events(std::ostream& os) const {
  struct Track {
    std::uint64_t tid;
    std::vector<SpanEvent> events;
  };
  std::vector<Track> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks.reserve(slots_.size());
    for (const auto& slot : slots_) {
      tracks.push_back(Track{slot->tid, slot->spans});
    }
  }
  // Spans are appended at close, so children precede their parents; Chrome
  // wants "X" events sorted by start time. Ties (possible at coarse clock
  // resolution) put the longer — enclosing — span first.
  for (Track& t : tracks) {
    std::stable_sort(t.events.begin(), t.events.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       if (a.start_ns != b.start_ns)
                         return a.start_ns < b.start_ns;
                       return a.dur_ns > b.dur_ns;
                     });
  }

  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();
  // Metadata: one named track per registered thread. Thread 0 is the thread
  // that installed the session (the CLI main thread, which also drives
  // trace generation); the rest are pool workers.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.key("args");
  w.begin_object();
  w.kv("name", "canu");
  w.end_object();
  w.end_object();
  for (const Track& t : tracks) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", t.tid);
    w.key("args");
    w.begin_object();
    w.kv("name", t.tid == 0 ? std::string("main/generate")
                            : "worker-" + std::to_string(t.tid));
    w.end_object();
    w.end_object();
  }
  for (const Track& t : tracks) {
    for (const SpanEvent& ev : t.events) {
      w.begin_object();
      w.kv("name", ev.name != nullptr ? std::string_view(ev.name)
                                      : std::string_view(ev.dyn_name));
      w.kv("cat", ev.cat);
      w.kv("ph", "X");
      w.kv("pid", 1);
      w.kv("tid", t.tid);
      // Trace-event timestamps are microseconds; keep ns precision as the
      // fractional part.
      w.kv("ts", static_cast<double>(ev.start_ns) / 1000.0);
      w.kv("dur", static_cast<double>(ev.dur_ns) / 1000.0);
      if (ev.arg_name != nullptr) {
        w.key("args");
        w.begin_object();
        w.kv(ev.arg_name, ev.arg_value);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void Session::record_eval_config(EvalConfigRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = std::move(rec);
  have_config_ = true;
}

void Session::record_workload(WorkloadRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  workloads_.push_back(std::move(rec));
}

void Session::set_command(std::string command) {
  std::lock_guard<std::mutex> lock(mutex_);
  command_ = std::move(command);
}

double Session::elapsed_s() const noexcept {
  return static_cast<double>(steady_now_ns() - start_ns_) / 1e9;
}

// --------------------------------------------------------------------------
// Output wiring

namespace {
OutputConfig g_output;
bool g_outputs_active = false;
}  // namespace

void install_outputs(const OutputConfig& out) {
  if (out.manifest_path.empty() && out.trace_event_path.empty()) return;
  SessionOptions options;
  options.metrics = true;
  options.spans = !out.trace_event_path.empty();
  Session* session = Session::install(options);
  session->set_command(out.command);
  g_output = out;
  g_outputs_active = true;
}

void finalize_outputs() {
  if (!g_outputs_active) return;
  g_outputs_active = false;
  Session* session = Session::active();
  if (session == nullptr) return;
  if (!g_output.manifest_path.empty()) {
    write_manifest_file(*session, g_output.manifest_path);
  }
  if (!g_output.trace_event_path.empty()) {
    std::ofstream os(g_output.trace_event_path);
    CANU_CHECK_MSG(os.good(), "cannot open trace-event file '"
                                  << g_output.trace_event_path << "'");
    session->write_trace_events(os);
    CANU_CHECK_MSG(os.good(), "failed writing trace-event file '"
                                  << g_output.trace_event_path << "'");
  }
  Session::uninstall();
}

// --------------------------------------------------------------------------
// Progress heartbeat

ProgressFn make_progress_printer(bool force) {
  if (!force && isatty(fileno(stderr)) == 0) return ProgressFn();
  const auto start = std::chrono::steady_clock::now();
  return [start](std::size_t done, std::size_t total,
                 const std::string& item) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::fprintf(stderr, "[canu] %zu/%zu workloads, %.1fs elapsed%s%s\n", done,
                 total, elapsed, item.empty() ? "" : ", last: ", item.c_str());
  };
}

}  // namespace canu::obs
