// Run manifest: a single JSON artifact per run capturing what was executed
// (command, config, seed, scale, threads, CANU version), how long each
// workload × scheme took, and the aggregated observability metrics. Written
// by `canu --metrics-out=FILE` and the benches; `read_manifest` round-trips
// it so tests and tooling can diff perf trajectories machine-readably.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace canu::obs {

/// A manifest parsed back from JSON.
struct RunManifest {
  std::string version;
  std::string command;
  double wall_s = 0;
  EvalConfigRecord options;
  std::vector<WorkloadRecord> workloads;
  std::map<std::string, std::uint64_t> counters;

  struct HistSummary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double mean = 0;
  };
  std::map<std::string, HistSummary> histograms;
};

/// Serialize the session's accumulated records + metrics snapshot.
void write_manifest(const Session& session, std::ostream& os);

/// write_manifest to `path`; throws canu::Error on I/O failure.
void write_manifest_file(const Session& session, const std::string& path);

/// Parse a manifest document; throws canu::Error on malformed input.
RunManifest read_manifest(std::string_view text);

/// read_manifest from `path`; throws canu::Error if unreadable.
RunManifest read_manifest_file(const std::string& path);

}  // namespace canu::obs
