// Runtime observability layer (DESIGN.md §10): a metrics registry of cheap
// per-thread counters/histograms, scoped spans emitted as Chrome/Perfetto
// trace-event JSON, and the Session that aggregates both into run
// artifacts (the run manifest, obs/manifest.hpp).
//
// Cost model — the layer must be provably free when off:
//  * Off by default. Every hot-path helper first reads one relaxed atomic
//    flag; with no session installed that is the entire cost (no atomics,
//    no locks, no clock reads on the replay path).
//  * When on, counters are plain uint64_t slots in a per-thread block owned
//    by the session — workers increment their own block with ordinary
//    stores and the session sums blocks only at snapshot time. Spans append
//    to per-thread buffers the same way. Instrumentation sites are
//    coarse-grained (per chunk, per task, per workload — never per
//    simulated access; per-level cache counters are folded in from the
//    models' existing CacheStats at result-collection time).
//  * Defining CANU_OBS_DISABLED compiles every helper to a no-op.
//
// Determinism: instrumentation only reads timestamps and copies counters —
// it never alters chunk boundaries, task order or replay state, so
// EvalReports are bit-for-bit identical with observability on or off
// (pinned by tests/obs_test.cpp).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace canu::obs {

// --------------------------------------------------------------------------
// Metric identifiers

enum class Counter : unsigned {
  kTraceRecordsGenerated,   ///< references produced by workload kernels
  kChunksProduced,          ///< chunks handed to the parallel engine
  kChunksConsumed,          ///< chunks replayed through all pipelines
  kChunkReplays,            ///< per-shard chunk replay executions
  kBufferFullStallNs,       ///< producer waited for the in-flight chunk
  kBufferEmptyStallNs,      ///< replay sat idle waiting for generation
  kTraceCacheHits,
  kTraceCacheMisses,
  kTraceCacheStores,
  kTraceCacheBytesRead,
  kTraceCacheBytesWritten,
  kPoolTasksExecuted,
  kPoolQueueWaitNs,         ///< summed enqueue→execute latency
  kGivargisTrainings,       ///< trained-index analyses performed
  kWorkloadsEvaluated,
  kL1Accesses,
  kL1Hits,
  kL1Misses,
  kL1Evictions,
  kL1Writebacks,
  kL2Accesses,
  kL2Misses,
  kL2Evictions,
  kL2Writebacks,
  kSvcRequests,             ///< daemon requests admitted to the scheduler
  kSvcOverloadRejections,   ///< requests refused by admission control
  kSvcResultCacheHits,      ///< requests answered from the result cache
  kSvcResultCacheMisses,    ///< requests that had to simulate
  kSvcCoalescedRequests,    ///< requests that joined an in-flight duplicate
  kSvcDeadlineExceeded,     ///< requests that hit their --timeout-ms budget
  kSvcCancelled,            ///< requests cancelled (peer gone / shutdown)
  kSvcJournalRestored,      ///< cache entries replayed from the journal
  kSvcJournalRecoveries,    ///< journal loads that truncated a corrupt tail
  kSvcJournalCompactions,   ///< journal rewrites that dropped dead records
  kGridCellsEvaluated,      ///< config-grid cells replayed (cells × workloads)
  kPlanClassesFormed,       ///< access-plan classes that gained a 2nd member
  kSamplePlansTrained,      ///< k-means sample plans trained (incl. escalations)
  kFeatureSidecarHits,      ///< .feat sidecars read and accepted
  kFeatureSidecarMisses,    ///< feature extractions with no sidecar on disk
  kFeatureSidecarRegens,    ///< stale/corrupt sidecars discarded and rebuilt
  kCount
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name used as the manifest JSON key.
const char* counter_name(Counter c) noexcept;

enum class Hist : unsigned {
  kPoolQueueWaitNs,  ///< enqueue→execute latency per pool task
  kChunkReplayNs,    ///< wall time of one per-shard chunk replay
  kSvcRequestNs,     ///< daemon request service time (admission → response)
  kCount
};
inline constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);

const char* hist_name(Hist h) noexcept;

/// Log2-bucketed histogram: bucket i counts values with bit_width i (bucket
/// 0 holds zeros). 48 buckets cover any nanosecond duration we can see.
inline constexpr unsigned kHistBuckets = 48;

struct HistogramData {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void record(std::uint64_t v) noexcept {
    unsigned b = static_cast<unsigned>(std::bit_width(v));
    if (b >= kHistBuckets) b = kHistBuckets - 1;
    ++buckets[b];
    ++count;
    sum += v;
  }
  void merge(const HistogramData& other) noexcept {
    for (unsigned i = 0; i < kHistBuckets; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
  }
  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// One thread's metric slots: plain integers, written only by the owning
/// thread, summed by the session at snapshot time.
struct CounterBlock {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<HistogramData, kHistCount> hists{};
};

struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<HistogramData, kHistCount> hists{};

  std::uint64_t operator[](Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistogramData& hist(Hist h) const noexcept {
    return hists[static_cast<std::size_t>(h)];
  }
};

// --------------------------------------------------------------------------
// Manifest accumulation records (filled in by the Evaluator / CLI)

struct SchemeRunRecord {
  std::string scheme;
  double miss_rate = 0;
  double amat = 0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  bool sampled = false;          ///< estimate from sampled-interval replay
  double miss_rate_ci95 = 0;     ///< CI half-widths (0 for exact runs)
  double amat_ci95 = 0;
};

struct WorkloadRecord {
  std::string name;
  double wall_s = 0;
  // Per-phase wall time (seconds), so sampling wins are attributable:
  double generate_s = 0;  ///< trace generation / materialization
  double extract_s = 0;   ///< feature extraction + interval clustering
  double train_s = 0;     ///< scheme construction incl. trained-index work
  double replay_s = 0;    ///< engine feeding
  bool sampled = false;   ///< workload replayed via sampled intervals
  std::vector<SchemeRunRecord> runs;  ///< baseline first, then schemes
};

struct EvalConfigRecord {
  std::uint64_t seed = 0;
  double scale = 1.0;
  unsigned threads = 0;  ///< resolved worker count actually used
  std::string baseline;
  std::string trace_cache_dir;
  std::string l1_geometry;
  std::string l2_geometry;
  std::vector<std::string> schemes;
  std::vector<std::string> workloads;
};

// --------------------------------------------------------------------------
// Session

struct SessionOptions {
  bool metrics = true;
  bool spans = false;
};

/// The process-wide observability session. At most one is active; install()
/// and uninstall() must be called while no instrumented worker threads are
/// running (the CLI and benches install before building any thread pool and
/// finalize after all pools are destroyed).
class Session {
 public:
  static Session* active() noexcept;
  /// Install a fresh session; throws canu::Error if one is active.
  static Session* install(SessionOptions options);
  /// Tear down the active session (no artifacts written). No-op if none.
  static void uninstall();

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionOptions& options() const noexcept { return options_; }

  /// This thread's counter block, registering the thread on first use.
  /// The returned pointer stays valid for the session's lifetime.
  CounterBlock* register_thread();

  /// Sum of every thread's counters and histograms.
  MetricsSnapshot metrics_snapshot() const;

  /// Chrome trace-event JSON of all recorded spans: one track (tid) per
  /// registered thread, events sorted by timestamp.
  void write_trace_events(std::ostream& os) const;

  // Manifest accumulation (thread-safe, coarse-grained).
  void record_eval_config(EvalConfigRecord rec);
  void record_workload(WorkloadRecord rec);
  void set_command(std::string command);

  const EvalConfigRecord& eval_config() const noexcept { return config_; }
  const std::vector<WorkloadRecord>& workload_records() const noexcept {
    return workloads_;
  }
  const std::string& command() const noexcept { return command_; }
  double elapsed_s() const noexcept;

 private:
  friend struct SpanSink;
  explicit Session(SessionOptions options);

  struct ThreadSlot;
  ThreadSlot* slot_for_this_thread();

  SessionOptions options_;
  std::uint64_t start_ns_ = 0;  ///< steady-clock base for all timestamps
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
  EvalConfigRecord config_;
  bool have_config_ = false;
  std::vector<WorkloadRecord> workloads_;
  std::string command_;
};

// --------------------------------------------------------------------------
// Hot-path helpers

#ifndef CANU_OBS_DISABLED

namespace detail {
extern std::atomic<bool> metrics_flag;
extern std::atomic<bool> spans_flag;
/// This thread's counter block for the active session (registers on first
/// use; only call when metrics_on()).
CounterBlock* local_block();
}  // namespace detail

inline bool metrics_on() noexcept {
  return detail::metrics_flag.load(std::memory_order_relaxed);
}
inline bool spans_on() noexcept {
  return detail::spans_flag.load(std::memory_order_relaxed);
}

/// Nanoseconds since the active session started (0 with no session).
std::uint64_t now_ns() noexcept;

inline void count(Counter c, std::uint64_t n = 1) {
  if (!metrics_on()) return;
  detail::local_block()->counters[static_cast<std::size_t>(c)] += n;
}

inline void observe(Hist h, std::uint64_t value) {
  if (!metrics_on()) return;
  detail::local_block()->hists[static_cast<std::size_t>(h)].record(value);
}

/// RAII scoped span: records a Chrome "X" (complete) event on the calling
/// thread's track when spans are enabled; a flag check otherwise. Use the
/// static-name constructor on per-chunk paths (no allocation); the
/// std::string constructor is for per-workload/per-phase labels.
class Span {
 public:
  Span(const char* category, const char* name) : cat_(category), name_(name) {
    if (spans_on()) start(nullptr, 0);
  }
  Span(const char* category, const char* name, const char* arg_name,
       std::uint64_t arg_value)
      : cat_(category), name_(name) {
    if (spans_on()) start(arg_name, arg_value);
  }
  Span(const char* category, std::string name)
      : cat_(category), dynamic_name_(std::move(name)) {
    if (spans_on()) start(nullptr, 0);
  }
  Span(const char* category, std::string name, const char* arg_name,
       std::uint64_t arg_value)
      : cat_(category), dynamic_name_(std::move(name)) {
    if (spans_on()) start(arg_name, arg_value);
  }
  ~Span() {
    if (active_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void start(const char* arg_name, std::uint64_t arg_value);
  void finish() noexcept;

  const char* cat_;
  const char* name_ = nullptr;
  std::string dynamic_name_;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

#else  // CANU_OBS_DISABLED: the whole layer compiles to no-ops.

inline constexpr bool metrics_on() noexcept { return false; }
inline constexpr bool spans_on() noexcept { return false; }
inline std::uint64_t now_ns() noexcept { return 0; }
inline void count(Counter, std::uint64_t = 1) {}
inline void observe(Hist, std::uint64_t) {}

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const char*, const char*, const char*, std::uint64_t) {}
  Span(const char*, std::string) {}
  Span(const char*, std::string, const char*, std::uint64_t) {}
};

#endif  // CANU_OBS_DISABLED

// --------------------------------------------------------------------------
// Output wiring (shared by the CLI and the benches)

struct OutputConfig {
  std::string manifest_path;     ///< --metrics-out (empty = no manifest)
  std::string trace_event_path;  ///< --trace-events (empty = no spans)
  std::string command;           ///< invoking command line, for the manifest
};

/// Install the global session configured for `out`; no-op when both paths
/// are empty. Call before any worker thread exists.
void install_outputs(const OutputConfig& out);

/// Write the configured artifacts (manifest + trace events) and tear the
/// session down. Idempotent; call after all pools are destroyed. Throws
/// canu::Error if an artifact cannot be written.
void finalize_outputs();

// --------------------------------------------------------------------------
// Progress heartbeat

using ProgressFn =
    std::function<void(std::size_t done, std::size_t total,
                       const std::string& item)>;

/// A stderr heartbeat ("[canu] 3/11 workloads ...") for long evaluations.
/// Returns a null function when stderr is not a TTY and `force` is false,
/// so redirected runs stay clean by default.
ProgressFn make_progress_printer(bool force);

}  // namespace canu::obs
