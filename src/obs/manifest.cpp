#include "obs/manifest.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/version.hpp"
#include "util/error.hpp"

namespace canu::obs {

void write_manifest(const Session& session, std::ostream& os) {
  const MetricsSnapshot snap = session.metrics_snapshot();
  const EvalConfigRecord& cfg = session.eval_config();

  JsonWriter w(os);
  w.begin_object();
  w.kv("canu_version", kVersion);
  w.kv("command", session.command());
  w.kv("wall_s", session.elapsed_s());

  w.key("options");
  w.begin_object();
  w.kv("seed", cfg.seed);
  w.kv("scale", cfg.scale);
  w.kv("threads", cfg.threads);
  w.kv("baseline", cfg.baseline);
  w.kv("trace_cache_dir", cfg.trace_cache_dir);
  w.kv("l1", cfg.l1_geometry);
  w.kv("l2", cfg.l2_geometry);
  w.key("schemes");
  w.begin_array();
  for (const std::string& s : cfg.schemes) w.value(s);
  w.end_array();
  w.key("workloads");
  w.begin_array();
  for (const std::string& s : cfg.workloads) w.value(s);
  w.end_array();
  w.end_object();

  w.key("workloads");
  w.begin_array();
  for (const WorkloadRecord& wl : session.workload_records()) {
    w.begin_object();
    w.kv("name", wl.name);
    w.kv("wall_s", wl.wall_s);
    w.kv("generate_s", wl.generate_s);
    w.kv("extract_s", wl.extract_s);
    w.kv("train_s", wl.train_s);
    w.kv("replay_s", wl.replay_s);
    w.kv("sampled", wl.sampled);
    w.key("runs");
    w.begin_array();
    for (const SchemeRunRecord& run : wl.runs) {
      w.begin_object();
      w.kv("scheme", run.scheme);
      w.kv("miss_rate", run.miss_rate);
      w.kv("amat", run.amat);
      w.kv("l1_accesses", run.l1_accesses);
      w.kv("l1_misses", run.l1_misses);
      w.kv("sampled", run.sampled);
      w.kv("miss_rate_ci95", run.miss_rate_ci95);
      w.kv("amat_ci95", run.amat_ci95);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("metrics");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    w.kv(counter_name(static_cast<Counter>(i)), snap.counters[i]);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (std::size_t i = 0; i < kHistCount; ++i) {
    const HistogramData& h = snap.hists[i];
    w.key(hist_name(static_cast<Hist>(i)));
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("mean", h.mean());
    w.end_object();
  }
  w.end_object();
  w.end_object();

  w.end_object();
  os << '\n';
}

void write_manifest_file(const Session& session, const std::string& path) {
  std::ofstream os(path);
  CANU_CHECK_MSG(os.good(), "cannot open manifest file '" << path << "'");
  write_manifest(session, os);
  CANU_CHECK_MSG(os.good(), "failed writing manifest file '" << path << "'");
}

namespace {

std::vector<std::string> string_array(const JsonValue& v) {
  std::vector<std::string> out;
  for (const JsonValue& e : v.as_array()) out.push_back(e.as_string());
  return out;
}

}  // namespace

RunManifest read_manifest(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  RunManifest m;
  m.version = doc.at("canu_version").as_string();
  m.command = doc.at("command").as_string();
  m.wall_s = doc.at("wall_s").as_number();

  const JsonValue& opt = doc.at("options");
  m.options.seed = opt.at("seed").as_u64();
  m.options.scale = opt.at("scale").as_number();
  m.options.threads = static_cast<unsigned>(opt.at("threads").as_u64());
  m.options.baseline = opt.at("baseline").as_string();
  m.options.trace_cache_dir = opt.at("trace_cache_dir").as_string();
  m.options.l1_geometry = opt.at("l1").as_string();
  m.options.l2_geometry = opt.at("l2").as_string();
  m.options.schemes = string_array(opt.at("schemes"));
  m.options.workloads = string_array(opt.at("workloads"));

  for (const JsonValue& wl : doc.at("workloads").as_array()) {
    WorkloadRecord rec;
    rec.name = wl.at("name").as_string();
    rec.wall_s = wl.at("wall_s").as_number();
    // Phase/sampling fields appeared after the first manifest version; read
    // them leniently so older manifests still parse.
    if (const JsonValue* v = wl.find("generate_s")) rec.generate_s = v->as_number();
    if (const JsonValue* v = wl.find("extract_s")) rec.extract_s = v->as_number();
    if (const JsonValue* v = wl.find("train_s")) rec.train_s = v->as_number();
    if (const JsonValue* v = wl.find("replay_s")) rec.replay_s = v->as_number();
    if (const JsonValue* v = wl.find("sampled")) rec.sampled = v->as_bool();
    for (const JsonValue& run : wl.at("runs").as_array()) {
      SchemeRunRecord r;
      r.scheme = run.at("scheme").as_string();
      r.miss_rate = run.at("miss_rate").as_number();
      r.amat = run.at("amat").as_number();
      r.l1_accesses = run.at("l1_accesses").as_u64();
      r.l1_misses = run.at("l1_misses").as_u64();
      if (const JsonValue* v = run.find("sampled")) r.sampled = v->as_bool();
      if (const JsonValue* v = run.find("miss_rate_ci95")) {
        r.miss_rate_ci95 = v->as_number();
      }
      if (const JsonValue* v = run.find("amat_ci95")) r.amat_ci95 = v->as_number();
      rec.runs.push_back(std::move(r));
    }
    m.workloads.push_back(std::move(rec));
  }

  const JsonValue& metrics = doc.at("metrics");
  for (const auto& [name, v] : metrics.at("counters").as_object()) {
    m.counters[name] = v.as_u64();
  }
  for (const auto& [name, v] : metrics.at("histograms").as_object()) {
    RunManifest::HistSummary h;
    h.count = v.at("count").as_u64();
    h.sum = v.at("sum").as_u64();
    h.mean = v.at("mean").as_number();
    m.histograms[name] = h;
  }
  return m;
}

RunManifest read_manifest_file(const std::string& path) {
  std::ifstream is(path);
  CANU_CHECK_MSG(is.good(), "cannot open manifest file '" << path << "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  return read_manifest(buf.str());
}

}  // namespace canu::obs
