#include "core/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>

#include "indexing/trained_store.hpp"
#include "obs/obs.hpp"
#include "sample/sample_plan.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "sim/sampled_replay.hpp"
#include "stats/moments.hpp"
#include "trace/chunk_features.hpp"
#include "trace/trace_cache.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu {

const EvalCell* EvalReport::cell(const std::string& workload,
                                 const std::string& scheme) const {
  auto it = cells.find({workload, scheme});
  return it == cells.end() ? nullptr : &it->second;
}

namespace {

ComparisonTable build_table(const EvalReport& rep, const std::string& label,
                            double EvalCell::* member) {
  ComparisonTable table(label);
  for (const std::string& w : rep.workloads) {
    for (const std::string& s : rep.scheme_labels) {
      const EvalCell* c = rep.cell(w, s);
      if (c) table.set(w, s, c->*member);
    }
  }
  return table;
}

/// Whether building this scheme requires a profiling trace (the trained
/// index functions; only organizations that consume an index function).
bool spec_needs_profile(const SchemeSpec& spec) {
  const bool uses_index = spec.org == CacheOrg::kDirect ||
                          spec.org == CacheOrg::kColumnAssoc ||
                          spec.org == CacheOrg::kPartner;
  return uses_index && scheme_needs_profile(spec.index);
}

std::string describe_geometry(const CacheGeometry& g) {
  return std::to_string(g.size_bytes) + "B/" + std::to_string(g.line_size) +
         "B-line/" + std::to_string(g.ways) + "-way";
}

/// Fold a finished run's cache-model statistics into the metrics registry
/// (collection-time aggregation: the simulation hot path stays untouched).
void count_cache_stats(const RunResult& r) {
  obs::count(obs::Counter::kL1Accesses, r.l1.accesses);
  obs::count(obs::Counter::kL1Hits, r.l1.hits);
  obs::count(obs::Counter::kL1Misses, r.l1.misses);
  obs::count(obs::Counter::kL1Evictions, r.l1.evictions);
  obs::count(obs::Counter::kL1Writebacks, r.l1.writebacks);
  obs::count(obs::Counter::kL2Accesses, r.l2.accesses);
  obs::count(obs::Counter::kL2Misses, r.l2.misses);
  obs::count(obs::Counter::kL2Evictions, r.l2.evictions);
  obs::count(obs::Counter::kL2Writebacks, r.l2.writebacks);
}

obs::SchemeRunRecord scheme_run_record(const std::string& label,
                                       const RunResult& r) {
  obs::SchemeRunRecord rec;
  rec.scheme = label;
  rec.miss_rate = r.miss_rate();
  rec.amat = r.amat;
  rec.l1_accesses = r.l1.accesses;
  rec.l1_misses = r.l1.misses;
  rec.sampled = r.sample.sampled;
  rec.miss_rate_ci95 = r.sample.miss_rate_ci95;
  rec.amat_ci95 = r.sample.amat_ci95;
  return rec;
}

/// Accumulate wall time of a scope into a phase counter.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& acc)
      : acc_(&acc), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

/// One pipeline of a workload replay: a scheme over a concrete geometry.
/// evaluate() uses the fixed L1 geometry for every entry; evaluate_grid()
/// one geometry per cell.
struct PipelineSpec {
  SchemeSpec spec;
  CacheGeometry geometry;
};

/// Everything a workload replay produces: per-pipeline results (in
/// PipelineSpec order) plus the phase timing split recorded into the run
/// manifest (--metrics-out).
struct ReplayOutcome {
  std::vector<RunResult> results;
  double generate_s = 0;  ///< trace generation / materialization
  double extract_s = 0;   ///< feature extraction + plan construction
  double train_s = 0;     ///< model construction incl. index training
  double replay_s = 0;    ///< engine feeding
  bool sampled = false;   ///< results are sampled estimates
};

bool spec_uses_index(const SchemeSpec& spec) {
  return spec.org == CacheOrg::kDirect || spec.org == CacheOrg::kColumnAssoc ||
         spec.org == CacheOrg::kPartner;
}

std::string pipeline_fingerprint(const PipelineSpec& p) {
  return index_fingerprint(p.spec.index, p.geometry.sets(),
                           p.geometry.offset_bits(), p.spec.index_options);
}

double worst_miss_ci_pct(const std::vector<RunResult>& results) {
  double worst = 0;
  for (const RunResult& r : results) {
    worst = std::max(worst, 100.0 * r.sample.miss_rate_ci95);
  }
  return worst;
}

/// Obtain the reference stream for `wname` and replay it through one
/// pipeline per PipelineSpec — shared by evaluate() and evaluate_grid().
///
/// Exact mode replays every reference: when any registered scheme is
/// trained the trace is materialized first (profiling needs the full
/// stream), otherwise chunks stream straight from the generator (or the
/// trace cache) into the engine.
///
/// Sampled mode (options.sample.enabled) replays only the representative
/// intervals of a SamplePlan and extrapolates. The expensive inputs are
/// persisted next to the cached trace so warm runs skip them: per-interval
/// feature vectors as a checksummed sidecar, trained index functions in the
/// TrainedIndexStore. A degenerate plan (trace too small) falls back to the
/// exact engine and annotates every result with the reason.
///
/// Index functions are shared across pipelines by fingerprint — the object
/// identity the batch engine keys its access-plan classes on, so grid
/// cells of one (scheme, sets, line) class compute each reference's set
/// index once (sim/batch_runner.hpp). Identical index functions are pure
/// per-address functions, so sharing cannot change results.
ReplayOutcome replay_workload(const EvalOptions& options, ThreadPool* pool,
                              const std::vector<PipelineSpec>& pipelines,
                              const std::string& wname,
                              const TraceCache* cache_ptr) {
  ReplayOutcome out;
  const bool any_profiled =
      std::any_of(pipelines.begin(), pipelines.end(),
                  [](const PipelineSpec& p) { return spec_needs_profile(p.spec); });
  const std::string trace_key = workload_cache_key(wname, options.params);

  // The trained-index store engages only for sampled runs: exact replay
  // keeps its training cost so exact results never depend on store state
  // (and the sampled-vs-exact speedup comparison stays honest).
  std::optional<TrainedIndexStore> store;
  if (options.sample.enabled && cache_ptr != nullptr) {
    store.emplace(cache_ptr->dir());
  }

  ParallelBatchRunner runner(options.run, pool);
  runner.set_cancel(options.cancel);
  std::vector<std::unique_ptr<CacheModel>> models;
  // Index functions shared across pipelines (and pre-seeded from the
  // trained store on sampled runs), keyed by fingerprint.
  std::map<std::string, IndexFunctionPtr> shared_index;

  const auto build_all = [&](const ProfileContext* context) {
    obs::Span span("train", "build schemes " + wname);
    PhaseTimer timer(out.train_s);
    for (const PipelineSpec& p : pipelines) {
      if (spec_uses_index(p.spec)) {
        IndexFunctionPtr& fn = shared_index[pipeline_fingerprint(p)];
        if (fn == nullptr) {
          fn = make_index_function(p.spec.index, p.geometry.sets(),
                                   p.geometry.offset_bits(), context,
                                   p.spec.index_options);
          if (store && store->enabled() && scheme_needs_profile(p.spec.index)) {
            if (auto bits = extract_trained_bits(*fn)) {
              store->store(trace_key, pipeline_fingerprint(p), *bits);
            }
          }
        }
        models.push_back(build_l1_model_with_index(p.spec, p.geometry, fn));
      } else {
        models.push_back(build_l1_model(p.spec, p.geometry, context));
      }
      runner.add(*models.back());
    }
  };

  if (!options.sample.enabled) {
    if (any_profiled) {
      // Trained index functions profile the full stream before simulation
      // starts, so materialize the trace (once — the ProfileContext shares
      // the derived unique-address set across every trained scheme).
      const Trace trace = [&] {
        obs::Span span("generate", "materialize " + wname);
        PhaseTimer timer(out.generate_s);
        return cached_workload_trace(wname, options.params, cache_ptr);
      }();
      const ProfileContext context(trace);
      build_all(&context);
      SpanSource source(wname, trace.refs());
      obs::Span span("replay", "replay " + wname);
      PhaseTimer timer(out.replay_s);
      out.results = run_batch(runner, source);
      return out;
    }
    // Pure streaming: no pipeline needs the stream up front, so feed the
    // engine chunks straight out of generation (teeing them into the cache
    // on a miss) without ever materializing the trace.
    build_all(nullptr);
    obs::Span span("replay", "stream " + wname);
    PhaseTimer timer(out.replay_s);
    ChunkingSink feed = runner.make_sink();
    if (cache_ptr != nullptr) {
      if (auto source = cache_ptr->open(trace_key)) {
        pump(*source, feed);
        feed.flush();
      } else {
        auto writer = cache_ptr->begin_store(trace_key, wname);
        TeeSink tee(*writer, feed);
        generate_workload_into(wname, tee, options.params);
        feed.flush();
        writer->commit();
      }
    } else {
      generate_workload_into(wname, feed, options.params);
      feed.flush();
    }
    out.results = runner.results(wname);
    return out;
  }

  // ---- Sampled mode ----------------------------------------------------
  // Restore trained index functions from the store where possible; only
  // fingerprints that miss force trace materialization + profiling.
  bool need_profile = false;
  if (any_profiled) {
    for (const PipelineSpec& p : pipelines) {
      if (!spec_needs_profile(p.spec)) continue;
      const std::string fp = pipeline_fingerprint(p);
      IndexFunctionPtr& fn = shared_index[fp];
      if (fn != nullptr) continue;
      if (store && store->enabled()) {
        if (auto bits = store->load(trace_key, fp)) {
          PhaseTimer timer(out.train_s);
          fn = restore_index_function(p.spec.index, std::move(*bits),
                                      p.geometry.sets(),
                                      p.geometry.offset_bits());
          continue;
        }
      }
      need_profile = true;
    }
  }

  // Acquire the interval features and a reader over the trace's intervals.
  std::optional<Trace> trace;  // materialized only when unavoidable
  FeatureSet features;
  std::unique_ptr<IntervalReader> reader;
  if (need_profile || cache_ptr == nullptr) {
    // Profiling (or the absence of a cache) forces the full stream into
    // memory anyway; slice intervals straight out of it.
    {
      obs::Span span("generate", "materialize " + wname);
      PhaseTimer timer(out.generate_s);
      trace.emplace(cached_workload_trace(wname, options.params, cache_ptr));
    }
    {
      obs::Span span("extract", "features " + wname);
      PhaseTimer timer(out.extract_s);
      if (cache_ptr != nullptr && cache_ptr->contains(trace_key)) {
        // The materialization above populated the cache entry: extract from
        // the file so the anchored sidecar is persisted and the NEXT run
        // (trained store warm, no profiling) starts from it directly.
        features = features_for_cached_trace(*cache_ptr, trace_key);
      } else {
        features = compute_features(trace->refs());
      }
    }
    reader = std::make_unique<MemoryIntervalReader>(trace->refs(),
                                                    kSampleIntervalRefs);
  } else if (cache_ptr->contains(trace_key)) {
    // Warm cache: load (or rescan-and-rewrite) the feature sidecar and
    // seek straight to the selected intervals in the trace file.
    obs::Span span("extract", "features " + wname);
    PhaseTimer timer(out.extract_s);
    features = features_for_cached_trace(*cache_ptr, trace_key);
    reader = std::make_unique<FileIntervalReader>(cache_ptr->path_for(trace_key),
                                                  features);
  } else {
    // Cold cache: generate once, teeing records into the cache writer
    // (which records per-interval seek anchors) and the feature extractor —
    // the engine is NOT fed during generation; sampled replay then reads
    // back only the selected intervals.
    {
      obs::Span span("generate", "generate " + wname);
      PhaseTimer timer(out.generate_s);
      auto writer = cache_ptr->begin_store(trace_key, wname);
      writer->set_anchor_interval(kSampleIntervalRefs);
      FeatureExtractor extractor;
      TeeSink tee(*writer, extractor);
      generate_workload_into(wname, tee, options.params);
      features = extractor.finish();
      writer->commit();
      const std::vector<TraceAnchor>& anchors = writer->anchors();
      CANU_CHECK_MSG(anchors.size() == features.intervals.size(),
                     "anchor/interval mismatch for " << wname << ": "
                         << anchors.size() << " anchors vs "
                         << features.intervals.size() << " intervals");
      for (std::size_t i = 0; i < anchors.size(); ++i) {
        features.intervals[i].anchor = anchors[i];
      }
      features.trace_file_size =
          std::filesystem::file_size(writer->final_path());
      write_feature_sidecar(features,
                            feature_sidecar_path(*cache_ptr, trace_key));
    }
    reader = std::make_unique<FileIntervalReader>(cache_ptr->path_for(trace_key),
                                                  features);
  }

  SampleOptions sopt;
  sopt.clusters = options.sample.clusters;
  sopt.seed = options.sample.seed;
  sopt.max_error_pct = options.sample.max_error_pct;
  SamplePlan plan;
  {
    obs::Span span("extract", "cluster " + wname);
    PhaseTimer timer(out.extract_s);
    plan = build_sample_plan(features, sopt);
    obs::count(obs::Counter::kSamplePlansTrained);
  }

  if (plan.exact) {
    // Degenerate trace: replay exactly and annotate why.
    std::optional<ProfileContext> context;
    if (need_profile) context.emplace(*trace);
    build_all(context ? &*context : nullptr);
    {
      obs::Span span("replay", "replay " + wname);
      PhaseTimer timer(out.replay_s);
      if (trace) {
        SpanSource source(wname, trace->refs());
        out.results = run_batch(runner, source);
      } else {
        auto source = cache_ptr->open(trace_key);
        CANU_CHECK_MSG(source != nullptr,
                       "trace cache entry vanished for " << wname);
        out.results = run_batch(runner, *source);
      }
    }
    for (RunResult& r : out.results) r.sample.note = plan.reason;
    return out;
  }

  std::optional<ProfileContext> context;
  if (need_profile) context.emplace(*trace);
  build_all(context ? &*context : nullptr);
  {
    obs::Span span("replay", "sampled replay " + wname);
    PhaseTimer timer(out.replay_s);
    out.results = run_sampled(runner, *reader, plan, wname);
  }

  // --max-error: one bounded escalation. If the achieved miss-rate CI95
  // exceeds the target, double the cluster count, re-plan, re-run, and
  // accept the (tighter) outcome with an annotation either way.
  if (sopt.max_error_pct > 0 &&
      worst_miss_ci_pct(out.results) > sopt.max_error_pct) {
    SampleOptions escalated = sopt;
    escalated.clusters = plan.clusters * 2;
    SamplePlan plan2;
    {
      PhaseTimer timer(out.extract_s);
      plan2 = build_sample_plan(features, escalated);
      obs::count(obs::Counter::kSamplePlansTrained);
    }
    if (!plan2.exact && plan2.clusters > plan.clusters) {
      const double first_ci = worst_miss_ci_pct(out.results);
      runner.reset();
      std::vector<RunResult> retried;
      {
        obs::Span span("replay", "sampled replay (escalated) " + wname);
        PhaseTimer timer(out.replay_s);
        retried = run_sampled(runner, *reader, plan2, wname);
      }
      char note[160];
      std::snprintf(note, sizeof note,
                    "max-error %.3g%% exceeded (CI95 ±%.3g%%); escalated "
                    "%zu -> %zu clusters (CI95 ±%.3g%%)",
                    sopt.max_error_pct, first_ci, plan.clusters, plan2.clusters,
                    worst_miss_ci_pct(retried));
      out.results = std::move(retried);
      for (RunResult& r : out.results) r.sample.note = note;
    }
  }
  out.sampled = true;
  return out;
}

}  // namespace

ComparisonTable EvalReport::miss_reduction_table() const {
  return build_table(*this, "% reduction in miss-rate (vs " + baseline_label + ")",
                     &EvalCell::miss_reduction_pct);
}
ComparisonTable EvalReport::amat_reduction_table() const {
  return build_table(*this, "% reduction in AMAT (vs " + baseline_label + ")",
                     &EvalCell::amat_reduction_pct);
}
ComparisonTable EvalReport::kurtosis_increase_table() const {
  return build_table(*this,
                     "% increase in kurtosis of per-set misses (vs " +
                         baseline_label + ")",
                     &EvalCell::kurtosis_increase_pct);
}
ComparisonTable EvalReport::skewness_increase_table() const {
  return build_table(*this,
                     "% increase in skewness of per-set misses (vs " +
                         baseline_label + ")",
                     &EvalCell::skewness_increase_pct);
}

void EvalReport::print_miss_reduction(std::ostream& os) const {
  miss_reduction_table().print(os);
}
void EvalReport::print_amat_reduction(std::ostream& os) const {
  amat_reduction_table().print(os);
}

namespace {

bool run_has_sample_info(const RunResult& r) {
  return r.sample.sampled || !r.sample.note.empty();
}

/// One provenance line: "<workload>/<scheme>: miss x% ±y%, AMAT a ±b ..."
/// for sampled estimates, "exact (<reason>)" for annotated fallbacks.
void print_sample_line(std::ostream& os, const std::string& workload,
                       const std::string& label, const RunResult& r) {
  if (r.sample.sampled) {
    char buf[192];
    const double fed_pct =
        r.sample.refs_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.sample.refs_fed) /
                  static_cast<double>(r.sample.refs_total);
    std::snprintf(buf, sizeof buf,
                  "  %s/%s: miss %.4f%% ±%.4f%%, AMAT %.4f ±%.4f "
                  "(sampled: %zu clusters, %.1f%% of refs fed)",
                  workload.c_str(), label.c_str(), 100.0 * r.miss_rate(),
                  100.0 * r.sample.miss_rate_ci95, r.amat, r.sample.amat_ci95,
                  r.sample.clusters, fed_pct);
    os << buf << '\n';
    if (!r.sample.note.empty()) os << "    note: " << r.sample.note << '\n';
  } else if (!r.sample.note.empty()) {
    os << "  " << workload << '/' << label << ": exact (" << r.sample.note
       << ")\n";
  }
}

}  // namespace

bool EvalReport::any_sampled() const {
  for (const auto& [w, r] : baseline_runs) {
    if (run_has_sample_info(r)) return true;
  }
  for (const auto& [key, c] : cells) {
    if (run_has_sample_info(c.run)) return true;
  }
  return false;
}

void EvalReport::print_sampling(std::ostream& os) const {
  if (!any_sampled()) return;
  os << "sampling provenance (95% CI half-widths):\n";
  for (const std::string& w : workloads) {
    auto base = baseline_runs.find(w);
    if (base != baseline_runs.end()) {
      print_sample_line(os, w, baseline_label, base->second);
    }
    for (const std::string& s : scheme_labels) {
      if (const EvalCell* c = cell(w, s)) print_sample_line(os, w, s, c->run);
    }
  }
}

Evaluator::Evaluator(EvalOptions options) : options_(std::move(options)) {
  options_.l1_geometry.validate();
  options_.run.l2_geometry.validate();
}

void Evaluator::add_scheme(const SchemeSpec& spec) {
  schemes_.push_back(spec);
}

void Evaluator::add_paper_indexing_schemes() {
  add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
  add_scheme(SchemeSpec::indexing(IndexScheme::kOddMultiplier));
  add_scheme(SchemeSpec::indexing(IndexScheme::kPrimeModulo));
  add_scheme(SchemeSpec::indexing(IndexScheme::kGivargis));
  add_scheme(SchemeSpec::indexing(IndexScheme::kGivargisXor));
}

void Evaluator::add_paper_assoc_schemes() {
  add_scheme(SchemeSpec::adaptive_cache());
  add_scheme(SchemeSpec::b_cache());
  add_scheme(SchemeSpec::column_associative());
}

EvalReport Evaluator::evaluate(
    const std::vector<std::string>& workload_names) const {
  CANU_CHECK_MSG(!workload_names.empty(), "no workloads to evaluate");

  EvalReport report;
  report.workloads = workload_names;
  report.baseline_label = options_.baseline.label();
  for (const SchemeSpec& s : schemes_) {
    report.scheme_labels.push_back(s.label());
  }

  std::mutex report_mutex;
  // One shared pool carries both levels of parallelism: workload-level
  // tasks and, inside each, the per-chunk pipeline shards of the parallel
  // batch engine. TaskGroup waiters help run queued tasks, so the nesting
  // neither deadlocks nor oversubscribes the worker set. A single-thread
  // request (--threads 1 / CANU_THREADS=1) creates no pool at all and runs
  // the serial engine inline — exactly the single-threaded code path.
  ThreadPool* pool_ptr = options_.pool;
  const unsigned threads =
      pool_ptr != nullptr ? pool_ptr->size()
                          : resolve_thread_count(options_.threads);
  std::optional<ThreadPool> pool;
  if (pool_ptr == nullptr && threads > 1) {
    pool.emplace(threads);
    pool_ptr = &*pool;
  }

  if (obs::Session* session = obs::Session::active()) {
    obs::EvalConfigRecord cfg;
    cfg.seed = options_.params.seed;
    cfg.scale = options_.params.scale;
    cfg.threads = threads;
    cfg.baseline = report.baseline_label;
    cfg.trace_cache_dir = options_.trace_cache_dir;
    cfg.l1_geometry = describe_geometry(options_.l1_geometry);
    cfg.l2_geometry = describe_geometry(options_.run.l2_geometry);
    cfg.schemes = report.scheme_labels;
    cfg.workloads = workload_names;
    session->record_eval_config(std::move(cfg));
  }
  std::size_t workloads_done = 0;

  std::optional<TraceCache> cache;
  if (!options_.trace_cache_dir.empty()) {
    cache.emplace(options_.trace_cache_dir);
  }
  const TraceCache* cache_ptr = cache ? &*cache : nullptr;

  std::vector<PipelineSpec> pipelines;
  pipelines.push_back(PipelineSpec{options_.baseline, options_.l1_geometry});
  for (const SchemeSpec& spec : schemes_) {
    pipelines.push_back(PipelineSpec{spec, options_.l1_geometry});
  }

  // One task per workload: obtain the reference stream once (from the trace
  // cache when enabled, generated otherwise) and replay it through the
  // baseline and every scheme in a single batch sweep. Workloads run in
  // parallel; within a workload, the scheme pipelines are sharded across
  // the same pool and each chunk is replayed into all shards concurrently
  // while generation of the next chunk overlaps the replay
  // (sim/parallel_batch_runner.hpp).
  const auto run_workload = [&](std::size_t wi) {
    const std::string& wname = workload_names[wi];
    if (options_.cancel != nullptr) options_.cancel->check();
    obs::Span workload_span =
        options_.request_id != 0
            ? obs::Span("evaluate", "evaluate " + wname, "req",
                        options_.request_id)
            : obs::Span("evaluate", "evaluate " + wname);
    const auto wall_start = std::chrono::steady_clock::now();

    ReplayOutcome outcome =
        replay_workload(options_, pool_ptr, pipelines, wname, cache_ptr);

    const RunResult base = outcome.results[0];
    std::vector<std::pair<std::string, EvalCell>> local;
    local.reserve(schemes_.size());
    for (std::size_t si = 0; si < schemes_.size(); ++si) {
      EvalCell cell;
      cell.run = std::move(outcome.results[si + 1]);
      cell.miss_reduction_pct =
          percent_reduction(base.miss_rate(), cell.run.miss_rate());
      cell.amat_reduction_pct = percent_reduction(base.amat, cell.run.amat);
      cell.kurtosis_increase_pct =
          percent_increase(base.uniformity.miss_moments.kurtosis,
                           cell.run.uniformity.miss_moments.kurtosis);
      cell.skewness_increase_pct =
          percent_increase(base.uniformity.miss_moments.skewness,
                           cell.run.uniformity.miss_moments.skewness);
      local.emplace_back(schemes_[si].label(), std::move(cell));
    }

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (obs::metrics_on()) {
      obs::count(obs::Counter::kWorkloadsEvaluated);
      count_cache_stats(base);
      for (const auto& [label, cell] : local) count_cache_stats(cell.run);
    }
    if (obs::Session* session = obs::Session::active()) {
      obs::WorkloadRecord rec;
      rec.name = wname;
      rec.wall_s = wall_s;
      rec.generate_s = outcome.generate_s;
      rec.extract_s = outcome.extract_s;
      rec.train_s = outcome.train_s;
      rec.replay_s = outcome.replay_s;
      rec.sampled = outcome.sampled;
      rec.runs.push_back(scheme_run_record(report.baseline_label, base));
      for (const auto& [label, cell] : local) {
        rec.runs.push_back(scheme_run_record(label, cell.run));
      }
      session->record_workload(std::move(rec));
    }

    std::lock_guard<std::mutex> lock(report_mutex);
    report.baseline_runs.emplace(wname, base);
    for (auto& [label, cell] : local) {
      report.cells.emplace(std::make_pair(wname, label), std::move(cell));
    }
    ++workloads_done;
    if (options_.progress) {
      options_.progress(workloads_done, workload_names.size(), wname);
    }
  };
  if (pool_ptr != nullptr) {
    pool_ptr->parallel_for(workload_names.size(), run_workload);
  } else {
    for (std::size_t wi = 0; wi < workload_names.size(); ++wi) {
      run_workload(wi);
    }
  }
  return report;
}

const RunResult* GridReport::run(const std::string& workload,
                                 const std::string& cell) const {
  auto it = runs.find({workload, cell});
  return it == runs.end() ? nullptr : &it->second;
}

ComparisonTable GridReport::miss_rate_table() const {
  ComparisonTable table("% L1 miss rate per grid cell");
  for (const std::string& w : workloads) {
    for (const std::string& c : cell_labels) {
      if (const RunResult* r = run(w, c)) table.set(w, c, 100.0 * r->miss_rate());
    }
  }
  return table;
}

ComparisonTable GridReport::amat_table() const {
  ComparisonTable table("AMAT (cycles) per grid cell");
  for (const std::string& w : workloads) {
    for (const std::string& c : cell_labels) {
      if (const RunResult* r = run(w, c)) table.set(w, c, r->amat);
    }
  }
  return table;
}

bool GridReport::any_sampled() const {
  for (const auto& [key, r] : runs) {
    if (run_has_sample_info(r)) return true;
  }
  return false;
}

void GridReport::print_sampling(std::ostream& os) const {
  if (!any_sampled()) return;
  os << "sampling provenance (95% CI half-widths):\n";
  for (const std::string& w : workloads) {
    for (const std::string& c : cell_labels) {
      if (const RunResult* r = run(w, c)) print_sample_line(os, w, c, *r);
    }
  }
}

std::string GridReport::workload_section(const std::string& workload) const {
  std::ostringstream os;
  ComparisonTable table("workload " + workload +
                        " (grid cells: % L1 miss rate, AMAT cycles)");
  for (const std::string& c : cell_labels) {
    if (const RunResult* r = run(workload, c)) {
      table.set(c, "miss%", 100.0 * r->miss_rate());
      table.set(c, "amat", r->amat);
    }
  }
  table.print(os);
  os << '\n';
  return std::move(os).str();
}

void GridReport::print_tail(std::ostream& os) const {
  for (const std::string& s : skipped) {
    os << "skipped: " << s << '\n';
  }
  if (any_sampled()) {
    os << '\n';
    print_sampling(os);
  }
}

void GridReport::print(std::ostream& os) const {
  for (const std::string& w : workloads) os << workload_section(w);
  print_tail(os);
}

GridReport Evaluator::evaluate_grid(
    const ConfigGrid& grid,
    const std::vector<std::string>& workload_names) const {
  CANU_CHECK_MSG(!workload_names.empty(), "no workloads to evaluate");

  struct CellPlan {
    GridPoint point;
    SchemeSpec spec;
  };
  std::vector<CellPlan> plan;
  GridReport report;
  report.workloads = workload_names;
  for (const GridPoint& pt : grid.cells()) {
    const SchemeSpec spec = parse_scheme_spec(pt.scheme);  // throws if unknown
    CANU_CHECK_MSG(
        spec.org != CacheOrg::kSetAssoc && spec.org != CacheOrg::kSkewed,
        "grid scheme '" << pt.scheme
                        << "' fixes its own associativity and conflicts with "
                           "the ways dimension; use an indexing scheme or an "
                           "associativity organization instead");
    if (spec.org != CacheOrg::kDirect && pt.ways != 1) {
      report.skipped.push_back(pt.label() + ": " + cache_org_name(spec.org) +
                               " organization requires ways=1");
      continue;
    }
    report.cell_labels.push_back(pt.label());
    plan.push_back(CellPlan{pt, spec});
  }
  CANU_CHECK_MSG(!plan.empty(), "config grid has no feasible cells");

  std::mutex report_mutex;
  ThreadPool* pool_ptr = options_.pool;
  const unsigned threads =
      pool_ptr != nullptr ? pool_ptr->size()
                          : resolve_thread_count(options_.threads);
  std::optional<ThreadPool> pool;
  if (pool_ptr == nullptr && threads > 1) {
    pool.emplace(threads);
    pool_ptr = &*pool;
  }

  if (obs::Session* session = obs::Session::active()) {
    obs::EvalConfigRecord cfg;
    cfg.seed = options_.params.seed;
    cfg.scale = options_.params.scale;
    cfg.threads = threads;
    cfg.baseline = "(grid)";
    cfg.trace_cache_dir = options_.trace_cache_dir;
    cfg.l1_geometry = "(grid)";
    cfg.l2_geometry = describe_geometry(options_.run.l2_geometry);
    cfg.schemes = report.cell_labels;
    cfg.workloads = workload_names;
    session->record_eval_config(std::move(cfg));
  }
  std::size_t workloads_done = 0;
  std::size_t next_emit = 0;  ///< next workload index owed to grid_sink

  std::optional<TraceCache> cache;
  if (!options_.trace_cache_dir.empty()) {
    cache.emplace(options_.trace_cache_dir);
  }
  const TraceCache* cache_ptr = cache ? &*cache : nullptr;

  // One pipeline per feasible cell, at the cell's own geometry. Cells of
  // one (scheme, sets, line) class share an index function by fingerprint
  // inside replay_workload — the object identity the batch engine keys its
  // access-plan classes on (sim/batch_runner.hpp) — so every ways variant
  // of a class derives each reference's (set, line) once.
  std::vector<PipelineSpec> pipelines;
  pipelines.reserve(plan.size());
  for (const CellPlan& c : plan) {
    pipelines.push_back(PipelineSpec{c.spec, c.point.geometry()});
  }

  // One task per workload, exactly as evaluate(): one reference stream,
  // every grid cell as a pipeline of one batch sweep.
  const auto run_workload = [&](std::size_t wi) {
    const std::string& wname = workload_names[wi];
    if (options_.cancel != nullptr) options_.cancel->check();
    obs::Span workload_span =
        options_.request_id != 0
            ? obs::Span("evaluate", "grid " + wname, "req",
                        options_.request_id)
            : obs::Span("evaluate", "grid " + wname);
    const auto wall_start = std::chrono::steady_clock::now();

    ReplayOutcome outcome =
        replay_workload(options_, pool_ptr, pipelines, wname, cache_ptr);

    std::vector<RunResult> local = std::move(outcome.results);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      local[i].scheme = report.cell_labels[i];  // grid label, not model name
    }

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (obs::metrics_on()) {
      obs::count(obs::Counter::kWorkloadsEvaluated);
      obs::count(obs::Counter::kGridCellsEvaluated, plan.size());
      for (const RunResult& r : local) count_cache_stats(r);
    }
    if (obs::Session* session = obs::Session::active()) {
      obs::WorkloadRecord rec;
      rec.name = wname;
      rec.wall_s = wall_s;
      rec.generate_s = outcome.generate_s;
      rec.extract_s = outcome.extract_s;
      rec.train_s = outcome.train_s;
      rec.replay_s = outcome.replay_s;
      rec.sampled = outcome.sampled;
      for (const RunResult& r : local) {
        rec.runs.push_back(scheme_run_record(r.scheme, r));
      }
      session->record_workload(std::move(rec));
    }

    std::lock_guard<std::mutex> lock(report_mutex);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      report.runs.emplace(std::make_pair(wname, report.cell_labels[i]),
                          std::move(local[i]));
    }
    ++workloads_done;
    if (options_.progress) {
      options_.progress(workloads_done, workload_names.size(), wname);
    }
    if (options_.grid_sink) {
      // Emit finished sections in workload order: a workload that completes
      // out of order waits (already rendered into the report) until its
      // predecessors land, so streamed output equals print() byte-for-byte.
      // A workload's runs land atomically under this lock, so the presence
      // of its first cell means the whole section is ready.
      while (next_emit < workload_names.size() &&
             report.runs.count({workload_names[next_emit],
                                report.cell_labels.front()}) != 0) {
        options_.grid_sink(report.workload_section(workload_names[next_emit]));
        ++next_emit;
      }
    }
  };
  if (pool_ptr != nullptr) {
    pool_ptr->parallel_for(workload_names.size(), run_workload);
  } else {
    for (std::size_t wi = 0; wi < workload_names.size(); ++wi) {
      run_workload(wi);
    }
  }
  return report;
}

}  // namespace canu
