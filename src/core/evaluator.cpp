#include "core/evaluator.hpp"

#include <mutex>
#include <ostream>

#include "stats/moments.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu {

const EvalCell* EvalReport::cell(const std::string& workload,
                                 const std::string& scheme) const {
  auto it = cells.find({workload, scheme});
  return it == cells.end() ? nullptr : &it->second;
}

namespace {

ComparisonTable build_table(const EvalReport& rep, const std::string& label,
                            double EvalCell::* member) {
  ComparisonTable table(label);
  for (const std::string& w : rep.workloads) {
    for (const std::string& s : rep.scheme_labels) {
      const EvalCell* c = rep.cell(w, s);
      if (c) table.set(w, s, c->*member);
    }
  }
  return table;
}

}  // namespace

ComparisonTable EvalReport::miss_reduction_table() const {
  return build_table(*this, "% reduction in miss-rate (vs " + baseline_label + ")",
                     &EvalCell::miss_reduction_pct);
}
ComparisonTable EvalReport::amat_reduction_table() const {
  return build_table(*this, "% reduction in AMAT (vs " + baseline_label + ")",
                     &EvalCell::amat_reduction_pct);
}
ComparisonTable EvalReport::kurtosis_increase_table() const {
  return build_table(*this,
                     "% increase in kurtosis of per-set misses (vs " +
                         baseline_label + ")",
                     &EvalCell::kurtosis_increase_pct);
}
ComparisonTable EvalReport::skewness_increase_table() const {
  return build_table(*this,
                     "% increase in skewness of per-set misses (vs " +
                         baseline_label + ")",
                     &EvalCell::skewness_increase_pct);
}

void EvalReport::print_miss_reduction(std::ostream& os) const {
  miss_reduction_table().print(os);
}
void EvalReport::print_amat_reduction(std::ostream& os) const {
  amat_reduction_table().print(os);
}

Evaluator::Evaluator(EvalOptions options) : options_(std::move(options)) {
  options_.l1_geometry.validate();
  options_.run.l2_geometry.validate();
}

void Evaluator::add_scheme(const SchemeSpec& spec) {
  schemes_.push_back(spec);
}

void Evaluator::add_paper_indexing_schemes() {
  add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
  add_scheme(SchemeSpec::indexing(IndexScheme::kOddMultiplier));
  add_scheme(SchemeSpec::indexing(IndexScheme::kPrimeModulo));
  add_scheme(SchemeSpec::indexing(IndexScheme::kGivargis));
  add_scheme(SchemeSpec::indexing(IndexScheme::kGivargisXor));
}

void Evaluator::add_paper_assoc_schemes() {
  add_scheme(SchemeSpec::adaptive_cache());
  add_scheme(SchemeSpec::b_cache());
  add_scheme(SchemeSpec::column_associative());
}

EvalReport Evaluator::evaluate(
    const std::vector<std::string>& workload_names) const {
  CANU_CHECK_MSG(!workload_names.empty(), "no workloads to evaluate");

  EvalReport report;
  report.workloads = workload_names;
  report.baseline_label = options_.baseline.label();
  for (const SchemeSpec& s : schemes_) {
    report.scheme_labels.push_back(s.label());
  }

  std::mutex report_mutex;
  ThreadPool pool(options_.threads);

  // One task per workload: generate the trace once, then run the baseline
  // and every scheme against it. (The trace is the expensive shared input;
  // schemes within a workload run sequentially, workloads in parallel.)
  pool.parallel_for(workload_names.size(), [&](std::size_t wi) {
    const std::string& wname = workload_names[wi];
    const Trace trace = generate_workload(wname, options_.params);

    auto baseline_model =
        build_l1_model(options_.baseline, options_.l1_geometry, &trace);
    const RunResult base = run_trace(*baseline_model, trace, options_.run);

    std::vector<std::pair<std::string, EvalCell>> local;
    local.reserve(schemes_.size());
    for (const SchemeSpec& spec : schemes_) {
      auto model = build_l1_model(spec, options_.l1_geometry, &trace);
      EvalCell cell;
      cell.run = run_trace(*model, trace, options_.run);
      cell.miss_reduction_pct =
          percent_reduction(base.miss_rate(), cell.run.miss_rate());
      cell.amat_reduction_pct = percent_reduction(base.amat, cell.run.amat);
      cell.kurtosis_increase_pct =
          percent_increase(base.uniformity.miss_moments.kurtosis,
                           cell.run.uniformity.miss_moments.kurtosis);
      cell.skewness_increase_pct =
          percent_increase(base.uniformity.miss_moments.skewness,
                           cell.run.uniformity.miss_moments.skewness);
      local.emplace_back(spec.label(), std::move(cell));
    }

    std::lock_guard<std::mutex> lock(report_mutex);
    report.baseline_runs.emplace(wname, base);
    for (auto& [label, cell] : local) {
      report.cells.emplace(std::make_pair(wname, label), std::move(cell));
    }
  });
  return report;
}

}  // namespace canu
