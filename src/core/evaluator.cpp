#include "core/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <tuple>

#include "cache/set_assoc_cache.hpp"

#include "obs/obs.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "stats/moments.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu {

const EvalCell* EvalReport::cell(const std::string& workload,
                                 const std::string& scheme) const {
  auto it = cells.find({workload, scheme});
  return it == cells.end() ? nullptr : &it->second;
}

namespace {

ComparisonTable build_table(const EvalReport& rep, const std::string& label,
                            double EvalCell::* member) {
  ComparisonTable table(label);
  for (const std::string& w : rep.workloads) {
    for (const std::string& s : rep.scheme_labels) {
      const EvalCell* c = rep.cell(w, s);
      if (c) table.set(w, s, c->*member);
    }
  }
  return table;
}

/// Whether building this scheme requires a profiling trace (the trained
/// index functions; only organizations that consume an index function).
bool spec_needs_profile(const SchemeSpec& spec) {
  const bool uses_index = spec.org == CacheOrg::kDirect ||
                          spec.org == CacheOrg::kColumnAssoc ||
                          spec.org == CacheOrg::kPartner;
  return uses_index && scheme_needs_profile(spec.index);
}

std::string describe_geometry(const CacheGeometry& g) {
  return std::to_string(g.size_bytes) + "B/" + std::to_string(g.line_size) +
         "B-line/" + std::to_string(g.ways) + "-way";
}

/// Fold a finished run's cache-model statistics into the metrics registry
/// (collection-time aggregation: the simulation hot path stays untouched).
void count_cache_stats(const RunResult& r) {
  obs::count(obs::Counter::kL1Accesses, r.l1.accesses);
  obs::count(obs::Counter::kL1Hits, r.l1.hits);
  obs::count(obs::Counter::kL1Misses, r.l1.misses);
  obs::count(obs::Counter::kL1Evictions, r.l1.evictions);
  obs::count(obs::Counter::kL1Writebacks, r.l1.writebacks);
  obs::count(obs::Counter::kL2Accesses, r.l2.accesses);
  obs::count(obs::Counter::kL2Misses, r.l2.misses);
  obs::count(obs::Counter::kL2Evictions, r.l2.evictions);
  obs::count(obs::Counter::kL2Writebacks, r.l2.writebacks);
}

obs::SchemeRunRecord scheme_run_record(const std::string& label,
                                       const RunResult& r) {
  obs::SchemeRunRecord rec;
  rec.scheme = label;
  rec.miss_rate = r.miss_rate();
  rec.amat = r.amat;
  rec.l1_accesses = r.l1.accesses;
  rec.l1_misses = r.l1.misses;
  return rec;
}

/// Obtain the reference stream for `wname` and replay it through every
/// pipeline `build_all` registers — shared by evaluate() and
/// evaluate_grid(). When any registered scheme is trained the trace is
/// materialized first (profiling needs the full stream); otherwise chunks
/// stream straight from the generator (or the trace cache) into the engine.
void replay_workload(ParallelBatchRunner& runner,
                     const std::function<void(const ProfileContext*)>& build_all,
                     const std::string& wname, const WorkloadParams& params,
                     const TraceCache* cache_ptr, bool any_profiled) {
  if (any_profiled) {
    // Trained index functions profile the full stream before simulation
    // starts, so materialize the trace (once — the ProfileContext shares
    // the derived unique-address set across every trained scheme).
    const Trace trace = [&] {
      obs::Span span("generate", "materialize " + wname);
      return cached_workload_trace(wname, params, cache_ptr);
    }();
    const ProfileContext context(trace);
    {
      obs::Span span("train", "build schemes " + wname);
      build_all(&context);
    }
    SpanSource source(wname, trace.refs());
    obs::Span span("replay", "replay " + wname);
    run_batch(runner, source);
    return;
  }
  // Pure streaming: no pipeline needs the stream up front, so feed the
  // engine chunks straight out of generation (teeing them into the cache
  // on a miss) without ever materializing the trace.
  build_all(nullptr);
  obs::Span span("replay", "stream " + wname);
  ChunkingSink feed = runner.make_sink();
  if (cache_ptr != nullptr) {
    const std::string key = workload_cache_key(wname, params);
    if (auto source = cache_ptr->open(key)) {
      pump(*source, feed);
      feed.flush();
    } else {
      auto writer = cache_ptr->begin_store(key, wname);
      TeeSink tee(*writer, feed);
      generate_workload_into(wname, tee, params);
      feed.flush();
      writer->commit();
    }
  } else {
    generate_workload_into(wname, feed, params);
    feed.flush();
  }
}

}  // namespace

ComparisonTable EvalReport::miss_reduction_table() const {
  return build_table(*this, "% reduction in miss-rate (vs " + baseline_label + ")",
                     &EvalCell::miss_reduction_pct);
}
ComparisonTable EvalReport::amat_reduction_table() const {
  return build_table(*this, "% reduction in AMAT (vs " + baseline_label + ")",
                     &EvalCell::amat_reduction_pct);
}
ComparisonTable EvalReport::kurtosis_increase_table() const {
  return build_table(*this,
                     "% increase in kurtosis of per-set misses (vs " +
                         baseline_label + ")",
                     &EvalCell::kurtosis_increase_pct);
}
ComparisonTable EvalReport::skewness_increase_table() const {
  return build_table(*this,
                     "% increase in skewness of per-set misses (vs " +
                         baseline_label + ")",
                     &EvalCell::skewness_increase_pct);
}

void EvalReport::print_miss_reduction(std::ostream& os) const {
  miss_reduction_table().print(os);
}
void EvalReport::print_amat_reduction(std::ostream& os) const {
  amat_reduction_table().print(os);
}

Evaluator::Evaluator(EvalOptions options) : options_(std::move(options)) {
  options_.l1_geometry.validate();
  options_.run.l2_geometry.validate();
}

void Evaluator::add_scheme(const SchemeSpec& spec) {
  schemes_.push_back(spec);
}

void Evaluator::add_paper_indexing_schemes() {
  add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
  add_scheme(SchemeSpec::indexing(IndexScheme::kOddMultiplier));
  add_scheme(SchemeSpec::indexing(IndexScheme::kPrimeModulo));
  add_scheme(SchemeSpec::indexing(IndexScheme::kGivargis));
  add_scheme(SchemeSpec::indexing(IndexScheme::kGivargisXor));
}

void Evaluator::add_paper_assoc_schemes() {
  add_scheme(SchemeSpec::adaptive_cache());
  add_scheme(SchemeSpec::b_cache());
  add_scheme(SchemeSpec::column_associative());
}

EvalReport Evaluator::evaluate(
    const std::vector<std::string>& workload_names) const {
  CANU_CHECK_MSG(!workload_names.empty(), "no workloads to evaluate");

  EvalReport report;
  report.workloads = workload_names;
  report.baseline_label = options_.baseline.label();
  for (const SchemeSpec& s : schemes_) {
    report.scheme_labels.push_back(s.label());
  }

  std::mutex report_mutex;
  // One shared pool carries both levels of parallelism: workload-level
  // tasks and, inside each, the per-chunk pipeline shards of the parallel
  // batch engine. TaskGroup waiters help run queued tasks, so the nesting
  // neither deadlocks nor oversubscribes the worker set. A single-thread
  // request (--threads 1 / CANU_THREADS=1) creates no pool at all and runs
  // the serial engine inline — exactly the single-threaded code path.
  ThreadPool* pool_ptr = options_.pool;
  const unsigned threads =
      pool_ptr != nullptr ? pool_ptr->size()
                          : resolve_thread_count(options_.threads);
  std::optional<ThreadPool> pool;
  if (pool_ptr == nullptr && threads > 1) {
    pool.emplace(threads);
    pool_ptr = &*pool;
  }

  if (obs::Session* session = obs::Session::active()) {
    obs::EvalConfigRecord cfg;
    cfg.seed = options_.params.seed;
    cfg.scale = options_.params.scale;
    cfg.threads = threads;
    cfg.baseline = report.baseline_label;
    cfg.trace_cache_dir = options_.trace_cache_dir;
    cfg.l1_geometry = describe_geometry(options_.l1_geometry);
    cfg.l2_geometry = describe_geometry(options_.run.l2_geometry);
    cfg.schemes = report.scheme_labels;
    cfg.workloads = workload_names;
    session->record_eval_config(std::move(cfg));
  }
  std::size_t workloads_done = 0;

  const bool any_profiled =
      spec_needs_profile(options_.baseline) ||
      std::any_of(schemes_.begin(), schemes_.end(), spec_needs_profile);
  std::optional<TraceCache> cache;
  if (!options_.trace_cache_dir.empty()) {
    cache.emplace(options_.trace_cache_dir);
  }
  const TraceCache* cache_ptr = cache ? &*cache : nullptr;

  // One task per workload: obtain the reference stream once (from the trace
  // cache when enabled, generated otherwise) and replay it through the
  // baseline and every scheme in a single batch sweep. Workloads run in
  // parallel; within a workload, the scheme pipelines are sharded across
  // the same pool and each chunk is replayed into all shards concurrently
  // while generation of the next chunk overlaps the replay
  // (sim/parallel_batch_runner.hpp).
  const auto run_workload = [&](std::size_t wi) {
    const std::string& wname = workload_names[wi];
    if (options_.cancel != nullptr) options_.cancel->check();
    obs::Span workload_span("evaluate", "evaluate " + wname);
    const auto wall_start = std::chrono::steady_clock::now();

    ParallelBatchRunner runner(options_.run, pool_ptr);
    runner.set_cancel(options_.cancel);
    std::vector<std::unique_ptr<CacheModel>> models;
    const auto build_all = [&](const ProfileContext* context) {
      models.push_back(
          build_l1_model(options_.baseline, options_.l1_geometry, context));
      runner.add(*models.back());
      for (const SchemeSpec& spec : schemes_) {
        models.push_back(build_l1_model(spec, options_.l1_geometry, context));
        runner.add(*models.back());
      }
    };

    replay_workload(runner, build_all, wname, options_.params, cache_ptr,
                    any_profiled);

    const RunResult base = runner.result(0, wname);
    std::vector<std::pair<std::string, EvalCell>> local;
    local.reserve(schemes_.size());
    for (std::size_t si = 0; si < schemes_.size(); ++si) {
      EvalCell cell;
      cell.run = runner.result(si + 1, wname);
      cell.miss_reduction_pct =
          percent_reduction(base.miss_rate(), cell.run.miss_rate());
      cell.amat_reduction_pct = percent_reduction(base.amat, cell.run.amat);
      cell.kurtosis_increase_pct =
          percent_increase(base.uniformity.miss_moments.kurtosis,
                           cell.run.uniformity.miss_moments.kurtosis);
      cell.skewness_increase_pct =
          percent_increase(base.uniformity.miss_moments.skewness,
                           cell.run.uniformity.miss_moments.skewness);
      local.emplace_back(schemes_[si].label(), std::move(cell));
    }

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (obs::metrics_on()) {
      obs::count(obs::Counter::kWorkloadsEvaluated);
      count_cache_stats(base);
      for (const auto& [label, cell] : local) count_cache_stats(cell.run);
    }
    if (obs::Session* session = obs::Session::active()) {
      obs::WorkloadRecord rec;
      rec.name = wname;
      rec.wall_s = wall_s;
      rec.runs.push_back(scheme_run_record(report.baseline_label, base));
      for (const auto& [label, cell] : local) {
        rec.runs.push_back(scheme_run_record(label, cell.run));
      }
      session->record_workload(std::move(rec));
    }

    std::lock_guard<std::mutex> lock(report_mutex);
    report.baseline_runs.emplace(wname, base);
    for (auto& [label, cell] : local) {
      report.cells.emplace(std::make_pair(wname, label), std::move(cell));
    }
    ++workloads_done;
    if (options_.progress) {
      options_.progress(workloads_done, workload_names.size(), wname);
    }
  };
  if (pool_ptr != nullptr) {
    pool_ptr->parallel_for(workload_names.size(), run_workload);
  } else {
    for (std::size_t wi = 0; wi < workload_names.size(); ++wi) {
      run_workload(wi);
    }
  }
  return report;
}

const RunResult* GridReport::run(const std::string& workload,
                                 const std::string& cell) const {
  auto it = runs.find({workload, cell});
  return it == runs.end() ? nullptr : &it->second;
}

ComparisonTable GridReport::miss_rate_table() const {
  ComparisonTable table("% L1 miss rate per grid cell");
  for (const std::string& w : workloads) {
    for (const std::string& c : cell_labels) {
      if (const RunResult* r = run(w, c)) table.set(w, c, 100.0 * r->miss_rate());
    }
  }
  return table;
}

ComparisonTable GridReport::amat_table() const {
  ComparisonTable table("AMAT (cycles) per grid cell");
  for (const std::string& w : workloads) {
    for (const std::string& c : cell_labels) {
      if (const RunResult* r = run(w, c)) table.set(w, c, r->amat);
    }
  }
  return table;
}

void GridReport::print(std::ostream& os) const {
  miss_rate_table().print(os);
  os << '\n';
  amat_table().print(os);
  for (const std::string& s : skipped) {
    os << "skipped: " << s << '\n';
  }
}

GridReport Evaluator::evaluate_grid(
    const ConfigGrid& grid,
    const std::vector<std::string>& workload_names) const {
  CANU_CHECK_MSG(!workload_names.empty(), "no workloads to evaluate");

  struct CellPlan {
    GridPoint point;
    SchemeSpec spec;
  };
  std::vector<CellPlan> plan;
  GridReport report;
  report.workloads = workload_names;
  for (const GridPoint& pt : grid.cells()) {
    const SchemeSpec spec = parse_scheme_spec(pt.scheme);  // throws if unknown
    CANU_CHECK_MSG(
        spec.org != CacheOrg::kSetAssoc && spec.org != CacheOrg::kSkewed,
        "grid scheme '" << pt.scheme
                        << "' fixes its own associativity and conflicts with "
                           "the ways dimension; use an indexing scheme or an "
                           "associativity organization instead");
    if (spec.org != CacheOrg::kDirect && pt.ways != 1) {
      report.skipped.push_back(pt.label() + ": " + cache_org_name(spec.org) +
                               " organization requires ways=1");
      continue;
    }
    report.cell_labels.push_back(pt.label());
    plan.push_back(CellPlan{pt, spec});
  }
  CANU_CHECK_MSG(!plan.empty(), "config grid has no feasible cells");

  std::mutex report_mutex;
  ThreadPool* pool_ptr = options_.pool;
  const unsigned threads =
      pool_ptr != nullptr ? pool_ptr->size()
                          : resolve_thread_count(options_.threads);
  std::optional<ThreadPool> pool;
  if (pool_ptr == nullptr && threads > 1) {
    pool.emplace(threads);
    pool_ptr = &*pool;
  }

  if (obs::Session* session = obs::Session::active()) {
    obs::EvalConfigRecord cfg;
    cfg.seed = options_.params.seed;
    cfg.scale = options_.params.scale;
    cfg.threads = threads;
    cfg.baseline = "(grid)";
    cfg.trace_cache_dir = options_.trace_cache_dir;
    cfg.l1_geometry = "(grid)";
    cfg.l2_geometry = describe_geometry(options_.run.l2_geometry);
    cfg.schemes = report.cell_labels;
    cfg.workloads = workload_names;
    session->record_eval_config(std::move(cfg));
  }
  std::size_t workloads_done = 0;

  const bool any_profiled =
      std::any_of(plan.begin(), plan.end(),
                  [](const CellPlan& c) { return spec_needs_profile(c.spec); });
  std::optional<TraceCache> cache;
  if (!options_.trace_cache_dir.empty()) {
    cache.emplace(options_.trace_cache_dir);
  }
  const TraceCache* cache_ptr = cache ? &*cache : nullptr;

  // One task per workload, exactly as evaluate(): one reference stream,
  // every grid cell as a pipeline of one batch sweep. Cells sharing a
  // (scheme, sets, line) class additionally share the per-reference index/
  // line-address derivation via the engine's access-plan classes.
  const auto run_workload = [&](std::size_t wi) {
    const std::string& wname = workload_names[wi];
    if (options_.cancel != nullptr) options_.cancel->check();
    obs::Span workload_span("evaluate", "grid " + wname);
    const auto wall_start = std::chrono::steady_clock::now();

    ParallelBatchRunner runner(options_.run, pool_ptr);
    runner.set_cancel(options_.cancel);
    std::vector<std::unique_ptr<CacheModel>> models;
    const auto build_all = [&](const ProfileContext* context) {
      // One index function per (scheme, sets, line) class, shared across
      // its ways variants — the object identity the batch engine keys its
      // access-plan classes on (sim/batch_runner.hpp). Every variant in the
      // class derives identical (set, line) values by construction, so
      // sharing cannot change results.
      std::map<std::tuple<std::string, std::uint64_t, std::uint64_t>,
               IndexFunctionPtr>
          shared_index;
      for (const CellPlan& c : plan) {
        const CacheGeometry g = c.point.geometry();
        if (c.spec.org == CacheOrg::kDirect) {
          IndexFunctionPtr& fn =
              shared_index[{c.point.scheme, c.point.sets, c.point.line}];
          if (fn == nullptr) {
            fn = make_index_function(c.spec.index, g.sets(), g.offset_bits(),
                                     context, c.spec.index_options);
          }
          models.push_back(std::make_unique<SetAssocCache>(g, fn));
        } else {
          models.push_back(build_l1_model(c.spec, g, context));
        }
        runner.add(*models.back());
      }
    };
    replay_workload(runner, build_all, wname, options_.params, cache_ptr,
                    any_profiled);

    std::vector<RunResult> local;
    local.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      RunResult r = runner.result(i, wname);
      r.scheme = report.cell_labels[i];  // grid label, not the model's name
      local.push_back(std::move(r));
    }

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (obs::metrics_on()) {
      obs::count(obs::Counter::kWorkloadsEvaluated);
      for (const RunResult& r : local) count_cache_stats(r);
    }
    if (obs::Session* session = obs::Session::active()) {
      obs::WorkloadRecord rec;
      rec.name = wname;
      rec.wall_s = wall_s;
      for (const RunResult& r : local) {
        rec.runs.push_back(scheme_run_record(r.scheme, r));
      }
      session->record_workload(std::move(rec));
    }

    std::lock_guard<std::mutex> lock(report_mutex);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      report.runs.emplace(std::make_pair(wname, report.cell_labels[i]),
                          std::move(local[i]));
    }
    ++workloads_done;
    if (options_.progress) {
      options_.progress(workloads_done, workload_names.size(), wname);
    }
  };
  if (pool_ptr != nullptr) {
    pool_ptr->parallel_for(workload_names.size(), run_workload);
  } else {
    for (std::size_t wi = 0; wi < workload_names.size(); ++wi) {
      run_workload(wi);
    }
  }
  return report;
}

}  // namespace canu
