#include "core/scheme.hpp"

#include "assoc/column_associative.hpp"
#include "assoc/skewed_assoc.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/victim_cache.hpp"
#include "util/error.hpp"

namespace canu {

std::string cache_org_name(CacheOrg org) {
  switch (org) {
    case CacheOrg::kDirect: return "direct";
    case CacheOrg::kSetAssoc: return "set_assoc";
    case CacheOrg::kColumnAssoc: return "column_assoc";
    case CacheOrg::kAdaptive: return "adaptive";
    case CacheOrg::kBCache: return "b_cache";
    case CacheOrg::kVictim: return "victim";
    case CacheOrg::kPartner: return "partner";
    case CacheOrg::kSkewed: return "skewed";
  }
  return "unknown";
}

std::string SchemeSpec::label() const {
  switch (org) {
    case CacheOrg::kDirect:
      return "direct[" + index_scheme_name(index) + "]";
    case CacheOrg::kSetAssoc:
      return std::to_string(ways) + "way";
    case CacheOrg::kColumnAssoc:
      return "column_assoc[" + index_scheme_name(index) + "]";
    case CacheOrg::kAdaptive:
      return "adaptive";
    case CacheOrg::kBCache:
      return "b_cache";
    case CacheOrg::kVictim:
      return "victim(" + std::to_string(victim_entries) + ")";
    case CacheOrg::kPartner:
      return "partner";
    case CacheOrg::kSkewed:
      return "skewed" + std::to_string(ways) + "way";
  }
  return "unknown";
}

SchemeSpec SchemeSpec::baseline() { return SchemeSpec{}; }

SchemeSpec SchemeSpec::indexing(IndexScheme scheme,
                                std::uint64_t odd_multiplier) {
  SchemeSpec s;
  s.index = scheme;
  s.index_options.odd_multiplier = odd_multiplier;
  return s;
}

SchemeSpec SchemeSpec::set_assoc(unsigned ways) {
  SchemeSpec s;
  s.org = CacheOrg::kSetAssoc;
  s.ways = ways;
  return s;
}

SchemeSpec SchemeSpec::column_associative(IndexScheme primary,
                                          std::uint64_t odd_multiplier) {
  SchemeSpec s;
  s.org = CacheOrg::kColumnAssoc;
  s.index = primary;
  s.index_options.odd_multiplier = odd_multiplier;
  return s;
}

SchemeSpec SchemeSpec::adaptive_cache() {
  SchemeSpec s;
  s.org = CacheOrg::kAdaptive;
  return s;
}

SchemeSpec SchemeSpec::b_cache(unsigned mapping_factor,
                               unsigned associativity) {
  SchemeSpec s;
  s.org = CacheOrg::kBCache;
  s.bcache.mapping_factor = mapping_factor;
  s.bcache.associativity = associativity;
  return s;
}

SchemeSpec SchemeSpec::victim_cache(unsigned entries) {
  SchemeSpec s;
  s.org = CacheOrg::kVictim;
  s.victim_entries = entries;
  return s;
}

SchemeSpec SchemeSpec::partner_cache() {
  SchemeSpec s;
  s.org = CacheOrg::kPartner;
  return s;
}

SchemeSpec SchemeSpec::skewed_assoc(unsigned banks) {
  SchemeSpec s;
  s.org = CacheOrg::kSkewed;
  s.ways = banks;
  return s;
}

SchemeSpec parse_scheme_spec(const std::string& name) {
  if (name == "column_assoc") return SchemeSpec::column_associative();
  if (name == "adaptive") return SchemeSpec::adaptive_cache();
  if (name == "b_cache") return SchemeSpec::b_cache();
  if (name == "victim") return SchemeSpec::victim_cache();
  if (name == "partner") return SchemeSpec::partner_cache();
  if (name == "skewed") return SchemeSpec::skewed_assoc(2);
  if (name == "2way") return SchemeSpec::set_assoc(2);
  if (name == "4way") return SchemeSpec::set_assoc(4);
  if (name == "8way") return SchemeSpec::set_assoc(8);
  return SchemeSpec::indexing(parse_index_scheme(name));  // throws if unknown
}

const char* scheme_spec_names() noexcept {
  return "modulo xor odd_multiplier prime_modulo givargis givargis_xor "
         "patel_optimal column_assoc adaptive b_cache victim partner skewed "
         "2way 4way 8way";
}

std::unique_ptr<CacheModel> build_l1_model(const SchemeSpec& spec,
                                           const CacheGeometry& geometry,
                                           const Trace* profile) {
  if (profile == nullptr) {
    return build_l1_model(spec, geometry,
                          static_cast<const ProfileContext*>(nullptr));
  }
  const ProfileContext context(*profile);
  return build_l1_model(spec, geometry, &context);
}

std::unique_ptr<CacheModel> build_l1_model(const SchemeSpec& spec,
                                           const CacheGeometry& geometry,
                                           const ProfileContext* profile) {
  const auto make_index = [&]() {
    return make_index_function(spec.index, geometry.sets(),
                               geometry.offset_bits(), profile,
                               spec.index_options);
  };
  switch (spec.org) {
    case CacheOrg::kDirect:
      return std::make_unique<SetAssocCache>(geometry, make_index());
    case CacheOrg::kSetAssoc: {
      CacheGeometry g = geometry;
      g.ways = spec.ways;
      return std::make_unique<SetAssocCache>(g);
    }
    case CacheOrg::kColumnAssoc:
      return std::make_unique<ColumnAssociativeCache>(geometry, make_index());
    case CacheOrg::kAdaptive:
      return std::make_unique<AdaptiveCache>(geometry, spec.adaptive);
    case CacheOrg::kBCache:
      return std::make_unique<BCache>(geometry, spec.bcache);
    case CacheOrg::kVictim:
      return std::make_unique<VictimCache>(geometry, spec.victim_entries);
    case CacheOrg::kPartner:
      return std::make_unique<PartnerCache>(geometry, spec.partner,
                                            make_index());
    case CacheOrg::kSkewed: {
      CacheGeometry g = geometry;
      g.ways = spec.ways;
      return std::make_unique<SkewedAssocCache>(g);
    }
  }
  throw Error("unhandled cache organization");
}

std::unique_ptr<CacheModel> build_l1_model_with_index(
    const SchemeSpec& spec, const CacheGeometry& geometry,
    IndexFunctionPtr index) {
  switch (spec.org) {
    case CacheOrg::kDirect:
      return std::make_unique<SetAssocCache>(geometry, std::move(index));
    case CacheOrg::kColumnAssoc:
      return std::make_unique<ColumnAssociativeCache>(geometry,
                                                      std::move(index));
    case CacheOrg::kPartner:
      return std::make_unique<PartnerCache>(geometry, spec.partner,
                                            std::move(index));
    default:
      break;
  }
  throw Error("organization '" + cache_org_name(spec.org) +
              "' does not take an external index function");
}

}  // namespace canu
