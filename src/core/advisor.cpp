#include "core/advisor.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "indexing/factory.hpp"
#include "obs/obs.hpp"
#include "sample/sample_plan.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "sim/sampled_replay.hpp"
#include "stats/moments.hpp"
#include "trace/chunk_features.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace canu {

Advisor::Advisor(Options options) : options_(std::move(options)) {
  if (options_.include_indexing) {
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kXor));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kOddMultiplier));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kPrimeModulo));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kGivargis));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kGivargisXor));
  }
  if (options_.include_programmable_associativity) {
    candidates_.push_back(SchemeSpec::adaptive_cache());
    candidates_.push_back(SchemeSpec::b_cache());
    candidates_.push_back(SchemeSpec::column_associative());
  }
}

AdvisorReport Advisor::advise(const Trace& trace) const {
  obs::Span span =
      options_.request_id != 0
          ? obs::Span("advise", "advise " + trace.name(), "req",
                      options_.request_id)
          : obs::Span("advise", "advise " + trace.name());

  // Baseline + candidates run as pipelines of the parallel batch engine,
  // sharded across a pool when more than one thread is requested. The
  // engine is bit-for-bit identical to run_trace() per pipeline (pinned by
  // the batch/parallel parity tests), so rankings match the serial path at
  // any thread count. Trained candidates share one ProfileContext, so the
  // profile-derived unique-address set is computed once.
  ThreadPool* pool_ptr = options_.pool;
  std::optional<ThreadPool> pool;
  if (pool_ptr == nullptr) {
    const unsigned threads = resolve_thread_count(options_.threads);
    if (threads > 1) {
      pool.emplace(threads);
      pool_ptr = &*pool;
    }
  }

  if (options_.cancel != nullptr) options_.cancel->check();
  const ProfileContext context(trace);
  ParallelBatchRunner runner(options_.run, pool_ptr);
  runner.set_cancel(options_.cancel);
  std::vector<std::unique_ptr<CacheModel>> models;
  models.push_back(
      build_l1_model(SchemeSpec::baseline(), options_.l1_geometry, &context));
  runner.add(*models.back());
  for (const SchemeSpec& spec : candidates_) {
    models.push_back(build_l1_model(spec, options_.l1_geometry, &context));
    runner.add(*models.back());
  }

  std::vector<RunResult> results;
  if (options_.sample.enabled) {
    // Sampled ranking: cluster the trace's intervals and replay only the
    // representatives. Falls back to the exact engine (with an annotation)
    // when the trace is too small to sample.
    const FeatureSet features = compute_features(trace.refs());
    SampleOptions sopt;
    sopt.clusters = options_.sample.clusters;
    sopt.seed = options_.sample.seed;
    sopt.max_error_pct = options_.sample.max_error_pct;
    SamplePlan plan = build_sample_plan(features, sopt);
    obs::count(obs::Counter::kSamplePlansTrained);
    if (plan.exact) {
      SpanSource source(trace.name(), trace.refs());
      results = run_batch(runner, source);
      for (RunResult& r : results) r.sample.note = plan.reason;
    } else {
      MemoryIntervalReader reader(trace.refs(), kSampleIntervalRefs);
      results = run_sampled(runner, reader, plan, trace.name());
      const auto worst_ci_pct = [](const std::vector<RunResult>& rs) {
        double worst = 0;
        for (const RunResult& r : rs) {
          worst = std::max(worst, 100.0 * r.sample.miss_rate_ci95);
        }
        return worst;
      };
      if (sopt.max_error_pct > 0 &&
          worst_ci_pct(results) > sopt.max_error_pct) {
        SampleOptions escalated = sopt;
        escalated.clusters = plan.clusters * 2;
        const SamplePlan plan2 = build_sample_plan(features, escalated);
        obs::count(obs::Counter::kSamplePlansTrained);
        if (!plan2.exact && plan2.clusters > plan.clusters) {
          runner.reset();
          results = run_sampled(runner, reader, plan2, trace.name());
        }
      }
    }
  } else {
    SpanSource source(trace.name(), trace.refs());
    results = run_batch(runner, source);
  }

  AdvisorReport report;
  report.baseline = std::move(results[0]);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    AdvisorChoice choice;
    choice.scheme = candidates_[i];
    choice.result = std::move(results[i + 1]);
    choice.miss_reduction_pct = percent_reduction(
        report.baseline.miss_rate(), choice.result.miss_rate());
    report.ranked.push_back(std::move(choice));
  }

  const auto metric_of = [this](const AdvisorChoice& c) {
    return options_.metric == Metric::kMissRate ? c.result.miss_rate()
                                                : c.result.amat;
  };
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [&](const AdvisorChoice& a, const AdvisorChoice& b) {
                     return metric_of(a) < metric_of(b);
                   });
  return report;
}

AdvisorReport Advisor::advise_workload(const std::string& workload_name,
                                       const WorkloadParams& params) const {
  return advise(generate_workload(workload_name, params));
}

}  // namespace canu
