#include "core/advisor.hpp"

#include <algorithm>

#include "stats/moments.hpp"
#include "workloads/workload.hpp"

namespace canu {

Advisor::Advisor(Options options) : options_(std::move(options)) {
  if (options_.include_indexing) {
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kXor));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kOddMultiplier));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kPrimeModulo));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kGivargis));
    candidates_.push_back(SchemeSpec::indexing(IndexScheme::kGivargisXor));
  }
  if (options_.include_programmable_associativity) {
    candidates_.push_back(SchemeSpec::adaptive_cache());
    candidates_.push_back(SchemeSpec::b_cache());
    candidates_.push_back(SchemeSpec::column_associative());
  }
}

AdvisorReport Advisor::advise(const Trace& trace) const {
  AdvisorReport report;
  auto baseline_model =
      build_l1_model(SchemeSpec::baseline(), options_.l1_geometry, &trace);
  report.baseline = run_trace(*baseline_model, trace, options_.run);

  for (const SchemeSpec& spec : candidates_) {
    auto model = build_l1_model(spec, options_.l1_geometry, &trace);
    AdvisorChoice choice;
    choice.scheme = spec;
    choice.result = run_trace(*model, trace, options_.run);
    choice.miss_reduction_pct = percent_reduction(
        report.baseline.miss_rate(), choice.result.miss_rate());
    report.ranked.push_back(std::move(choice));
  }

  const auto metric_of = [this](const AdvisorChoice& c) {
    return options_.metric == Metric::kMissRate ? c.result.miss_rate()
                                                : c.result.amat;
  };
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [&](const AdvisorChoice& a, const AdvisorChoice& b) {
                     return metric_of(a) < metric_of(b);
                   });
  return report;
}

AdvisorReport Advisor::advise_workload(const std::string& workload_name,
                                       const WorkloadParams& params) const {
  return advise(generate_workload(workload_name, params));
}

}  // namespace canu
