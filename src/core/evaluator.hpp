// Evaluator: the paper's contribution as an API — a side-by-side comparison
// of cache-uniformity techniques over a set of workloads, under one cache
// configuration, with one baseline.
//
// Usage:
//   Evaluator ev;                                  // paper's configuration
//   ev.add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
//   ev.add_scheme(SchemeSpec::column_associative());
//   EvalReport rep = ev.evaluate(paper_mibench_set());
//   rep.print_miss_reduction(std::cout);           // Figure 4/6 style table
//
// Independent (workload × scheme) simulations run in parallel on a thread
// pool; results are deterministic because each run owns its models.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cache/config_grid.hpp"
#include "core/scheme.hpp"
#include "sim/comparison.hpp"
#include "sim/runner.hpp"
#include "util/cancel.hpp"
#include "workloads/workload.hpp"

namespace canu {

class ThreadPool;

/// Sampled-interval replay (DESIGN.md §14): cluster the trace's interval
/// feature vectors, replay only each cluster's representative interval
/// (plus a short warm-up prefix), and extrapolate full-trace metrics with
/// confidence intervals. Results are estimates — every affected report row
/// carries its CI95 half-width and a sampled/exact provenance marker.
struct SampleSpec {
  bool enabled = false;
  std::size_t clusters = 0;    ///< k-means cluster count; 0 = automatic
  std::uint64_t seed = 1;      ///< clustering seed (part of result identity)
  /// Target miss-rate CI95 half-width in percentage points; when exceeded
  /// the plan is re-run once with doubled clusters (bounded escalation),
  /// then accepted and annotated. 0 disables the check.
  double max_error_pct = 0.0;
};

struct EvalOptions {
  CacheGeometry l1_geometry = CacheGeometry::paper_l1();
  RunConfig run;                 ///< L2 geometry + timing
  WorkloadParams params;         ///< seed / scale for workload generation
  SchemeSpec baseline = SchemeSpec::baseline();
  /// Worker threads shared by workload tasks and pipeline shards
  /// (0 = CANU_THREADS env var if set, else hardware concurrency;
  /// 1 = the exact serial engine, no pool).
  unsigned threads = 0;
  /// External pool to run on instead of creating one (not owned; overrides
  /// `threads`). The canud daemon shares a single help-while-waiting pool
  /// across concurrent requests this way, so N overlapping evaluations
  /// never oversubscribe the worker set. Results are bit-for-bit identical
  /// with any pool (pinned by tests/svc_test.cpp).
  ThreadPool* pool = nullptr;
  /// Directory of the on-disk trace cache; empty disables caching. Callers
  /// wanting the environment-controlled default pass
  /// default_trace_cache_dir() (trace/trace_cache.hpp).
  std::string trace_cache_dir;
  /// Sampled-interval replay configuration (disabled by default: exact
  /// replay of every reference). Sampling composes with grids and threads;
  /// the trace cache (when enabled) additionally persists feature sidecars
  /// and trained index functions to make warm sampled runs cheap.
  SampleSpec sample;
  /// Invoked after each workload completes (under the report lock, so
  /// callbacks are serialized): (done, total, workload just finished).
  /// Null disables progress reporting.
  std::function<void(std::size_t, std::size_t, const std::string&)> progress;
  /// Streamed grid output (DESIGN.md §16): when set, evaluate_grid hands
  /// each workload's finished section (GridReport::workload_section) to
  /// this sink IN WORKLOAD ORDER as soon as it and all its predecessors
  /// complete — the first section arrives after one workload instead of
  /// after the whole sweep. Called under the report lock (serialized);
  /// the concatenated sections plus GridReport::print_tail() equal
  /// GridReport::print() byte-for-byte. Ignored by evaluate().
  std::function<void(const std::string&)> grid_sink;
  /// Cooperative cancellation token (borrowed; null = none), polled at
  /// workload start and at every replay chunk boundary. A fired token
  /// unwinds evaluate() with canu::Cancelled; completed results are
  /// bit-for-bit unaffected (the token is never consulted mid-chunk).
  const CancelToken* cancel = nullptr;
  /// Daemon request ID (0 = standalone run): annotated onto per-workload
  /// spans as a "req" arg so daemon traces attribute work to requests.
  std::uint64_t request_id = 0;
};

struct EvalCell {
  RunResult run;       ///< full result for this (workload, scheme)
  double miss_reduction_pct = 0;      ///< vs baseline (paper Figs. 4/6/8)
  double amat_reduction_pct = 0;      ///< vs baseline (paper Fig. 7)
  double kurtosis_increase_pct = 0;   ///< per-set misses (paper Figs. 9/11)
  double skewness_increase_pct = 0;   ///< per-set misses (paper Figs. 10/12)
};

struct EvalReport {
  std::vector<std::string> workloads;
  std::vector<std::string> scheme_labels;
  std::string baseline_label;
  std::map<std::string, RunResult> baseline_runs;  ///< by workload
  std::map<std::pair<std::string, std::string>, EvalCell> cells;

  const EvalCell* cell(const std::string& workload,
                       const std::string& scheme) const;

  /// Build a metric grid ready for printing (rows = workloads).
  ComparisonTable miss_reduction_table() const;
  ComparisonTable amat_reduction_table() const;
  ComparisonTable kurtosis_increase_table() const;
  ComparisonTable skewness_increase_table() const;

  void print_miss_reduction(std::ostream& os) const;
  void print_amat_reduction(std::ostream& os) const;

  /// Whether any run in the report is a sampled estimate (or carries a
  /// sampling fallback annotation worth surfacing).
  bool any_sampled() const;
  /// Provenance lines for sampled evaluations: per (workload, scheme) the
  /// estimated miss rate ± CI95, AMAT ± CI95, cluster count, and fed
  /// fraction; plus any exact-fallback notes. No output when nothing was
  /// sampled or annotated.
  void print_sampling(std::ostream& os) const;
};

/// Result of a one-pass configuration-grid sweep (DESIGN.md §13): every
/// feasible (sets, ways, line, scheme) cell replayed against every workload,
/// one trace sweep per workload, bit-for-bit equal to running each cell as
/// its own single-configuration evaluation.
struct GridReport {
  std::vector<std::string> workloads;
  /// Feasible cell labels (GridPoint::label()), in canonical grid order.
  std::vector<std::string> cell_labels;
  /// Infeasible cells that were skipped, as "<label>: <reason>" lines
  /// (e.g. an associativity-scheme row at ways > 1).
  std::vector<std::string> skipped;
  std::map<std::pair<std::string, std::string>, RunResult> runs;

  const RunResult* run(const std::string& workload,
                       const std::string& cell) const;

  ComparisonTable miss_rate_table() const;  ///< % L1 miss rate per cell
  ComparisonTable amat_table() const;       ///< model AMAT (cycles) per cell

  bool any_sampled() const;
  void print_sampling(std::ostream& os) const;

  /// One workload's rendered section: a table with the grid cells as rows
  /// and miss% / AMAT as columns. Sections depend only on that workload's
  /// runs, which is what lets evaluate_grid stream them (EvalOptions::
  /// grid_sink) before the sweep finishes.
  std::string workload_section(const std::string& workload) const;
  /// Everything after the per-workload sections: skipped-cell notes and,
  /// for sampled sweeps, the per-run CI/provenance annotations.
  void print_tail(std::ostream& os) const;

  /// Render every workload section in order, then the tail — byte-equal to
  /// what a grid_sink consumer assembles incrementally.
  void print(std::ostream& os) const;
};

class Evaluator {
 public:
  Evaluator() : Evaluator(EvalOptions()) {}
  explicit Evaluator(EvalOptions options);

  /// Register a scheme to compare against the baseline.
  void add_scheme(const SchemeSpec& spec);

  /// Register the five indexing schemes of the paper's Figure 4.
  void add_paper_indexing_schemes();

  /// Register the three programmable-associativity schemes of Figure 6.
  void add_paper_assoc_schemes();

  /// Run baseline + every scheme over every named workload (in parallel).
  EvalReport evaluate(const std::vector<std::string>& workload_names) const;

  /// One-pass grid sweep: replay every workload ONCE through all feasible
  /// grid cells simultaneously, sharing the per-reference set-index/line-
  /// address derivation across same-(scheme, sets, line) cells via the
  /// batch engine's access-plan classes (sim/batch_runner.hpp). Cells whose
  /// organization cannot honour the ways dimension are skipped and
  /// reported; scheme names that fix their own associativity ("2way",
  /// "skewed", ...) are rejected. Uses the grid's geometry per cell —
  /// options().l1_geometry and the registered scheme list do not apply.
  GridReport evaluate_grid(const ConfigGrid& grid,
                           const std::vector<std::string>& workload_names) const;

  const EvalOptions& options() const noexcept { return options_; }
  const std::vector<SchemeSpec>& schemes() const noexcept { return schemes_; }

 private:
  EvalOptions options_;
  std::vector<SchemeSpec> schemes_;
};

}  // namespace canu
