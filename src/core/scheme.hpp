// SchemeSpec: a declarative description of one cache organization + indexing
// combination, and a factory turning it into a live L1 model.
//
// This is the vocabulary of the paper's study: every bar in every figure is
// one SchemeSpec evaluated against one workload.
#pragma once

#include <memory>
#include <string>

#include "assoc/adaptive_cache.hpp"
#include "assoc/bcache.hpp"
#include "assoc/partner_cache.hpp"
#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "indexing/factory.hpp"
#include "trace/trace.hpp"

namespace canu {

enum class CacheOrg {
  kDirect,       ///< direct-mapped (possibly with a non-traditional index)
  kSetAssoc,     ///< k-way set-associative (reference points)
  kColumnAssoc,  ///< column-associative (paper §III.A)
  kAdaptive,     ///< adaptive group-associative (paper §III.B)
  kBCache,       ///< balanced cache (paper §III.C)
  kVictim,       ///< direct-mapped + victim buffer (Jouppi, ref [14])
  kPartner,      ///< partner-index cache (the paper's own Figure 3 proposal)
  kSkewed,       ///< skewed-associative cache (Seznec; extension)
};

std::string cache_org_name(CacheOrg org);

struct SchemeSpec {
  CacheOrg org = CacheOrg::kDirect;
  /// Index function for the (primary) lookup. For kColumnAssoc this is the
  /// first-level index (the paper's Figure 8 hybrid); ignored by kBCache.
  IndexScheme index = IndexScheme::kModulo;
  IndexFactoryOptions index_options;
  unsigned ways = 2;                 ///< kSetAssoc / kSkewed
  unsigned victim_entries = 8;       ///< kVictim only
  BCacheConfig bcache;               ///< kBCache only
  AdaptiveConfig adaptive;           ///< kAdaptive only
  PartnerConfig partner;             ///< kPartner only

  /// Human-readable label, e.g. "direct[xor]" or "column_assoc[modulo]".
  std::string label() const;

  // Convenience constructors for the paper's configurations.
  static SchemeSpec baseline();  ///< direct-mapped, modulo indexing
  static SchemeSpec indexing(IndexScheme scheme,
                             std::uint64_t odd_multiplier = 21);
  static SchemeSpec set_assoc(unsigned ways);
  static SchemeSpec column_associative(IndexScheme primary = IndexScheme::kModulo,
                                       std::uint64_t odd_multiplier = 21);
  static SchemeSpec adaptive_cache();
  static SchemeSpec b_cache(unsigned mapping_factor = 2,
                            unsigned associativity = 8);
  static SchemeSpec victim_cache(unsigned entries = 8);
  static SchemeSpec partner_cache();
  static SchemeSpec skewed_assoc(unsigned banks = 2);
};

/// Parse a CLI/service scheme name ("xor", "column_assoc", "4way", ...)
/// into its SchemeSpec; throws canu::Error on an unknown name. The accepted
/// vocabulary is scheme_spec_names().
SchemeSpec parse_scheme_spec(const std::string& name);

/// Space-separated list of every name parse_scheme_spec accepts (usage
/// text, `canu list`).
const char* scheme_spec_names() noexcept;

/// Instantiate the L1 model described by `spec` over `geometry`. Schemes
/// whose index function is trained (Givargis, Givargis-XOR, Patel) require a
/// non-null profiling trace.
std::unique_ptr<CacheModel> build_l1_model(const SchemeSpec& spec,
                                           const CacheGeometry& geometry,
                                           const Trace* profile = nullptr);

/// Same, with trained schemes sharing one ProfileContext — building several
/// schemes for the same workload then computes the profile-derived inputs
/// (unique addresses) once instead of once per scheme.
std::unique_ptr<CacheModel> build_l1_model(const SchemeSpec& spec,
                                           const CacheGeometry& geometry,
                                           const ProfileContext* profile);

/// Disambiguate literal-nullptr calls between the two pointer overloads.
inline std::unique_ptr<CacheModel> build_l1_model(const SchemeSpec& spec,
                                                  const CacheGeometry& geometry,
                                                  std::nullptr_t) {
  return build_l1_model(spec, geometry,
                        static_cast<const ProfileContext*>(nullptr));
}

/// Instantiate the model with an externally supplied (e.g. restored from
/// the trained-index store, or grid-shared) index function instead of
/// building one. Only valid for the organizations that consume an index
/// function (kDirect, kColumnAssoc, kPartner); throws otherwise.
std::unique_ptr<CacheModel> build_l1_model_with_index(
    const SchemeSpec& spec, const CacheGeometry& geometry,
    IndexFunctionPtr index);

}  // namespace canu
