// Advisor: the paper's Figure 5 proposal — profile an application offline,
// then select the indexing scheme (or programmable-associativity
// organization) that minimizes its misses, falling back to conventional
// indexing when nothing beats it.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/scheme.hpp"
#include "sim/runner.hpp"
#include "trace/trace.hpp"
#include "util/cancel.hpp"
#include "workloads/workload.hpp"

namespace canu {

class ThreadPool;

struct AdvisorChoice {
  SchemeSpec scheme;
  RunResult result;
  double miss_reduction_pct = 0;  ///< vs the direct[modulo] baseline
};

struct AdvisorReport {
  RunResult baseline;
  std::vector<AdvisorChoice> ranked;  ///< best first, by the chosen metric

  const AdvisorChoice& best() const { return ranked.front(); }
  /// True if even the best candidate loses to conventional indexing.
  bool keep_conventional() const {
    return ranked.empty() || ranked.front().miss_reduction_pct <= 0.0;
  }
};

class Advisor {
 public:
  enum class Metric { kMissRate, kAmat };

  struct Options {
    CacheGeometry l1_geometry = CacheGeometry::paper_l1();
    RunConfig run;
    Metric metric = Metric::kMissRate;
    /// Candidate set: the paper's five indexing schemes by default;
    /// optionally also the three programmable-associativity schemes.
    bool include_indexing = true;
    bool include_programmable_associativity = true;
    /// Worker threads for candidate replay (same semantics as
    /// EvalOptions::threads: 0 = CANU_THREADS env var if set, else
    /// hardware concurrency; 1 = serial, no pool).
    unsigned threads = 0;
    /// External pool to shard candidates on (not owned; overrides
    /// `threads`) — same sharing contract as EvalOptions::pool.
    ThreadPool* pool = nullptr;
    /// Cooperative cancellation token (borrowed; null = none) — same
    /// chunk-boundary contract as EvalOptions::cancel.
    const CancelToken* cancel = nullptr;
    /// Sampled-interval candidate replay (same semantics as
    /// EvalOptions::sample): rank candidates from extrapolated estimates,
    /// annotated with CI95 half-widths. Profiling for trained candidates
    /// still consumes the full trace (it is already in memory here).
    SampleSpec sample;
    /// Daemon request ID (0 = standalone run) — same span-annotation
    /// contract as EvalOptions::request_id.
    std::uint64_t request_id = 0;
  };

  Advisor() : Advisor(Options()) {}
  explicit Advisor(Options options);

  /// Profile `trace` against every candidate and rank them.
  AdvisorReport advise(const Trace& trace) const;

  /// Convenience: generate the named workload and advise on it.
  AdvisorReport advise_workload(const std::string& workload_name,
                                const WorkloadParams& params = WorkloadParams()) const;

  const std::vector<SchemeSpec>& candidates() const noexcept {
    return candidates_;
  }

 private:
  Options options_;
  std::vector<SchemeSpec> candidates_;
};

}  // namespace canu
